"""Security-posture metrics over a system association.

The paper is explicit that analysis at this stage should be *qualitative*:
"quantitative information for cyber-physical attacks is limited and
ultimately nuanced expert input is necessary".  The metrics here therefore
rank and profile rather than pretend to estimate risk probabilities:

* per-component and per-system counts of associated attack vectors,
* exposure weighting by hop distance from adversary entry points,
* criticality weighting from the systems engineer's judgement,
* severity profiles of matched vulnerabilities (CVSS distribution), kept
  separate from the posture index so the CVSS-is-not-risk experiment (E8)
  can contrast the two rankings.

The paper's comparison rule -- "a component or subsystem that relates with
less attack vectors than a functionally equivalent system has a better
security posture" -- is implemented directly by comparing posture indexes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.schema import RecordKind
from repro.search.engine import SystemAssociation


@dataclass(frozen=True)
class ComponentPosture:
    """Posture summary for a single component."""

    name: str
    attack_patterns: int
    weaknesses: int
    vulnerabilities: int
    exposure_distance: int | None
    criticality: float
    mean_cvss: float
    max_cvss: float
    posture_index: float

    @property
    def total(self) -> int:
        """Total associated records for the component."""
        return self.attack_patterns + self.weaknesses + self.vulnerabilities

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "attack_patterns": self.attack_patterns,
            "weaknesses": self.weaknesses,
            "vulnerabilities": self.vulnerabilities,
            "exposure_distance": self.exposure_distance,
            "criticality": self.criticality,
            "mean_cvss": self.mean_cvss,
            "max_cvss": self.max_cvss,
            "posture_index": self.posture_index,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComponentPosture":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            attack_patterns=payload["attack_patterns"],
            weaknesses=payload["weaknesses"],
            vulnerabilities=payload["vulnerabilities"],
            exposure_distance=payload["exposure_distance"],
            criticality=payload["criticality"],
            mean_cvss=payload["mean_cvss"],
            max_cvss=payload["max_cvss"],
            posture_index=payload["posture_index"],
        )


@dataclass(frozen=True)
class PostureMetrics:
    """Posture summary for a whole system association."""

    system_name: str
    components: tuple[ComponentPosture, ...]
    total_attack_patterns: int
    total_weaknesses: int
    total_vulnerabilities: int
    system_posture_index: float

    @property
    def total(self) -> int:
        """Total unique associated records across the system."""
        return (
            self.total_attack_patterns
            + self.total_weaknesses
            + self.total_vulnerabilities
        )

    def component(self, name: str) -> ComponentPosture:
        """The posture of one component."""
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError(f"no posture for component {name!r}")

    def ranking_by_posture(self) -> list[ComponentPosture]:
        """Components ordered worst-first by posture index."""
        return sorted(self.components, key=lambda c: (-c.posture_index, c.name))

    def ranking_by_cvss(self) -> list[ComponentPosture]:
        """Components ordered worst-first by their maximum CVSS score.

        This is the "use CVSS as risk" ranking the paper warns against; it is
        computed so experiments can show where it disagrees with the
        consequence-aware posture ranking.
        """
        return sorted(self.components, key=lambda c: (-c.max_cvss, c.name))

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "system_name": self.system_name,
            "components": [component.to_dict() for component in self.components],
            "total_attack_patterns": self.total_attack_patterns,
            "total_weaknesses": self.total_weaknesses,
            "total_vulnerabilities": self.total_vulnerabilities,
            "system_posture_index": self.system_posture_index,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PostureMetrics":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            system_name=payload["system_name"],
            components=tuple(
                ComponentPosture.from_dict(item) for item in payload["components"]
            ),
            total_attack_patterns=payload["total_attack_patterns"],
            total_weaknesses=payload["total_weaknesses"],
            total_vulnerabilities=payload["total_vulnerabilities"],
            system_posture_index=payload["system_posture_index"],
        )


def compute_posture(
    association: SystemAssociation,
    exposure_decay: float = 0.5,
    vulnerability_weight: float = 1.0,
    weakness_weight: float = 2.0,
    pattern_weight: float = 2.0,
) -> PostureMetrics:
    """Compute posture metrics for an association.

    The posture index of a component is the weighted count of its associated
    records, scaled by criticality and by an exposure factor that decays with
    hop distance from the nearest adversary entry point
    (``exposure_decay ** distance``; unreachable components get a small
    residual factor for physical-access attacks).  Class weights default to
    emphasizing weaknesses/patterns slightly, because a single weakness class
    typically subsumes many CVE instances.
    """
    system = association.system
    component_postures = []
    for component_association in association.components:
        component = component_association.component
        counts = component_association.counts()
        cvss_scores = [
            match.cvss_score
            for match in component_association.unique_matches()
            if match.cvss_score is not None
        ]
        distance = system.exposure_distance(component.name)
        exposure_factor = 0.1 if distance is None else exposure_decay**distance
        weighted = (
            pattern_weight * counts[RecordKind.ATTACK_PATTERN]
            + weakness_weight * counts[RecordKind.WEAKNESS]
            + vulnerability_weight * counts[RecordKind.VULNERABILITY]
        )
        posture_index = weighted * exposure_factor * (0.5 + component.criticality)
        component_postures.append(
            ComponentPosture(
                name=component.name,
                attack_patterns=counts[RecordKind.ATTACK_PATTERN],
                weaknesses=counts[RecordKind.WEAKNESS],
                vulnerabilities=counts[RecordKind.VULNERABILITY],
                exposure_distance=distance,
                criticality=component.criticality,
                mean_cvss=float(np.mean(cvss_scores)) if cvss_scores else 0.0,
                max_cvss=float(np.max(cvss_scores)) if cvss_scores else 0.0,
                posture_index=float(posture_index),
            )
        )
    totals = association.total_counts()
    return PostureMetrics(
        system_name=system.name,
        components=tuple(component_postures),
        total_attack_patterns=totals[RecordKind.ATTACK_PATTERN],
        total_weaknesses=totals[RecordKind.WEAKNESS],
        total_vulnerabilities=totals[RecordKind.VULNERABILITY],
        system_posture_index=float(sum(c.posture_index for c in component_postures)),
    )


def severity_histogram(association: SystemAssociation) -> dict[str, int]:
    """Counts of matched vulnerabilities per CVSS severity rating."""
    histogram = {"None": 0, "Low": 0, "Medium": 0, "High": 0, "Critical": 0}
    seen: set[str] = set()
    for component_association in association.components:
        for match in component_association.unique_matches():
            if match.kind is not RecordKind.VULNERABILITY or match.identifier in seen:
                continue
            seen.add(match.identifier)
            if match.severity in histogram:
                histogram[match.severity] += 1
    return histogram

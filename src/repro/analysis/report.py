"""Plain-text and markdown report rendering (the headless dashboard output).

The graphical dashboard of the prototype toolchain is replaced here by report
renderers that produce the same content as text: the Table 1 reproduction,
per-component posture summaries, what-if comparisons, and consequence
assessments.  Everything returns strings so the CLI, the examples, and the
benchmarks can print or persist them without extra dependencies.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.metrics import PostureMetrics, compute_posture, severity_histogram
from repro.analysis.whatif import WhatIfComparison
from repro.search.engine import SystemAssociation


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = [str(h) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines = [
        " | ".join(column.ljust(width) for column, width in zip(columns, widths)),
        separator,
    ]
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def render_table1(association: SystemAssociation, attributes: Sequence[str] | None = None) -> str:
    """Render the reproduction of the paper's Table 1.

    ``attributes`` restricts and orders the rows; by default the rows of the
    published table are used (only those present in the association appear).
    """
    return render_table1_rows(association.attribute_table(), attributes)


def render_table1_rows(
    table_rows: Sequence[dict], attributes: Sequence[str] | None = None
) -> str:
    """Render Table 1 from :meth:`SystemAssociation.attribute_table` rows.

    This is the transport-friendly variant: the rows are plain dicts, so a
    service response carrying them renders identically to a local association.
    """
    if attributes is None:
        attributes = (
            "Cisco ASA",
            "NI RT Linux OS",
            "Windows 7",
            "Labview",
            "NI cRIO 9063",
            "NI cRIO 9064",
        )
    table = {row["attribute"]: row for row in table_rows}
    rows = []
    for name in attributes:
        row = table.get(name)
        if row is None:
            continue
        rows.append(
            (name, row["attack_patterns"], row["weaknesses"], row["vulnerabilities"])
        )
    return render_table(
        ("Attribute", "Attack Patterns", "Weaknesses", "Vulnerabilities"), rows
    )


def render_posture_report(
    association: SystemAssociation, metrics: PostureMetrics | None = None
) -> str:
    """Render the per-component posture summary of an association."""
    metrics = metrics or compute_posture(association)
    return render_posture_summary(metrics, severity_histogram(association))


def render_posture_summary(metrics: PostureMetrics, histogram: dict[str, int]) -> str:
    """Render the posture summary from precomputed metrics and histogram.

    This is the transport-friendly variant: both inputs are available in a
    service response, so no :class:`SystemAssociation` is needed to render.
    """
    rows = []
    for component in metrics.ranking_by_posture():
        rows.append(
            (
                component.name,
                component.attack_patterns,
                component.weaknesses,
                component.vulnerabilities,
                "-" if component.exposure_distance is None else component.exposure_distance,
                f"{component.max_cvss:.1f}",
                f"{component.posture_index:.1f}",
            )
        )
    # Fixed severity order: histogram dicts that travelled through sorted-key
    # JSON must render identically to freshly computed ones.
    order = ("None", "Low", "Medium", "High", "Critical")
    labels = [label for label in order if label in histogram]
    labels += [label for label in histogram if label not in order]
    severity_line = ", ".join(f"{label}: {histogram[label]}" for label in labels)
    header = (
        f"System: {metrics.system_name}\n"
        f"Associated records: {metrics.total_attack_patterns} attack patterns, "
        f"{metrics.total_weaknesses} weaknesses, "
        f"{metrics.total_vulnerabilities} vulnerabilities\n"
        f"Vulnerability severity profile: {severity_line}\n"
        f"System posture index: {metrics.system_posture_index:.1f}\n"
    )
    table = render_table(
        ("Component", "Patterns", "Weaknesses", "Vulns", "Hops", "Max CVSS", "Posture"),
        rows,
    )
    return header + "\n" + table


def render_whatif(comparison: WhatIfComparison) -> str:
    """Render a what-if comparison between two architectures."""
    verdict = (
        "variant has the better posture (fewer associated attack vectors)"
        if comparison.variant_is_better
        else "baseline has the better (or equal) posture"
    )
    rows = [
        (
            delta.name,
            delta.baseline_total,
            delta.variant_total,
            delta.delta_total,
            f"{delta.baseline_posture:.1f}",
            f"{delta.variant_posture:.1f}",
        )
        for delta in comparison.component_deltas
    ]
    table = render_table(
        ("Component", "Baseline", "Variant", "Delta", "Posture (base)", "Posture (var)"),
        rows,
    )
    header = (
        f"What-if: {comparison.baseline_name} vs {comparison.variant_name}\n"
        f"Total associated records: {comparison.baseline_total} -> "
        f"{comparison.variant_total}\n"
        f"Verdict: {verdict}\n"
    )
    if comparison.component_set_changed:
        added = ", ".join(comparison.added_components) or "none"
        removed = ", ".join(comparison.removed_components) or "none"
        header += (
            f"Component set changed (added: {added}; removed: {removed}) -- "
            "totals compare different populations\n"
        )
    return header + "\n" + table


def render_consequences(assessments: Sequence) -> str:
    """Render consequence assessments produced by the consequence mapper."""
    rows = []
    for assessment in assessments:
        rows.append(
            (
                assessment.record_id,
                assessment.component,
                assessment.scenario,
                ", ".join(kind.value for kind in assessment.new_hazards) or "none",
                f"{assessment.peak_temperature_c:.1f}",
                f"{assessment.peak_speed_rpm:.0f}",
                "yes" if assessment.sis_tripped else "no",
            )
        )
    return render_table(
        ("Record", "Component", "Scenario", "New hazards", "Peak T [C]", "Peak rpm", "SIS trip"),
        rows,
    )

"""Topological analysis of the system model.

"Defenders think in lists.  Attackers think in graphs." [8] -- the paper's
justification for representing systems as graphs.  Beyond per-component
counts, the topology itself carries security-relevant structure:

* which components sit on many attack paths (betweenness over the
  connection graph),
* which components are articulation points whose compromise or loss
  partitions the control system,
* how much of the system an adversary can reach from each entry point,
* which components form the boundary between the corporate and control
  zones (where segmentation controls belong).

These measures feed the posture discussion qualitatively -- consistent with
the paper's position that the analysis should rank and profile, not produce
pseudo-probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.graph.model import SystemGraph


@dataclass(frozen=True)
class ComponentTopology:
    """Topological profile of one component."""

    name: str
    degree: int
    betweenness: float
    is_articulation_point: bool
    exposure_distance: int | None
    reachable_components: int

    @property
    def is_choke_point(self) -> bool:
        """High-betweenness articulation points are natural defense locations."""
        return self.is_articulation_point and self.betweenness > 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "degree": self.degree,
            "betweenness": self.betweenness,
            "is_articulation_point": self.is_articulation_point,
            "exposure_distance": self.exposure_distance,
            "reachable_components": self.reachable_components,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComponentTopology":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            degree=payload["degree"],
            betweenness=payload["betweenness"],
            is_articulation_point=payload["is_articulation_point"],
            exposure_distance=payload["exposure_distance"],
            reachable_components=payload["reachable_components"],
        )


@dataclass(frozen=True)
class TopologyReport:
    """Topological profile of a whole system model."""

    system_name: str
    components: tuple[ComponentTopology, ...]
    attack_surface: tuple[str, ...]
    boundary_components: tuple[str, ...]

    def component(self, name: str) -> ComponentTopology:
        """Profile of one component."""
        for component in self.components:
            if component.name == name:
                return component
        raise KeyError(f"no topology recorded for component {name!r}")

    def choke_points(self) -> tuple[ComponentTopology, ...]:
        """Components that are both articulation points and path-central."""
        return tuple(c for c in self.components if c.is_choke_point)

    def ranking_by_betweenness(self) -> list[ComponentTopology]:
        """Components ordered by how many attack paths traverse them."""
        return sorted(self.components, key=lambda c: (-c.betweenness, c.name))

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "system_name": self.system_name,
            "components": [component.to_dict() for component in self.components],
            "attack_surface": list(self.attack_surface),
            "boundary_components": list(self.boundary_components),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TopologyReport":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            system_name=payload["system_name"],
            components=tuple(
                ComponentTopology.from_dict(item) for item in payload["components"]
            ),
            attack_surface=tuple(payload["attack_surface"]),
            boundary_components=tuple(payload["boundary_components"]),
        )


def analyze_topology(graph: SystemGraph) -> TopologyReport:
    """Compute the topological security profile of a system model."""
    undirected = nx.Graph()
    undirected.add_nodes_from(graph.component_names())
    for connection in graph.connections:
        undirected.add_edge(connection.source, connection.target)

    betweenness = nx.betweenness_centrality(undirected, normalized=True)
    articulation_points = (
        set(nx.articulation_points(undirected)) if len(undirected) > 2 else set()
    )

    components = []
    for component in graph.components:
        name = component.name
        components.append(
            ComponentTopology(
                name=name,
                degree=undirected.degree(name),
                betweenness=round(betweenness.get(name, 0.0), 6),
                is_articulation_point=name in articulation_points,
                exposure_distance=graph.exposure_distance(name),
                reachable_components=len(graph.reachable_from(name)),
            )
        )

    attack_surface = tuple(component.name for component in graph.entry_points())
    boundary = _boundary_components(graph)
    return TopologyReport(
        system_name=graph.name,
        components=tuple(components),
        attack_surface=attack_surface,
        boundary_components=boundary,
    )


def _boundary_components(graph: SystemGraph) -> tuple[str, ...]:
    """Components adjacent to an entry point but not entry points themselves.

    These are where the corporate/control boundary is enforced -- in the
    demonstration system, the control firewall.
    """
    entry_names = {component.name for component in graph.entry_points()}
    boundary: dict[str, None] = {}
    for entry in entry_names:
        for neighbor in graph.neighbors(entry):
            if neighbor.name not in entry_names:
                boundary.setdefault(neighbor.name)
    return tuple(boundary)


def single_points_of_failure(graph: SystemGraph) -> tuple[str, ...]:
    """Articulation points whose removal disconnects part of the system.

    In a control system these are simultaneously availability risks (losing
    them partitions the loop) and high-value targets (all paths cross them).
    """
    report = analyze_topology(graph)
    return tuple(c.name for c in report.components if c.is_articulation_point)


def segmentation_effectiveness(graph: SystemGraph, protected: str) -> dict[str, int]:
    """How many hops the modeled segmentation puts between attackers and a target.

    Returns the shortest hop count from every entry point to ``protected``
    (``-1`` when unreachable).  A what-if that adds segmentation (a firewall,
    a data diode) should increase these distances; one that bridges zones
    collapses them.
    """
    graph.component(protected)
    distances = {}
    for entry in graph.entry_points():
        try:
            path = graph.shortest_path(entry.name, protected)
            distances[entry.name] = len(path) - 1
        except nx.NetworkXNoPath:
            distances[entry.name] = -1
    return distances

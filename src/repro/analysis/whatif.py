"""What-if comparison of architectural alternatives.

Section 3 of the paper: "In the dashboard we allow for the systems engineer
or security analyst to change the model on the fly and immediately see the
new results.  The dashboard acts as a what-if analysis, where different
architectures are evaluated by experts iteratively to lead to an acceptably
secured system.  The assertion here is that a component or subsystem that
relates with less attack vectors than a functionally equivalent system has a
better security posture."

:class:`WhatIfStudy` re-runs the association for each architectural variant
and compares posture metrics component by component.

The association step is incremental and batched: single comparisons go
through :meth:`repro.search.engine.SearchEngine.reassociate`, which reuses
the baseline's per-component results for every component whose attribute set
is unchanged, and :meth:`WhatIfStudy.sweep` scores all variants in one
:meth:`repro.search.engine.SearchEngine.associate_many` batch, so every
*distinct* edited component across the whole sweep is scored exactly once.
A typical what-if edit touches one component of seven, so the sweep pays for
the edits, not the copies -- with results identical to a full re-run (the
equivalence tests enforce this).  Setting ``workers`` fans the scoring of
edited components out across a thread pool without changing a single score.

Components that exist in only one of the two architectures are surfaced as
:attr:`WhatIfComparison.added_components` / ``removed_components`` so that a
rename (remove + add) cannot masquerade as a posture improvement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import PostureMetrics, compute_posture
from repro.graph.model import SystemGraph
from repro.search.engine import SearchEngine, SystemAssociation


@dataclass(frozen=True)
class ComponentDelta:
    """Change in one component's association between two variants."""

    name: str
    baseline_total: int
    variant_total: int
    baseline_posture: float
    variant_posture: float

    @property
    def delta_total(self) -> int:
        """Variant minus baseline record count (negative is an improvement)."""
        return self.variant_total - self.baseline_total

    @property
    def improved(self) -> bool:
        """Whether the variant associates with fewer attack vectors."""
        return self.variant_total < self.baseline_total

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "baseline_total": self.baseline_total,
            "variant_total": self.variant_total,
            "baseline_posture": self.baseline_posture,
            "variant_posture": self.variant_posture,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComponentDelta":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            baseline_total=payload["baseline_total"],
            variant_total=payload["variant_total"],
            baseline_posture=payload["baseline_posture"],
            variant_posture=payload["variant_posture"],
        )


@dataclass(frozen=True)
class WhatIfComparison:
    """Outcome of comparing a variant architecture against the baseline."""

    baseline_name: str
    variant_name: str
    baseline_metrics: PostureMetrics
    variant_metrics: PostureMetrics
    component_deltas: tuple[ComponentDelta, ...]
    #: Component names present only in the variant (in variant order).
    added_components: tuple[str, ...] = ()
    #: Component names present only in the baseline (in baseline order).
    removed_components: tuple[str, ...] = ()

    @property
    def baseline_total(self) -> int:
        """Total associated records in the baseline architecture."""
        return self.baseline_metrics.total

    @property
    def variant_total(self) -> int:
        """Total associated records in the variant architecture."""
        return self.variant_metrics.total

    @property
    def variant_is_better(self) -> bool:
        """The paper's comparison rule: fewer associated vectors is better."""
        return self.variant_total < self.baseline_total

    def changed_components(self) -> tuple[ComponentDelta, ...]:
        """Components whose association changed between the variants."""
        return tuple(delta for delta in self.component_deltas if delta.delta_total != 0)

    @property
    def component_set_changed(self) -> bool:
        """Whether the two architectures do not share the same component set.

        When true, the totals compare different populations: a renamed or
        removed component lowers the variant total without any mitigation
        having happened, so ``variant_is_better`` should be read with care.
        """
        return bool(self.added_components or self.removed_components)

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "baseline_name": self.baseline_name,
            "variant_name": self.variant_name,
            "baseline_metrics": self.baseline_metrics.to_dict(),
            "variant_metrics": self.variant_metrics.to_dict(),
            "component_deltas": [delta.to_dict() for delta in self.component_deltas],
            "added_components": list(self.added_components),
            "removed_components": list(self.removed_components),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WhatIfComparison":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            baseline_name=payload["baseline_name"],
            variant_name=payload["variant_name"],
            baseline_metrics=PostureMetrics.from_dict(payload["baseline_metrics"]),
            variant_metrics=PostureMetrics.from_dict(payload["variant_metrics"]),
            component_deltas=tuple(
                ComponentDelta.from_dict(item) for item in payload["component_deltas"]
            ),
            added_components=tuple(payload["added_components"]),
            removed_components=tuple(payload["removed_components"]),
        )


@dataclass
class WhatIfStudy:
    """Runs what-if comparisons against a fixed corpus/search configuration.

    ``workers`` is forwarded to every engine association call; any value
    returns bit-identical comparisons (the parallel merge is deterministic),
    larger values only change wall-clock time.
    """

    engine: SearchEngine
    workers: int = 1

    def associate(self, graph: SystemGraph) -> SystemAssociation:
        """Associate one architecture (exposed for callers that need the raw artifact)."""
        return self.engine.associate(graph, workers=self.workers)

    def reassociate(
        self, baseline_association: SystemAssociation, variant: SystemGraph
    ) -> SystemAssociation:
        """Associate a variant incrementally, reusing unchanged components.

        Thin delegation to :meth:`SearchEngine.reassociate`: only components
        whose attribute set differs from the same-named baseline component are
        re-scored; the result is identical to a full :meth:`associate`.
        """
        return self.engine.reassociate(
            baseline_association, variant, workers=self.workers
        )

    def compare(self, baseline: SystemGraph, variant: SystemGraph) -> WhatIfComparison:
        """Associate both architectures and compare their postures."""
        baseline_association = self.engine.associate(baseline)
        variant_association = self.reassociate(baseline_association, variant)
        return self.compare_associations(baseline_association, variant_association)

    def compare_associations(
        self, baseline: SystemAssociation, variant: SystemAssociation
    ) -> WhatIfComparison:
        """Compare two existing associations (avoids recomputation in sweeps)."""
        baseline_metrics = compute_posture(baseline)
        variant_metrics = compute_posture(variant)
        deltas = []
        baseline_names = {
            association.component.name for association in baseline.components
        }
        variant_by_name = {
            association.component.name: association for association in variant.components
        }
        for baseline_component in baseline.components:
            name = baseline_component.component.name
            variant_component = variant_by_name.get(name)
            if variant_component is None:
                continue
            deltas.append(
                ComponentDelta(
                    name=name,
                    baseline_total=baseline_component.total,
                    variant_total=variant_component.total,
                    baseline_posture=baseline_metrics.component(name).posture_index,
                    variant_posture=variant_metrics.component(name).posture_index,
                )
            )
        return WhatIfComparison(
            baseline_name=baseline.system.name,
            variant_name=variant.system.name,
            baseline_metrics=baseline_metrics,
            variant_metrics=variant_metrics,
            component_deltas=tuple(deltas),
            added_components=tuple(
                name for name in variant_by_name if name not in baseline_names
            ),
            removed_components=tuple(
                association.component.name
                for association in baseline.components
                if association.component.name not in variant_by_name
            ),
        )

    def sweep(
        self, baseline: SystemGraph, variants: dict[str, SystemGraph]
    ) -> dict[str, WhatIfComparison]:
        """Compare several named variants against one baseline.

        The baseline is associated once; all variants are then scored in one
        :meth:`SearchEngine.associate_many` batch against it, so unchanged
        components are never re-scored and a component shared by several
        variants is scored at most once for the whole sweep.
        """
        baseline_association = self.engine.associate(baseline, workers=self.workers)
        associations = self.engine.associate_many(
            variants.values(), workers=self.workers, baseline=baseline_association
        )
        return {
            name: self.compare_associations(baseline_association, association)
            for name, association in zip(variants, associations)
        }

"""Mitigation recommendations derived from the merged security artifact.

The paper's end goal is actionable: systems engineers should be able to act
on the security analysis *during design*, when "the impact to cost is lowest
and effectiveness highest".  This module closes the loop from associated
attack vectors back to design guidance:

* a small knowledge base of mitigations per weakness class (paraphrasing the
  "Potential Mitigations" sections of the corresponding CWE entries, plus
  ICS-specific practice such as safety-system segregation),
* a recommender that walks a component's associated weaknesses (and the
  weaknesses behind its matched attack patterns and vulnerabilities, via the
  corpus cross-references) and emits prioritized recommendations,
* hooks for the what-if loop: each recommendation names the architectural
  change to evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.schema import RecordKind
from repro.corpus.store import CorpusStore
from repro.search.engine import ComponentAssociation, SystemAssociation

#: Design-time mitigations per weakness class.  Each entry is
#: (summary, architectural change to evaluate in a what-if).
MITIGATION_KB: dict[str, tuple[str, str]] = {
    "CWE-78": (
        "Neutralize externally influenced input before it reaches a command "
        "interpreter; run control applications with least privilege.",
        "replace direct shell integration with a constrained API on the controller",
    ),
    "CWE-20": (
        "Validate set points and commands against engineering ranges before acting.",
        "add range and rate-of-change validation on controller inputs",
    ),
    "CWE-287": (
        "Require authentication on every engineering and maintenance interface.",
        "enable per-user authentication on the engineering interface",
    ),
    "CWE-306": (
        "Authenticate critical functions (register writes, mode changes, firmware "
        "updates) rather than trusting the network position of the sender.",
        "adopt an authenticated industrial protocol variant for set-point writes",
    ),
    "CWE-319": (
        "Encrypt or authenticate supervisory traffic in transit.",
        "wrap MODBUS traffic in an authenticated transport between WS and BPCS",
    ),
    "CWE-345": (
        "Verify the authenticity of measurements and commands (source and freshness).",
        "add message authentication and sequence numbers on measurement channels",
    ),
    "CWE-294": (
        "Make captured exchanges non-replayable with nonces or timestamps.",
        "add replay protection to the controller protocol sessions",
    ),
    "CWE-400": (
        "Rate-limit and prioritize control traffic so floods cannot starve the loop.",
        "add traffic policing for control-network segments on the firewall",
    ),
    "CWE-494": (
        "Verify integrity and origin of firmware and logic before installation.",
        "require signed firmware and logic downloads on controllers",
    ),
    "CWE-522": (
        "Protect stored credentials; do not keep project passwords in cleartext.",
        "move engineering credentials to a managed vault with per-user accounts",
    ),
    "CWE-798": (
        "Remove hard-coded and default credentials from devices and services.",
        "rotate or disable default accounts on controllers and network devices",
    ),
    "CWE-693": (
        "Keep protection mechanisms (safety interlocks, alarms) independent of the "
        "systems they protect, and monitor their health.",
        "segregate the SIS onto an isolated network segment with hardwired trips",
    ),
    "CWE-924": (
        "Enforce message integrity on the channel between controller and peers.",
        "add integrity protection on the controller's network channel",
    ),
    "CWE-284": (
        "Tighten access-control rules between the corporate and control zones.",
        "restrict firewall rules to the minimum (source, destination, function) set",
    ),
    "CWE-732": (
        "Assign restrictive permissions to engineering projects and firewall rules.",
        "review permission assignment for shared engineering resources",
    ),
    "CWE-1188": (
        "Harden insecure defaults before deployment (services, accounts, features).",
        "apply a hardening baseline to controllers and network equipment",
    ),
    "CWE-119": (
        "Prefer memory-safe parsers for externally reachable services; patch "
        "promptly where that is impossible.",
        "reduce externally reachable services on the platform or update them",
    ),
    "CWE-787": (
        "Treat memory-safety defects in network-facing components as patch-now items.",
        "plan an update cadence for the affected platform",
    ),
    "CWE-416": (
        "Track and apply vendor fixes for memory-corruption defects.",
        "plan an update cadence for the affected platform",
    ),
    "CWE-200": (
        "Limit what configuration and topology information services expose.",
        "disable unauthenticated discovery and banner services",
    ),
    "CWE-1263": (
        "Restrict physical access to cabinets, ports, and field wiring.",
        "add tamper detection and locked enclosures for field devices",
    ),
}


@dataclass(frozen=True)
class Recommendation:
    """One design-time recommendation for a component."""

    component: str
    weakness_id: str
    weakness_name: str
    summary: str
    whatif_change: str
    evidence_count: int
    priority: float

    def describe(self) -> str:
        """One-line rendering for reports and the CLI."""
        return (
            f"[{self.priority:5.1f}] {self.component}: {self.weakness_id} "
            f"({self.weakness_name}) -- {self.summary}"
        )

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "component": self.component,
            "weakness_id": self.weakness_id,
            "weakness_name": self.weakness_name,
            "summary": self.summary,
            "whatif_change": self.whatif_change,
            "evidence_count": self.evidence_count,
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Recommendation":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            component=payload["component"],
            weakness_id=payload["weakness_id"],
            weakness_name=payload["weakness_name"],
            summary=payload["summary"],
            whatif_change=payload["whatif_change"],
            evidence_count=payload["evidence_count"],
            priority=payload["priority"],
        )


def recommend_for_component(
    association: ComponentAssociation,
    corpus: CorpusStore,
    criticality_weight: float = 2.0,
) -> list[Recommendation]:
    """Derive prioritized recommendations for one component.

    Evidence for a weakness class is counted from direct weakness matches and
    from matched vulnerabilities that instantiate it (via the corpus
    cross-references).  Priority is evidence weighted by the component's
    criticality, so the same weakness ranks higher on the safety system than
    on a historian.
    """
    evidence: dict[str, int] = {}
    for match in association.unique_matches():
        if match.kind is RecordKind.WEAKNESS:
            evidence[match.identifier] = evidence.get(match.identifier, 0) + 1
        elif match.kind is RecordKind.VULNERABILITY and match.identifier in corpus:
            record = corpus.get(match.identifier)
            for cwe in getattr(record, "cwe_ids", ()):
                evidence[cwe] = evidence.get(cwe, 0) + 1

    recommendations = []
    component = association.component
    for cwe, count in evidence.items():
        if cwe not in MITIGATION_KB:
            continue
        summary, change = MITIGATION_KB[cwe]
        name = corpus.get(cwe).name if cwe in corpus else cwe
        priority = count * (1.0 + criticality_weight * component.criticality)
        recommendations.append(
            Recommendation(
                component=component.name,
                weakness_id=cwe,
                weakness_name=name,
                summary=summary,
                whatif_change=change,
                evidence_count=count,
                priority=round(priority, 2),
            )
        )
    recommendations.sort(key=lambda r: (-r.priority, r.weakness_id))
    return recommendations


def recommend(
    association: SystemAssociation,
    corpus: CorpusStore,
    per_component: int = 3,
) -> list[Recommendation]:
    """Derive the top recommendations for every component of a system."""
    results: list[Recommendation] = []
    for component_association in association.components:
        results.extend(
            recommend_for_component(component_association, corpus)[:per_component]
        )
    results.sort(key=lambda r: (-r.priority, r.component, r.weakness_id))
    return results


def coverage_of_knowledge_base(corpus: CorpusStore) -> float:
    """Fraction of KB weaknesses present in the corpus (KB/corpus drift check)."""
    known = sum(1 for cwe in MITIGATION_KB if cwe in corpus)
    return known / len(MITIGATION_KB)

"""Analysis layer: the headless analyst "dashboard".

The authors' third prototype tool [13] is a dashboard that "merges system
modeling with the security data associated with it" and supports interactive
what-if analysis.  This package provides the same operations headlessly:

* :mod:`repro.analysis.metrics` -- security-posture metrics over an
  association (counts, exposure weighting, severity profiles, rankings),
* :mod:`repro.analysis.whatif` -- comparison of architectural alternatives,
* :mod:`repro.analysis.report` -- plain-text / markdown report rendering,
  including the paper's Table 1.
"""

from repro.analysis.metrics import ComponentPosture, PostureMetrics, compute_posture
from repro.analysis.recommendations import Recommendation, recommend, recommend_for_component
from repro.analysis.topology import TopologyReport, analyze_topology, single_points_of_failure
from repro.analysis.whatif import WhatIfComparison, WhatIfStudy
from repro.analysis.report import (
    render_consequences,
    render_posture_report,
    render_table,
    render_table1,
    render_whatif,
)

__all__ = [
    "PostureMetrics",
    "ComponentPosture",
    "compute_posture",
    "WhatIfStudy",
    "WhatIfComparison",
    "TopologyReport",
    "analyze_topology",
    "single_points_of_failure",
    "Recommendation",
    "recommend",
    "recommend_for_component",
    "render_table",
    "render_table1",
    "render_posture_report",
    "render_whatif",
    "render_consequences",
]

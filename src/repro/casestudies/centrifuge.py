"""The particle-separation-centrifuge SCADA system of the paper's Section 3.

The demonstration system (Fig. 1) consists of a programming workstation, a
control firewall isolating the corporate network, a safety instrumented
system (SIS) platform, a basic process control system (BPCS) platform
interfaced through MODBUS, a precision temperature sensor, and the centrifuge
itself.  The attribute names used here are exactly the rows of the paper's
Table 1 (``Cisco ASA``, ``NI RT Linux OS``, ``Windows 7``, ``Labview``,
``NI cRIO 9063``, ``NI cRIO 9064``) so the reproduction table lines up with
the published one.

Three builders are provided:

* :func:`build_centrifuge_model` -- the general architectural model, at a
  chosen fidelity level (conceptual / logical / implementation),
* :func:`build_centrifuge_sysml` -- the same architecture expressed through
  the SysML front end (exercises the exporter path of Fig. 1),
* :func:`centrifuge_refinement_plan` / :func:`hardened_workstation_variant`
  -- the refinement and what-if variants used by experiments E3 and E4.
"""

from __future__ import annotations

from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph
from repro.graph.refinement import RefinementPlan, RefinementStep, abstract_model, swap_attribute
from repro.graph.sysml import Block, InternalBlockDiagram

# -- attribute definitions (Table 1 rows) -------------------------------------

CISCO_ASA = Attribute(
    "Cisco ASA",
    kind=AttributeKind.HARDWARE,
    fidelity=Fidelity.IMPLEMENTATION,
    description="Cisco Adaptive Security Appliance firewall",
)

NI_RT_LINUX = Attribute(
    "NI RT Linux OS",
    kind=AttributeKind.OPERATING_SYSTEM,
    fidelity=Fidelity.IMPLEMENTATION,
    description="NI Linux Real-Time operating system based on the Linux kernel",
    tags=("linux kernel", "real-time linux"),
)

WINDOWS_7 = Attribute(
    "Windows 7",
    kind=AttributeKind.OPERATING_SYSTEM,
    fidelity=Fidelity.IMPLEMENTATION,
    description="Microsoft Windows 7 operating system",
    version="SP1",
)

LABVIEW = Attribute(
    "Labview",
    kind=AttributeKind.SOFTWARE,
    fidelity=Fidelity.IMPLEMENTATION,
    description="NI LabVIEW graphical programming environment",
)

CRIO_9063 = Attribute(
    "NI cRIO 9063",
    kind=AttributeKind.HARDWARE,
    fidelity=Fidelity.IMPLEMENTATION,
    description="CompactRIO controller",
)

CRIO_9064 = Attribute(
    "NI cRIO 9064",
    kind=AttributeKind.HARDWARE,
    fidelity=Fidelity.IMPLEMENTATION,
    description="CompactRIO controller",
)

MODBUS = Attribute(
    "MODBUS",
    kind=AttributeKind.PROTOCOL,
    fidelity=Fidelity.LOGICAL,
    description="MODBUS TCP industrial protocol interface",
)


def build_centrifuge_model(fidelity: Fidelity = Fidelity.IMPLEMENTATION) -> SystemGraph:
    """Build the SCADA centrifuge system model.

    ``fidelity`` caps the attributes included: ``CONCEPTUAL`` keeps only the
    functional descriptions, ``LOGICAL`` adds platform classes and protocols,
    ``IMPLEMENTATION`` (default) adds the specific products of Table 1.
    """
    graph = SystemGraph("particle-separation-centrifuge")
    graph.add_components(
        [
            Component(
                "Corporate Network",
                kind=ComponentKind.EXTERNAL,
                description="enterprise business network outside the control boundary",
                attributes=(
                    Attribute(
                        "enterprise network",
                        kind=AttributeKind.NETWORK,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="corporate office network with internet access",
                    ),
                ),
                entry_point=True,
                subsystem="corporate",
                criticality=0.2,
            ),
            Component(
                "Control Firewall",
                kind=ComponentKind.FIREWALL,
                description="isolates the corporate network from the control network",
                attributes=(
                    Attribute(
                        "network boundary protection",
                        kind=AttributeKind.FUNCTION,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="separates corporate traffic from supervisory control traffic",
                    ),
                    Attribute(
                        "firewall appliance",
                        kind=AttributeKind.HARDWARE,
                        fidelity=Fidelity.LOGICAL,
                        description="perimeter firewall appliance with VPN remote access",
                    ),
                    CISCO_ASA,
                ),
                subsystem="control network",
                criticality=0.8,
            ),
            Component(
                "Programming WS",
                kind=ComponentKind.WORKSTATION,
                description=(
                    "controller of the centrifuge, programmed in NI LabVIEW and "
                    "monitored by operators"
                ),
                attributes=(
                    Attribute(
                        "supervisory programming and monitoring",
                        kind=AttributeKind.FUNCTION,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="engineering workstation used by operators to program and monitor the centrifuge controller",
                    ),
                    Attribute(
                        "engineering workstation",
                        kind=AttributeKind.HARDWARE,
                        fidelity=Fidelity.LOGICAL,
                        description="desktop computer on the control network",
                    ),
                    WINDOWS_7,
                    LABVIEW,
                ),
                subsystem="control network",
                criticality=0.7,
            ),
            Component(
                "SIS Platform",
                kind=ComponentKind.SAFETY_SYSTEM,
                description=(
                    "redundant safety monitor for the centrifuge controller, for "
                    "example temperature too high for commanded mode or speed too high"
                ),
                attributes=(
                    Attribute(
                        "redundant safety monitor",
                        kind=AttributeKind.FUNCTION,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="safety instrumented system that trips the centrifuge on unsafe temperature or speed",
                    ),
                    Attribute(
                        "embedded real-time controller",
                        kind=AttributeKind.HARDWARE,
                        fidelity=Fidelity.LOGICAL,
                        description="embedded controller executing the safety logic",
                    ),
                    CRIO_9063,
                    NI_RT_LINUX,
                ),
                subsystem="control network",
                criticality=1.0,
            ),
            Component(
                "BPCS Platform",
                kind=ComponentKind.CONTROLLER,
                description="main centrifuge controller interfaced through MODBUS",
                attributes=(
                    Attribute(
                        "centrifuge process control",
                        kind=AttributeKind.FUNCTION,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="basic process control system regulating rotor speed and temperature set points",
                    ),
                    Attribute(
                        "embedded real-time controller",
                        kind=AttributeKind.HARDWARE,
                        fidelity=Fidelity.LOGICAL,
                        description="embedded controller executing the supervisory control loop",
                    ),
                    MODBUS,
                    CRIO_9064,
                    NI_RT_LINUX,
                ),
                subsystem="control network",
                criticality=0.9,
            ),
            Component(
                "Temperature Sensor",
                kind=ComponentKind.SENSOR,
                description=(
                    "precision passive temperature probe that monitors the solution "
                    "temperature to plus or minus 0.2 degrees Celsius"
                ),
                attributes=(
                    Attribute(
                        "temperature measurement",
                        kind=AttributeKind.PHYSICAL,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="passive precision temperature probe",
                    ),
                ),
                subsystem="process",
                criticality=0.8,
            ),
            Component(
                "Centrifuge",
                kind=ComponentKind.PLANT,
                description=(
                    "precision variable speed centrifuge capable of 10000 rpm and "
                    "regulation within plus or minus 1 rpm of set point"
                ),
                attributes=(
                    Attribute(
                        "particle separation rotor",
                        kind=AttributeKind.PHYSICAL,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="variable speed rotor separating particulate from solution",
                    ),
                ),
                subsystem="process",
                criticality=1.0,
            ),
        ]
    )
    graph.connect_all(
        [
            Connection("Corporate Network", "Control Firewall", protocol="Ethernet/IP",
                       description="business traffic entering the control perimeter"),
            Connection("Control Firewall", "Programming WS", protocol="Ethernet/IP",
                       description="control network segment behind the firewall"),
            Connection("Programming WS", "BPCS Platform", protocol="MODBUS",
                       description="supervisory commands and set points"),
            Connection("Programming WS", "SIS Platform", protocol="Ethernet/IP",
                       description="safety system status monitoring"),
            Connection("BPCS Platform", "SIS Platform", protocol="Ethernet/IP",
                       description="controller state shared with the safety monitor"),
            Connection("BPCS Platform", "Centrifuge", protocol="", medium="analog",
                       description="variable frequency drive speed command"),
            Connection("SIS Platform", "Centrifuge", protocol="", medium="analog",
                       description="hardwired safety trip of the rotor drive"),
            Connection("Temperature Sensor", "BPCS Platform", protocol="", medium="analog",
                       description="4-20 mA temperature measurement"),
            Connection("Temperature Sensor", "SIS Platform", protocol="", medium="analog",
                       description="4-20 mA temperature measurement"),
            Connection("Centrifuge", "Temperature Sensor", protocol="", medium="physical",
                       description="solution temperature sensed by the probe"),
        ]
    )
    if fidelity < Fidelity.IMPLEMENTATION:
        return abstract_model(graph, fidelity)
    return graph


def build_centrifuge_sysml() -> InternalBlockDiagram:
    """The same architecture expressed through the SysML front end.

    Exercises the export path of Fig. 1: SysML internal block diagram ->
    general architectural model -> GraphML -> search engine.
    """
    diagram = InternalBlockDiagram("particle-separation-centrifuge")

    corporate = Block("Corporate Network", stereotype="external", entry_point=True,
                      subsystem="corporate", criticality=0.2,
                      documentation="enterprise business network outside the control boundary")
    corporate.add_property("network", "enterprise network", Fidelity.CONCEPTUAL)
    corporate.add_port("uplink", protocol="Ethernet/IP")

    firewall = Block("Control Firewall", stereotype="firewall", subsystem="control network",
                     criticality=0.8,
                     documentation="isolates the corporate network from the control network")
    firewall.add_property("function", "network boundary protection", Fidelity.CONCEPTUAL)
    firewall.add_property("hardware", "firewall appliance", Fidelity.LOGICAL)
    firewall.add_property("hardware", CISCO_ASA)
    firewall.add_port("outside", protocol="Ethernet/IP")
    firewall.add_port("inside", protocol="Ethernet/IP")

    workstation = Block("Programming WS", stereotype="workstation", subsystem="control network",
                        criticality=0.7,
                        documentation="controller of the centrifuge, programmed in NI LabVIEW")
    workstation.add_property("function", "supervisory programming and monitoring", Fidelity.CONCEPTUAL)
    workstation.add_property("os", WINDOWS_7)
    workstation.add_property("software", LABVIEW)
    workstation.add_port("lan", protocol="Ethernet/IP")
    workstation.add_port("scada", protocol="MODBUS")

    sis = Block("SIS Platform", stereotype="safety", subsystem="control network",
                criticality=1.0,
                documentation="redundant safety monitor for the centrifuge controller")
    sis.add_property("function", "redundant safety monitor", Fidelity.CONCEPTUAL)
    sis.add_property("hardware", CRIO_9063)
    sis.add_property("os", NI_RT_LINUX)
    sis.add_port("lan", protocol="Ethernet/IP")
    sis.add_port("trip", protocol="")

    bpcs = Block("BPCS Platform", stereotype="controller", subsystem="control network",
                 criticality=0.9,
                 documentation="main centrifuge controller interfaced through MODBUS")
    bpcs.add_property("function", "centrifuge process control", Fidelity.CONCEPTUAL)
    bpcs.add_property("protocol", MODBUS)
    bpcs.add_property("hardware", CRIO_9064)
    bpcs.add_property("os", NI_RT_LINUX)
    bpcs.add_port("scada", protocol="MODBUS")
    bpcs.add_port("lan", protocol="Ethernet/IP")
    bpcs.add_port("drive", protocol="")

    sensor = Block("Temperature Sensor", stereotype="sensor", subsystem="process",
                   criticality=0.8,
                   documentation="precision passive temperature probe")
    sensor.add_property("physical", "temperature measurement", Fidelity.CONCEPTUAL)
    sensor.add_port("signal", protocol="")

    centrifuge = Block("Centrifuge", stereotype="plant", subsystem="process",
                       criticality=1.0,
                       documentation="precision variable speed centrifuge")
    centrifuge.add_property("physical", "particle separation rotor", Fidelity.CONCEPTUAL)
    centrifuge.add_port("drive", protocol="")
    centrifuge.add_port("thermal", protocol="")

    for block in (corporate, firewall, workstation, sis, bpcs, sensor, centrifuge):
        diagram.add_block(block)

    diagram.connect("Corporate Network", "uplink", "Control Firewall", "outside",
                    protocol="Ethernet/IP")
    diagram.connect("Control Firewall", "inside", "Programming WS", "lan",
                    protocol="Ethernet/IP")
    diagram.connect("Programming WS", "scada", "BPCS Platform", "scada",
                    protocol="MODBUS")
    diagram.connect("Programming WS", "lan", "SIS Platform", "lan",
                    protocol="Ethernet/IP")
    diagram.connect("BPCS Platform", "lan", "SIS Platform", "lan",
                    protocol="Ethernet/IP")
    diagram.connect("BPCS Platform", "drive", "Centrifuge", "drive", medium="analog")
    diagram.connect("SIS Platform", "trip", "Centrifuge", "drive", medium="analog")
    diagram.connect("Temperature Sensor", "signal", "BPCS Platform", "lan", medium="analog")
    diagram.connect("Temperature Sensor", "signal", "SIS Platform", "lan", medium="analog")
    diagram.connect("Centrifuge", "thermal", "Temperature Sensor", "signal", medium="physical")
    return diagram


def centrifuge_refinement_plan() -> RefinementPlan:
    """The refinement plan from the logical model to the implementation model.

    Applying this plan to ``build_centrifuge_model(Fidelity.LOGICAL)`` yields
    the same attribute population as the implementation-fidelity model, which
    is what the fidelity-sensitivity experiment (E3) sweeps.
    """
    plan = RefinementPlan("implementation-choices")
    plan.add(RefinementStep("Control Firewall", (CISCO_ASA,),
                            "perimeter device selected: Cisco ASA"))
    plan.add(RefinementStep("Programming WS", (WINDOWS_7, LABVIEW),
                            "workstation OS and engineering software selected"))
    plan.add(RefinementStep("SIS Platform", (CRIO_9063, NI_RT_LINUX),
                            "safety controller hardware and OS selected"))
    plan.add(RefinementStep("BPCS Platform", (CRIO_9064, NI_RT_LINUX),
                            "process controller hardware and OS selected"))
    return plan


def hardened_workstation_variant(graph: SystemGraph) -> SystemGraph:
    """The what-if variant of experiment E4: replace the Windows 7 workstation.

    The programming workstation's ``Windows 7`` attribute is swapped for a
    hardened thin-client terminal (functionally equivalent for operators, far
    smaller attack-vector population), the comparison the paper's dashboard
    what-if loop is meant to support.
    """
    variant = swap_attribute(
        graph,
        "Programming WS",
        "Windows 7",
        Attribute(
            "hardened thin client",
            kind=AttributeKind.OPERATING_SYSTEM,
            fidelity=Fidelity.IMPLEMENTATION,
            description="locked-down thin client terminal with kiosk interface",
        ),
    )
    variant.name = f"{graph.name}-hardened-ws"
    return variant

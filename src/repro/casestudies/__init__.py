"""Case-study system models.

* :mod:`repro.casestudies.centrifuge` -- the particle-separation-centrifuge
  SCADA system of the paper's demonstration (Section 3, Fig. 1),
* :mod:`repro.casestudies.uav` -- a small unmanned-aircraft system, the
  authors' other recurring case study, used as a second example application.
"""

from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    build_centrifuge_sysml,
    centrifuge_refinement_plan,
    hardened_workstation_variant,
)
from repro.casestudies.uav import build_uav_model

__all__ = [
    "build_centrifuge_model",
    "build_centrifuge_sysml",
    "centrifuge_refinement_plan",
    "hardened_workstation_variant",
    "build_uav_model",
]

"""A small unmanned-aircraft system (UAS) model.

The authors' earlier work [6, 9] applies the same pipeline to an unmanned
aerial vehicle; this model provides a second, structurally different case
study: a ground control station connected over a telemetry radio to a flight
controller that fuses GPS and inertial measurements and drives the motors.

It is used by the ``examples/uav_assessment.py`` example and by tests that
check the pipeline is not specialized to the centrifuge model.
"""

from __future__ import annotations

from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph


def build_uav_model() -> SystemGraph:
    """Build the UAV system model at implementation fidelity."""
    graph = SystemGraph("quadcopter-uas")
    graph.add_components(
        [
            Component(
                "Ground Control Station",
                kind=ComponentKind.WORKSTATION,
                description="operator laptop running mission planning software",
                attributes=(
                    Attribute(
                        "mission planning and telemetry display",
                        kind=AttributeKind.FUNCTION,
                        fidelity=Fidelity.CONCEPTUAL,
                    ),
                    Attribute(
                        "Windows 7",
                        kind=AttributeKind.OPERATING_SYSTEM,
                        fidelity=Fidelity.IMPLEMENTATION,
                        description="Microsoft Windows 7 operating system",
                    ),
                    Attribute(
                        "ground control software",
                        kind=AttributeKind.SOFTWARE,
                        fidelity=Fidelity.LOGICAL,
                        description="mission planner ground control application",
                    ),
                ),
                entry_point=True,
                subsystem="ground segment",
                criticality=0.7,
            ),
            Component(
                "Telemetry Radio",
                kind=ComponentKind.NETWORK_DEVICE,
                description="900 MHz serial telemetry radio link",
                attributes=(
                    Attribute(
                        "wireless telemetry link",
                        kind=AttributeKind.NETWORK,
                        fidelity=Fidelity.LOGICAL,
                        description="unencrypted serial radio broadcasting telemetry and commands",
                    ),
                    Attribute(
                        "MAVLink",
                        kind=AttributeKind.PROTOCOL,
                        fidelity=Fidelity.LOGICAL,
                        description="MAVLink command and telemetry protocol",
                    ),
                ),
                entry_point=True,
                subsystem="link segment",
                criticality=0.6,
            ),
            Component(
                "Flight Controller",
                kind=ComponentKind.CONTROLLER,
                description="autopilot computing attitude and position control",
                attributes=(
                    Attribute(
                        "flight control and stabilization",
                        kind=AttributeKind.FUNCTION,
                        fidelity=Fidelity.CONCEPTUAL,
                    ),
                    Attribute(
                        "embedded real-time controller",
                        kind=AttributeKind.HARDWARE,
                        fidelity=Fidelity.LOGICAL,
                        description="embedded autopilot board with real-time firmware",
                    ),
                    Attribute(
                        "autopilot firmware",
                        kind=AttributeKind.FIRMWARE,
                        fidelity=Fidelity.IMPLEMENTATION,
                        description="open source autopilot firmware with parameter interface",
                    ),
                ),
                subsystem="air segment",
                criticality=1.0,
            ),
            Component(
                "GPS Receiver",
                kind=ComponentKind.SENSOR,
                description="satellite navigation receiver",
                attributes=(
                    Attribute(
                        "position measurement",
                        kind=AttributeKind.PHYSICAL,
                        fidelity=Fidelity.CONCEPTUAL,
                        description="GPS satellite navigation position and velocity measurement",
                    ),
                ),
                subsystem="air segment",
                criticality=0.8,
            ),
            Component(
                "Inertial Measurement Unit",
                kind=ComponentKind.SENSOR,
                description="MEMS accelerometer and gyroscope package",
                attributes=(
                    Attribute(
                        "attitude rate measurement",
                        kind=AttributeKind.PHYSICAL,
                        fidelity=Fidelity.CONCEPTUAL,
                    ),
                ),
                subsystem="air segment",
                criticality=0.9,
            ),
            Component(
                "Motor Controllers",
                kind=ComponentKind.ACTUATOR,
                description="electronic speed controllers driving the rotors",
                attributes=(
                    Attribute(
                        "rotor thrust actuation",
                        kind=AttributeKind.PHYSICAL,
                        fidelity=Fidelity.CONCEPTUAL,
                    ),
                ),
                subsystem="air segment",
                criticality=0.9,
            ),
            Component(
                "Airframe",
                kind=ComponentKind.PLANT,
                description="quadcopter airframe and rotors",
                attributes=(
                    Attribute(
                        "rigid body flight dynamics",
                        kind=AttributeKind.PHYSICAL,
                        fidelity=Fidelity.CONCEPTUAL,
                    ),
                ),
                subsystem="air segment",
                criticality=1.0,
            ),
        ]
    )
    graph.connect_all(
        [
            Connection("Ground Control Station", "Telemetry Radio", protocol="MAVLink",
                       medium="serial", description="commands uplinked to the vehicle"),
            Connection("Telemetry Radio", "Flight Controller", protocol="MAVLink",
                       medium="serial", description="command and telemetry exchange"),
            Connection("GPS Receiver", "Flight Controller", protocol="UBX",
                       medium="serial", description="position and velocity solution"),
            Connection("Inertial Measurement Unit", "Flight Controller", protocol="SPI",
                       medium="bus", description="raw inertial measurements"),
            Connection("Flight Controller", "Motor Controllers", protocol="PWM",
                       medium="analog", description="commanded motor speeds"),
            Connection("Motor Controllers", "Airframe", protocol="", medium="physical",
                       description="rotor thrust applied to the airframe"),
            Connection("Airframe", "Inertial Measurement Unit", protocol="", medium="physical",
                       description="vehicle motion sensed by the IMU"),
        ]
    )
    return graph

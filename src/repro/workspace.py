"""Single-file workspace artifact for sub-second cold starts.

A cold run of the pipeline at corpus scale 1.0 pays for synthetic corpus
generation, tokenization of ~24k record texts, and the TF-IDF fit before the
first query can be answered -- exactly the "analyst opens the tool" path the
paper's design-phase exploration loop depends on.  The workspace bundles
every prepared build product in **one file**, the way vector-database loaders
persist their embeddings: save once, load in milliseconds ever after.

The artifact is a framed container::

    CPSECWS1\\n
    <header length in bytes, decimal>\\n
    <header JSON>
    <section bytes, concatenated>

The header records the format version, the deterministic corpus-generation
parameters, the engine configuration in effect at build time, and byte ranges
for three sections:

Format **version 2** (the default written by :meth:`Workspace.save`) keeps
the same framing but page-aligns every section (the header block is padded
so the first section starts on a 4096-byte boundary, and each further
section offset is a multiple of 4096) and stores postings *columnar per
kind*: all position values concatenated in token order, then all term
frequencies.  That layout is what makes the artifact ``mmap``-able:
``Workspace.load(path, mmap=True)`` maps the file read-only and builds every
posting buffer as a ``numpy.frombuffer`` **view over the mapped pages** --
no JSON parsing of postings, no byte copies, and N worker processes serving
the same artifact share one OS page cache instead of N private heap copies.
Cold ``load(mmap=True)`` of a compacted v2 artifact parses only the header;
the prepared payload hydrates lazily on the first engine build, and the
corpus JSON stays lazy exactly as in eager mode.  Version-1 artifacts (and
``mmap=False``, the default) take the legacy eager-decode path.

* ``prepared`` -- the engine's :meth:`~repro.search.engine.SearchEngine.
  prepared_payload` minus the posting lists (columnar match prototypes,
  platform tables, per-index document tables, corpus fingerprint), parsed
  eagerly on load,
* ``postings`` -- every index's positional posting buffers as raw
  little-endian ``uint32`` bytes, decoded with bulk ``array.frombytes``
  instead of JSON number parsing (hundreds of thousands of postings),
* ``corpus`` -- the full corpus JSON, kept as raw bytes and parsed
  **lazily**: coverage/cosine association never touches corpus records, so
  the fast path skips deserializing ~10 MB of JSON entirely.

Framing means one ``open()``/``read()`` per cold start, and sections can be
decoded independently; writes go through the shared atomic
write-temp-then-rename helper so an interrupted save can never leave a
corrupt artifact.

Ingesting new records does **not** rewrite the artifact:
:meth:`Workspace.extend` appends a self-describing *delta frame* --
``CPSECWSX`` magic, its own header, a postings delta (global positions
continuing the base numbering), the new records' match prototypes, shard
assignments, and the delta corpus JSON -- to the end of the file.
:meth:`Workspace.load` replays every frame over the base sections, so a
loaded extended workspace is structurally identical to the in-memory result
of the same ``extend`` calls (the same apply function runs in both
directions).  Each frame records the corpus fingerprint it chains from;
a frame whose predecessor does not match -- a file someone rewrote between
load and append -- fails the load loudly instead of mixing corpora.  A
frame *torn* by a crash mid-append is recovered from instead: the load
serves the last consistent state (the extend never completed) and the next
``extend`` truncates the torn bytes before appending its own frame.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap
import sys
import threading
from array import array
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.corpus.schema import AttackVectorRecord, RecordKind
from repro.corpus.store import CorpusStore
from repro.corpus.synthesis import build_corpus, build_params
from repro.ioutils import atomic_write_bytes
from repro.search.engine import SearchEngine, _corpus_fingerprint, _record_proto
from repro.search.index import InvertedIndex, validate_posting_positions
from repro.search.sharding import DEFAULT_MAX_SHARDS, ShardMap
from repro.search.text import tokenize

#: Magic line identifying a workspace artifact file.
MAGIC = b"CPSECWS1"

#: Magic line identifying an appended delta frame (see module docstring).
DELTA_MAGIC = b"CPSECWSX"

#: Workspace format version; bump when the layout changes.  Version 2 is
#: the page-aligned, mmap-able layout; version 1 artifacts still load.
WORKSPACE_VERSION = 2

#: Workspace format versions :meth:`Workspace.load` understands.
SUPPORTED_VERSIONS = (1, 2)

#: Alignment of version-2 section starts (one page on every platform the
#: artifact targets): a section boundary is also a page boundary, so the
#: binary sections map cleanly and worker processes share whole pages.
SECTION_ALIGN = 4096

#: Delta frame format version; bump when the frame layout changes.
DELTA_VERSION = 1

#: Engine-configuration fields recorded in the artifact and replayed as
#: defaults by :meth:`Workspace.engine`, with the types a loaded artifact
#: must carry for each (checked by :meth:`Workspace.load`, so a corrupt
#: configuration is rejected as :class:`ValueError` -- the rebuild-fallback
#: signal -- instead of surfacing later as a :class:`TypeError`).
ENGINE_CONFIG_TYPES: dict[str, tuple[type, ...]] = {
    "pattern_threshold": (int, float),
    "weakness_threshold": (int, float),
    "vulnerability_text_threshold": (int, float),
    "platform_coverage": (int, float),
    "fidelity_aware": (bool,),
    "scorer": (str,),
    "max_per_class": (int, type(None)),
    "enable_cache": (bool,),
    "max_cache_entries": (int, type(None)),
    "sharded": (bool,),
    "max_shards": (int,),
}

ENGINE_CONFIG_FIELDS = tuple(ENGINE_CONFIG_TYPES)

#: Bound on the warm engine handles one workspace keeps (distinct effective
#: configurations: scorer variants, threshold overrides, ...).  Each handle
#: owns fitted TF-IDF models and result caches, so an unbounded pool on a
#: long-lived multi-workspace server would grow with every configuration a
#: client ever asked for; the least-recently-used handle is dropped instead
#: (a re-request rebuilds it -- speed changes, results never do).
MAX_ENGINE_HANDLES = 8


def _validate_engine_config(engine_config: dict) -> dict:
    """Reject unknown keys or wrong-typed values in a loaded configuration."""
    if not isinstance(engine_config, dict):
        raise ValueError("workspace engine_config must be a JSON object")
    for key, value in engine_config.items():
        expected = ENGINE_CONFIG_TYPES.get(key)
        if expected is None:
            raise ValueError(f"unknown workspace engine_config key {key!r}")
        if not isinstance(value, expected) or (
            isinstance(value, bool) and bool not in expected
        ):
            raise ValueError(
                f"workspace engine_config key {key!r} has invalid value {value!r}"
            )
    return engine_config


@dataclass
class Workspace:
    """A saved (corpus, prepared engine, configuration) bundle.

    Build one from scratch with :meth:`build`, or around an existing corpus
    and engine with :meth:`from_engine`; persist with :meth:`save` and
    restore with :meth:`load`.  Engines produced by :meth:`engine` are
    bit-identical to engines built from the original corpus (the workspace
    equivalence tests pin this).
    """

    #: Prepared engine payload.  ``None`` on a freshly bundled engine
    #: (:meth:`from_engine` defers the ~60 ms serialization until save or an
    #: engine rebuild actually needs it); always a dict after :meth:`load`.
    prepared: dict | None
    params: dict | None = None
    engine_config: dict = field(default_factory=dict)
    _corpus: CorpusStore | None = field(default=None, repr=False)
    #: Raw corpus-section payload, parsed lazily.  Eager loads hold a
    #: ``bytes`` copy; mmap loads hold a zero-copy ``memoryview`` into the
    #: mapped pages.
    _corpus_bytes: bytes | memoryview | None = field(default=None, repr=False)
    #: The engine this workspace was built from, handed back by
    #: :meth:`engine` when the requested configuration matches, so that
    #: build-then-associate flows never tokenize-and-fit a second engine.
    _built_engine: SearchEngine | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._corpus_lock = threading.Lock()
        self._prepared_lock = threading.Lock()
        self._engine_handles: dict[tuple, SearchEngine] = {}
        self._engine_handles_lock = threading.Lock()
        self._engine_handle_evictions = 0
        self.max_engine_handles: int | None = MAX_ENGINE_HANDLES
        #: Delta-corpus payloads not yet merged into :attr:`_corpus`: raw
        #: JSON bytes (from loaded delta frames) or record lists (from
        #: in-memory :meth:`extend` calls on a still-raw corpus).  Parsed
        #: lazily with the base corpus bytes.
        self._corpus_deltas: list[bytes | list[AttackVectorRecord]] = []
        #: Byte length of the artifact content this workspace reflects (set
        #: by :meth:`save` and :meth:`load`).  :meth:`extend` truncates the
        #: file back to this length before appending, so a torn tail left by
        #: a crashed append (ignored at load) cannot end up *mid-file* in
        #: front of a new frame.
        self._valid_length: int | None = None
        #: Delta frames this workspace carries on top of its base sections:
        #: frames replayed by :meth:`load` plus frames appended by
        #: :meth:`extend`.  :meth:`compact` folds them away and reports the
        #: count.
        self._replayed_frames = 0
        #: Deferred-hydration state of a lazily mmap-loaded workspace
        #: (buffer, section directory, header); ``None`` once hydrated or
        #: for eager loads.  See :meth:`_materialized_prepared`.
        self._mmap_pending: dict | None = None
        #: The live memory map backing this workspace's posting views (kept
        #: referenced so the mapping outlives the file handle).
        self._mmap: _mmap.mmap | None = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        scale: float = 1.0,
        seed: int = 7,
        include_background: bool = True,
        **engine_kwargs,
    ) -> "Workspace":
        """Synthesize the corpus, build the engine, and bundle both."""
        corpus = build_corpus(
            scale=scale, seed=seed, include_background=include_background
        )
        engine = SearchEngine(corpus, **engine_kwargs)
        workspace = cls.from_engine(engine)
        workspace.params = build_params(
            scale=scale, seed=seed, include_background=include_background
        )
        return workspace

    @classmethod
    def from_engine(cls, engine: SearchEngine) -> "Workspace":
        """Bundle an existing engine (and its corpus) into a workspace.

        The prepared payload is *not* serialized here: build-then-associate
        flows that never save or reconfigure would pay for it without ever
        reading it.  It materializes lazily (see :attr:`prepared`).
        """
        return cls(
            prepared=None,
            params=None,
            engine_config={
                name: getattr(engine, name) for name in ENGINE_CONFIG_FIELDS
            },
            _corpus=engine.corpus,
            _built_engine=engine,
        )

    def _materialized_prepared(self) -> dict:
        """The prepared payload, serialized from the built engine on demand.

        A lazily mmap-loaded workspace hydrates here instead: the prepared
        JSON section is parsed and every posting buffer becomes a zero-copy
        ``numpy`` view over the mapped pages.
        """
        if self.prepared is None:
            with self._prepared_lock:
                if self.prepared is None:
                    if self._mmap_pending is not None:
                        pending = self._mmap_pending
                        self.prepared = _hydrate_prepared_v2(
                            pending["buffer"],
                            pending["base"],
                            pending["sections"],
                            pending["header"],
                            zero_copy=pending["zero_copy"],
                        )
                        self._mmap_pending = None
                    elif self._built_engine is None:
                        raise ValueError(
                            "workspace has neither a prepared payload nor an engine"
                        )
                    else:
                        self.prepared = self._built_engine.prepared_payload()
        return self.prepared

    # -- corpus ---------------------------------------------------------------

    @property
    def corpus(self) -> CorpusStore:
        """The corpus, materialized from the raw section bytes on first use.

        Materialization is locked: concurrent first touches (the jaccard
        scorer under a ``workers=N`` fan-out) parse the corpus JSON once,
        not once per thread.
        """
        if self._corpus is None or self._corpus_deltas:
            with self._corpus_lock:
                if self._corpus is None:
                    if self._corpus_bytes is None:
                        raise ValueError(
                            "workspace has neither a corpus nor corpus bytes"
                        )
                    payload = self._corpus_bytes
                    if isinstance(payload, memoryview):
                        # json.loads needs bytes; the copy happens only when
                        # something actually touches the corpus.
                        payload = payload.tobytes()
                    self._corpus = CorpusStore.from_dict(json.loads(payload))
                    self._corpus_bytes = None
                while self._corpus_deltas:
                    # Merge first, pop after: the unlocked fast-path guard
                    # above reads ``_corpus_deltas``, and a reader racing
                    # this merge must keep seeing a pending delta (and take
                    # the lock) until the records are fully in.
                    delta = self._corpus_deltas[0]
                    if isinstance(delta, bytes):
                        self._corpus.merge(CorpusStore.from_dict(json.loads(delta)))
                    else:
                        self._corpus.add_all(delta)
                    self._corpus_deltas.pop(0)
        return self._corpus

    @property
    def corpus_fingerprint(self) -> str | None:
        """Content hash of the bundled corpus (from the prepared payload)."""
        if self.prepared is None and self._mmap_pending is not None:
            # The header carries the fingerprint; answering from it keeps a
            # lazily mapped workspace lazy (hydration is cross-checked
            # against the header when it does happen).
            return self._mmap_pending["header"].get("corpus_fingerprint")
        return self._materialized_prepared().get("corpus_fingerprint")

    def matches(
        self,
        scale: float = 1.0,
        seed: int = 7,
        include_background: bool = True,
    ) -> bool:
        """Whether this workspace was built with the given corpus parameters.

        Corpus generation is deterministic, so matching parameters guarantee
        the bundled corpus equals what :func:`repro.corpus.synthesis.
        build_corpus` would regenerate.  The recorded parameters include the
        generator's :data:`~repro.corpus.synthesis.SYNTHESIS_VERSION`, so an
        artifact saved by an older generator stops matching when the
        synthetic output changes, instead of being silently trusted.
        Workspaces built around externally supplied corpora (no recorded
        parameters) never match.
        """
        if self.params is None:
            return False
        return self.params == build_params(
            scale=scale, seed=seed, include_background=include_background
        )

    # -- engines --------------------------------------------------------------

    def engine(self, **overrides) -> SearchEngine:
        """A search engine over the bundled artifacts, skipping every rebuild.

        Keyword overrides win over the recorded engine configuration (e.g.
        ``workspace.engine(scorer="cosine")``).  A workspace that was just
        built (:meth:`build` / :meth:`from_engine`) hands back the engine it
        was built from when every override matches the recorded
        configuration, so the build-save-associate flow fits exactly one
        engine.  Loaded workspaces construct from the prepared payload with
        the corpus attached lazily: association with the coverage or cosine
        scorer runs without ever deserializing corpus records.
        """
        if self._built_engine is not None and all(
            key in self.engine_config and self.engine_config[key] == value
            for key, value in overrides.items()
        ):
            return self._built_engine
        kwargs = {**self.engine_config, **overrides}
        return SearchEngine.from_prepared(
            self._materialized_prepared(),
            corpus_loader=lambda: self.corpus,
            **kwargs,
        )

    def shared_engine(self, **overrides) -> SearchEngine:
        """A long-lived engine handle, one per effective configuration.

        :meth:`engine` constructs a fresh engine (a TF-IDF refit per record
        class) on every call; a long-lived service wants the *same* warm
        engine back for repeated requests so its result caches and stats
        accumulate.  This method memoizes engines per effective configuration
        (recorded config merged with the overrides) under a lock, so N
        concurrent requests share one engine instead of racing N builds.

        The pool is LRU-bounded by :attr:`max_engine_handles` (``None``
        disables the bound); evictions are counted and surfaced through
        :meth:`engine_pool_info` / the service's ``/healthz``.  Eviction
        changes speed only -- a dropped configuration is rebuilt, bit
        identically, on its next request.
        """
        effective = {**self.engine_config, **overrides}
        key = tuple(sorted(effective.items()))
        with self._engine_handles_lock:
            engine = self._engine_handles.get(key)
            if engine is not None:
                # Reinsert so plain dict order doubles as LRU order.
                self._engine_handles[key] = self._engine_handles.pop(key)
            else:
                engine = self.engine(**overrides)
                self._engine_handles[key] = engine
                while (
                    self.max_engine_handles is not None
                    and len(self._engine_handles) > self.max_engine_handles
                ):
                    self._engine_handles.pop(next(iter(self._engine_handles)))
                    self._engine_handle_evictions += 1
        return engine

    def engine_handles(self) -> tuple[SearchEngine, ...]:
        """Every engine currently held by the :meth:`shared_engine` pool."""
        with self._engine_handles_lock:
            return tuple(self._engine_handles.values())

    def engine_pool_info(self) -> dict:
        """Occupancy, bound, and eviction count of the shared-engine pool."""
        with self._engine_handles_lock:
            return {
                "engines": len(self._engine_handles),
                "max_engines": self.max_engine_handles,
                "evictions": self._engine_handle_evictions,
            }

    # -- incremental ingest ----------------------------------------------------

    def _hydrated_prepared(self) -> dict:
        """The prepared payload with every index as an :class:`InvertedIndex`.

        Loaded workspaces already hold hydrated indexes; freshly built ones
        hold the JSON snapshot form, which is decoded here once so deltas
        can append to live posting buffers.
        """
        prepared = self._materialized_prepared()
        indexes = prepared["indexes"]
        for kind in RecordKind:
            payload = indexes.get(kind.value)
            if isinstance(payload, dict):
                indexes[kind.value] = InvertedIndex.from_dict(payload)
        return prepared

    def extend(
        self,
        records,
        *,
        path: str | Path | None = None,
    ) -> dict:
        """Ingest new records incrementally; optionally append to the artifact.

        Updates the bundled indexes, match prototypes, platform tables, and
        shard maps in place -- no re-tokenization of the existing corpus, no
        TF-IDF refit until the next :meth:`engine` call -- and, when ``path``
        is given, appends one self-describing delta frame to that artifact
        file instead of rewriting it.  Engines created by this workspace
        *before* the extension are invalidated (dropped from the shared
        pool); callers must not keep using previously obtained engine
        objects, because they do not know the new records.

        ``records`` is an iterable of attack-vector records whose
        identifiers must be new to the workspace.  Returns a summary dict
        (per-kind added counts, new totals, the chained corpus fingerprint,
        and the appended byte count).

        The corpus fingerprint of an extended workspace is a *chain*:
        ``sha256(base_fingerprint + ":" + delta_fingerprint)``.  It still
        uniquely identifies the corpus contents (and the frame order), but
        it intentionally differs from the flat fingerprint a from-scratch
        engine over the merged corpus would compute -- the chain is what
        lets :meth:`extend` avoid materializing and re-hashing the full
        corpus on every append.
        """
        records = list(records)
        if not records:
            raise ValueError("extend() needs at least one record")
        if path is not None and not Path(path).exists():
            # Appending a frame to a nonexistent file would create an
            # artifact with no base sections -- unloadable by construction.
            raise ValueError(
                f"workspace artifact not found: {path} (save() it first)"
            )
        prepared = self._hydrated_prepared()
        delta = self._build_delta(prepared, records)
        self._apply_delta(prepared, delta)
        self._corpus_deltas.append(records)
        appended = 0
        if path is not None:
            frame = _encode_delta_frame(delta)
            with open(path, "r+b") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if self._valid_length is not None and size > self._valid_length:
                    # Drop a torn tail a crashed append left behind (load
                    # ignored it); appending after it would bury garbage
                    # mid-file where no recovery is possible.
                    handle.truncate(self._valid_length)
                    size = self._valid_length
                handle.seek(size)
                handle.write(frame)
                handle.flush()
            if self._valid_length is not None:
                self._valid_length += len(frame)
            else:
                self._valid_length = size + len(frame)
            appended = len(frame)
            self._replayed_frames += 1
        # The corpus no longer equals any deterministic generator output,
        # and every previously fitted engine is missing the new records.
        self.params = None
        self._built_engine = None
        with self._engine_handles_lock:
            self._engine_handles.clear()
        indexes = prepared["indexes"]
        return {
            "added": delta["added"],
            "total_documents": {
                kind.value: len(indexes[kind.value]) for kind in RecordKind
            },
            "corpus_fingerprint": delta["fingerprint_after"],
            "appended_bytes": appended,
            "path": str(path) if path is not None else None,
        }

    def _build_delta(self, prepared: dict, records: list) -> dict:
        """Compute one delta frame's contents from new records (no mutation)."""
        indexes = prepared["indexes"]
        by_kind: dict[RecordKind, list] = {kind: [] for kind in RecordKind}
        delta_store = CorpusStore()
        for record in records:
            delta_store.add(record)  # rejects duplicates within the delta
            by_kind[record.kind].append(record)
        for kind, kind_records in by_kind.items():
            index = indexes[kind.value]
            for record in kind_records:
                if record.identifier in index:
                    raise ValueError(
                        f"record already in workspace: {record.identifier!r}"
                    )
        index_deltas: dict[str, dict] = {}
        for kind, kind_records in by_kind.items():
            if not kind_records:
                continue
            base_count = len(indexes[kind.value])
            doc_ids: list[str] = []
            doc_lengths: list[int] = []
            postings: dict[str, tuple[array, array]] = {}
            for offset, record in enumerate(kind_records):
                counts = Counter(tokenize(record.text))
                doc_ids.append(record.identifier)
                doc_lengths.append(sum(counts.values()))
                position = base_count + offset
                for token, frequency in counts.items():
                    arrays = postings.get(token)
                    if arrays is None:
                        postings[token] = (
                            array("I", (position,)),
                            array("I", (frequency,)),
                        )
                    else:
                        arrays[0].append(position)
                        arrays[1].append(frequency)
            index_deltas[kind.value] = {
                "doc_ids": doc_ids,
                "doc_lengths": doc_lengths,
                "postings": postings,
            }
        protos = prepared["match_protos"]
        proto_delta = {column: [] for column in protos}
        for record in delta_store.all_records():
            proto = _record_proto_columns(record)
            for column, value in proto.items():
                proto_delta[column].append(value)
        platform_delta: dict[str, list[str]] = {}
        for vulnerability in delta_store.vulnerabilities:
            for platform in vulnerability.affected_platforms:
                platform_delta.setdefault(platform, []).append(
                    vulnerability.identifier
                )
        shard_delta: dict[str, dict] = {}
        shard_payloads = prepared.get("shards") or {}
        max_shards = self.engine_config.get("max_shards", DEFAULT_MAX_SHARDS)
        for kind, kind_records in by_kind.items():
            payload = shard_payloads.get(kind.value)
            if payload is None or not kind_records:
                continue
            shard_map = ShardMap.from_dict(payload)  # private copy
            new_keys, assignments = shard_map.assign_extension(
                kind_records, max_shards
            )
            shard_delta[kind.value] = {
                "new_keys": new_keys,
                "assignments": assignments,
            }
        base_fingerprint = prepared.get("corpus_fingerprint")
        delta_fingerprint = _corpus_fingerprint(delta_store)
        chained = hashlib.sha256(
            f"{base_fingerprint}:{delta_fingerprint}".encode("utf-8")
        ).hexdigest()
        return {
            "indexes": index_deltas,
            "match_protos": proto_delta,
            "platform_vulnerabilities": platform_delta,
            "shards": shard_delta,
            "fingerprint_before": base_fingerprint,
            "fingerprint_after": chained,
            "corpus_bytes": json.dumps(delta_store.to_dict()).encode("utf-8"),
            "added": {
                kind.value: len(kind_records)
                for kind, kind_records in by_kind.items()
            },
        }

    @staticmethod
    def _apply_delta(prepared: dict, delta: dict) -> None:
        """Apply one delta frame to hydrated prepared structures.

        The *same* function runs for an in-memory :meth:`extend` and for
        every frame replayed by :meth:`load`, which is what guarantees that
        a reloaded extended artifact is structurally identical to the
        workspace that appended the frames.
        """
        if delta["fingerprint_before"] != prepared.get("corpus_fingerprint"):
            raise ValueError(
                "workspace delta frame does not chain from this corpus "
                "(fingerprint mismatch)"
            )
        indexes = prepared["indexes"]
        for kind_value, index_delta in delta["indexes"].items():
            if kind_value not in indexes:
                raise ValueError(f"delta frame names unknown index {kind_value!r}")
            indexes[kind_value].extend_from_arrays(
                index_delta["doc_ids"],
                index_delta["doc_lengths"],
                index_delta["postings"],
            )
        protos = prepared["match_protos"]
        proto_delta = delta["match_protos"]
        lengths = {len(column) for column in proto_delta.values()}
        if len(lengths) > 1 or set(proto_delta) != set(protos):
            raise ValueError("delta frame match prototypes are malformed")
        for column, values in proto_delta.items():
            protos[column].extend(values)
        platforms = prepared["platform_vulnerabilities"]
        for platform, identifiers in delta["platform_vulnerabilities"].items():
            merged = list(platforms.get(platform, ())) + list(identifiers)
            # The engine's platform table is sorted per platform; keep the
            # invariant so extended and from-scratch engines agree.
            platforms[platform] = sorted(merged)
        shard_payloads = prepared.get("shards") or {}
        for kind_value, shard_update in delta["shards"].items():
            payload = shard_payloads.get(kind_value)
            if payload is None:
                continue
            payload["keys"].extend(shard_update["new_keys"])
            payload["assignments"].extend(shard_update["assignments"])
        prepared["corpus_fingerprint"] = delta["fingerprint_after"]

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path, *, version: int = WORKSPACE_VERSION) -> Path:
        """Atomically write the one-file artifact; returns the path.

        Posting lists leave the prepared payload and land in the binary
        section.  Version 2 (the default) writes them columnar per kind --
        all positions in token order, then all term frequencies, as
        little-endian ``uint32``, with every section start page-aligned --
        which is the ``mmap``-able layout.  ``version=1`` writes the legacy
        per-token interleaved layout for compatibility testing.
        """
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported workspace version {version!r}")
        prepared = dict(self._materialized_prepared())
        index_meta: dict[str, dict] = {}
        postings_blob = bytearray()
        for kind_value, index_payload in prepared.pop("indexes").items():
            if isinstance(index_payload, InvertedIndex):
                documents = index_payload.document_table()
                items = (
                    (token, index_payload.posting_arrays(token))
                    for token in index_payload.tokens()
                )
            else:
                documents = index_payload["documents"]
                items = index_payload["postings"].items()
            if version == 2:
                tokens, counts, blob = _pack_postings_columnar(items)
            else:
                tokens, counts, blob = _pack_postings(items)
            postings_blob += blob
            index_meta[kind_value] = {
                "doc_ids": [doc_id for doc_id, _ in documents],
                "doc_lengths": [length for _, length in documents],
                "tokens": tokens,
                "counts": counts,
            }
        prepared["index_meta"] = index_meta
        prepared_bytes = json.dumps(prepared).encode("utf-8")
        if self._corpus_bytes is not None and not self._corpus_deltas:
            corpus_bytes = self._corpus_bytes
        else:
            # Touching .corpus merges any pending extension deltas, so a
            # post-extend save() writes the *merged* corpus -- the indexes
            # and match prototypes in the prepared section already include
            # the delta records.
            corpus_bytes = json.dumps(self.corpus.to_dict()).encode("utf-8")
        header = {
            "version": version,
            "itemsize": 4,
            "params": self.params,
            "engine_config": self.engine_config,
            "corpus_fingerprint": self.corpus_fingerprint,
        }
        sections = (
            ("prepared", prepared_bytes),
            ("postings", postings_blob),
            ("corpus", corpus_bytes),
        )
        if version == 2:
            header["align"] = SECTION_ALIGN
            payload = _frame_bytes_aligned(MAGIC, header, sections)
        else:
            payload = _frame_bytes(MAGIC, header, sections)
        written = atomic_write_bytes(path, payload)
        self._valid_length = len(payload)
        return written

    def compact(self, path: str | Path) -> dict:
        """Fold accumulated delta frames back into one contiguous base frame.

        Rewrites ``path`` as a single version-2 base frame carrying the
        *replayed* state of this workspace -- merged indexes, match
        prototypes, platform tables, shard maps, and the merged corpus --
        with the chained corpus fingerprint preserved, so an engine over the
        compacted artifact is bit-identical to one over the frame-stacked
        original.  The write is atomic (write-temp-then-rename): concurrent
        readers keep serving the old artifact (an mmap reader keeps its
        mapping of the old inode), and a crash mid-compact leaves the
        original untouched.  A torn tail left by a crashed extend is healed
        as a side effect -- the rewrite only ever contains consistent state.

        A compacted artifact is exactly what ``load(path, mmap=True)`` wants:
        one page-aligned base frame, zero delta frames to replay.  Returns a
        summary dict (frames folded, byte sizes before/after, fingerprint,
        per-kind document totals).
        """
        path = Path(path)
        if not path.exists():
            raise ValueError(f"workspace artifact not found: {path}")
        bytes_before = path.stat().st_size
        frames = self._replayed_frames
        prepared = self._hydrated_prepared()
        written = self.save(path)
        self._replayed_frames = 0
        return {
            "path": str(written),
            "frames_folded": frames,
            "bytes_before": bytes_before,
            "bytes_after": self._valid_length,
            "corpus_fingerprint": prepared.get("corpus_fingerprint"),
            "total_documents": {
                kind.value: len(prepared["indexes"][kind.value])
                for kind in RecordKind
            },
        }

    @classmethod
    def load(cls, path: str | Path, *, mmap: bool = False) -> "Workspace":
        """Read a saved artifact; raises :class:`ValueError` when malformed.

        With ``mmap=False`` (the default) the prepared and postings sections
        are decoded eagerly into private buffers; the corpus section stays
        raw bytes until something touches :attr:`corpus`.  With ``mmap=True``
        the file is mapped read-only and every posting buffer becomes a
        zero-copy ``numpy`` view over the mapped pages; a version-2 artifact
        with no pending delta frames additionally defers the prepared-JSON
        parse until the first engine build, so cold load cost is the header
        parse alone -- independent of corpus scale -- and N processes mapping
        the same artifact share one OS page cache.  Version-1 artifacts (and
        big-endian hosts) fall back to the eager decode even when mapped.

        Delta frames appended by :meth:`extend` are replayed in order over
        the base sections (their corpus deltas stay raw too); a frame whose
        fingerprint chain does not match the state it claims to extend fails
        the whole load.
        """
        buffer: _mmap.mmap | None = None
        if mmap:
            with open(path, "rb") as handle:
                try:
                    buffer = _mmap.mmap(
                        handle.fileno(), 0, access=_mmap.ACCESS_READ
                    )
                except (ValueError, OSError) as error:
                    raise ValueError(
                        f"cannot map workspace artifact {path}: {error}"
                    ) from error
            raw: bytes | _mmap.mmap = buffer
        else:
            raw = Path(path).read_bytes()
        newline = raw.find(b"\n")
        if raw[:newline] != MAGIC:
            raise ValueError(f"not a workspace artifact: {path}")
        second_newline = raw.find(b"\n", newline + 1)
        prepared: dict | None = None
        try:
            if second_newline < 0:
                raise ValueError("workspace header framing is truncated")
            header_length = int(raw[newline + 1 : second_newline])
            base = second_newline + 1
            header = json.loads(bytes(raw[base : base + header_length]))
            if not isinstance(header, dict):
                raise ValueError("workspace header must be a JSON object")
            version = header.get("version")
            if version not in SUPPORTED_VERSIONS:
                raise ValueError(
                    f"unsupported workspace version {version!r}; "
                    f"expected one of {SUPPORTED_VERSIONS}"
                )
            if array("I").itemsize != 4 or header.get("itemsize") != 4:
                raise ValueError(
                    "workspace posting buffers use a 4-byte uint layout this "
                    "platform cannot adopt"
                )
            sections = header["sections"]
            base += header_length

            def section(name: str) -> bytes:
                offset, length = sections[name]
                start = base + offset
                if start + length > len(raw):
                    raise ValueError("workspace sections exceed the file size")
                return bytes(raw[start : start + length])

            engine_config = _validate_engine_config(header.get("engine_config") or {})
            consumed = base + max(
                offset + length for offset, length in sections.values()
            )
            if consumed > len(raw):
                raise ValueError("workspace sections exceed the file size")
            # Zero-copy posting views need the mapped buffer and a
            # little-endian host (the wire format is little-endian); the
            # fully lazy path additionally needs a clean version-2 base
            # frame, because delta replay must hydrate the indexes now.
            zero_copy = buffer is not None and sys.byteorder == "little"
            lazy = zero_copy and version == 2 and consumed == len(raw)
            if version == 2:
                if not lazy:
                    prepared = _hydrate_prepared_v2(
                        raw, base, sections, header, zero_copy=zero_copy
                    )
            else:
                prepared = json.loads(section("prepared"))
                prepared["indexes"] = _decode_indexes(
                    prepared.pop("index_meta"), section("postings")
                )
                if header.get("corpus_fingerprint") != prepared.get(
                    "corpus_fingerprint"
                ):
                    raise ValueError(
                        "workspace header and prepared payload disagree on "
                        "the corpus fingerprint"
                    )
            if buffer is not None:
                offset, length = sections["corpus"]
                corpus_bytes: bytes | memoryview = memoryview(buffer)[
                    base + offset : base + offset + length
                ]
            else:
                corpus_bytes = section("corpus")
        except (KeyError, TypeError, IndexError, json.JSONDecodeError) as error:
            raise ValueError(f"malformed workspace artifact: {error}") from error
        workspace = cls(
            prepared=prepared,
            params=header.get("params"),
            engine_config=engine_config,
            _corpus_bytes=corpus_bytes,
        )
        workspace._mmap = buffer
        if prepared is None:
            workspace._mmap_pending = {
                "buffer": buffer,
                "base": base,
                "sections": sections,
                "header": header,
                "zero_copy": True,
            }
        cursor = consumed
        if consumed < len(raw):
            replayed = 0
            try:
                while cursor < len(raw):
                    try:
                        delta, cursor = _decode_delta_frame(raw, cursor)
                    except _TornDeltaFrame:
                        # A crash mid-append tore the final frame.  The
                        # extend that wrote it never completed, so the last
                        # consistent state is the artifact *without* it:
                        # serve that, and let the next extend() truncate the
                        # torn bytes before appending (``_valid_length``).
                        break
                    cls._apply_delta(prepared, delta)
                    workspace._corpus_deltas.append(delta["corpus_bytes"])
                    replayed += 1
            except (KeyError, TypeError, IndexError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"malformed workspace delta frame: {error}"
                ) from error
            # An extended corpus no longer equals any generator output.
            if replayed:
                workspace.params = None
                workspace._replayed_frames = replayed
        workspace._valid_length = cursor
        return workspace


def _record_proto_columns(record: AttackVectorRecord) -> dict:
    """One record's match-prototype values, keyed by prepared-payload column."""
    proto = _record_proto(record)
    return {
        "identifiers": proto["identifier"],
        "kinds": proto["kind"].value,
        "names": proto["name"],
        "severities": proto["severity"],
        "cvss_scores": proto["cvss_score"],
        "network_exploitable": proto["network_exploitable"],
    }


def _decode_posting_blob(
    index_meta: dict, blob: bytes
) -> dict[str, dict[str, tuple[array, array]]]:
    """Decode a binary postings blob into per-kind posting dicts, in order.

    Shared by the base-section and delta-frame decoders; bounds checks
    against the document table are the caller's job (the base decoder checks
    directly, the delta path checks inside ``extend_from_arrays``).
    """
    by_kind: dict[str, dict[str, tuple[array, array]]] = {}
    cursor = 0
    for kind_value, meta in index_meta.items():
        postings: dict[str, tuple[array, array]] = {}
        for token, count in zip(meta["tokens"], meta["counts"], strict=True):
            nbytes = 4 * count
            rows = []
            for _ in range(2):
                buffer = array("I")
                chunk = blob[cursor : cursor + nbytes]
                if len(chunk) != nbytes:
                    raise ValueError("workspace postings section is truncated")
                buffer.frombytes(chunk)
                if sys.byteorder == "big":  # pragma: no cover - LE hosts
                    buffer.byteswap()
                cursor += nbytes
                rows.append(buffer)
            positions, frequencies = rows
            validate_posting_positions(token, positions)
            if frequencies and min(frequencies) == 0:
                # uint32 buffers cannot be negative; zero would become a
                # -inf TF-IDF weight downstream.
                raise ValueError(
                    f"zero term frequency for token {token!r}"
                )
            postings[token] = (positions, frequencies)
        by_kind[kind_value] = postings
    if cursor != len(blob):
        raise ValueError("workspace postings section has trailing bytes")
    return by_kind


def _decode_indexes(index_meta: dict, blob: bytes) -> dict[str, InvertedIndex]:
    """Decode the binary postings section into index objects, in order."""
    indexes: dict[str, InvertedIndex] = {}
    postings_by_kind = _decode_posting_blob(index_meta, blob)
    for kind_value, meta in index_meta.items():
        postings = postings_by_kind[kind_value]
        total_documents = len(meta["doc_ids"])
        for token, (positions, _frequencies) in postings.items():
            if positions and max(positions) >= total_documents:
                raise ValueError(
                    f"posting positions of token {token!r} fall outside "
                    "the document table"
                )
        indexes[kind_value] = InvertedIndex.from_posting_arrays(
            meta["doc_ids"], meta["doc_lengths"], postings
        )
    return indexes


def _pack_postings(postings_items) -> tuple[list[str], list[int], bytearray]:
    """Pack ``(token, (positions, frequencies))`` pairs into the binary form.

    The one writer of the posting wire layout -- per token, the position
    array followed by the frequency array, as little-endian ``uint32`` --
    shared by the base :meth:`Workspace.save` sections and the delta frames
    (the read side shares :func:`_decode_posting_blob` the same way).
    """
    tokens: list[str] = []
    counts: list[int] = []
    blob = bytearray()
    for token, (positions, frequencies) in postings_items:
        tokens.append(token)
        counts.append(len(positions))
        for values in (positions, frequencies):
            buffer = array("I", values)
            if sys.byteorder == "big":  # pragma: no cover - LE hosts
                buffer.byteswap()
            blob += buffer.tobytes()
    return tokens, counts, blob


def _le_uint32_bytes(values) -> bytes:
    """``values`` as little-endian ``uint32`` bytes, copy-free on LE hosts."""
    return np.asarray(values, dtype=np.uint32).astype("<u4", copy=False).tobytes()


def _pack_postings_columnar(postings_items) -> tuple[list[str], list[int], bytes]:
    """Pack postings into the version-2 columnar layout.

    All position values concatenated in token order, then all term
    frequencies, as little-endian ``uint32`` -- so a reader reconstructs
    every posting buffer of a kind from exactly two ``numpy.frombuffer``
    calls plus basic slices (zero-copy views over the mapped pages), and
    validation vectorizes over the whole matrix instead of per-token loops.
    """
    tokens: list[str] = []
    counts: list[int] = []
    position_blob = bytearray()
    frequency_blob = bytearray()
    for token, (positions, frequencies) in postings_items:
        tokens.append(token)
        counts.append(len(positions))
        position_blob += _le_uint32_bytes(positions)
        frequency_blob += _le_uint32_bytes(frequencies)
    return tokens, counts, bytes(position_blob + frequency_blob)


def _validate_posting_matrix(
    meta: dict,
    positions: np.ndarray,
    frequencies: np.ndarray,
    total_documents: int,
) -> None:
    """Vectorized validation of one kind's columnar posting matrix.

    Checks the same invariants the version-1 per-token decoder checks --
    positions inside the document table and strictly increasing within each
    token's run, no zero term frequencies -- as a handful of whole-matrix
    numpy operations, locating the offending token only when something is
    actually wrong.
    """
    if positions.size == 0:
        return
    ends = np.cumsum(np.asarray(meta["counts"], dtype=np.int64))

    def token_at(flat_index: int) -> str:
        return meta["tokens"][int(np.searchsorted(ends, flat_index, side="right"))]

    if int(positions.max()) >= total_documents:
        token = token_at(int(positions.argmax()))
        raise ValueError(
            f"posting positions of token {token!r} fall outside "
            "the document table"
        )
    diffs = np.diff(positions.astype(np.int64))
    if diffs.size:
        # A non-positive step is legal exactly where one token's run ends
        # and the next begins; everywhere else it breaks the sorted-postings
        # invariant the candidate walk relies on.
        boundaries = np.zeros(diffs.size, dtype=bool)
        idx = ends[:-1]
        idx = idx[(idx > 0) & (idx <= diffs.size)]
        boundaries[idx - 1] = True
        bad = (diffs <= 0) & ~boundaries
        if bad.any():
            token = token_at(int(np.flatnonzero(bad)[0]) + 1)
            raise ValueError(
                f"posting positions of token {token!r} are not "
                "strictly increasing"
            )
    if int(frequencies.min()) == 0:
        # uint32 buffers cannot be negative; zero would become a -inf
        # TF-IDF weight downstream.
        token = token_at(int(frequencies.argmin()))
        raise ValueError(f"zero term frequency for token {token!r}")


def _decode_indexes_v2(
    index_meta: dict, buffer, start: int, length: int, *, zero_copy: bool
) -> dict[str, InvertedIndex]:
    """Decode the columnar version-2 postings section into index objects.

    ``zero_copy=True`` builds every posting buffer as a read-only numpy
    view over ``buffer`` (the mapped pages -- nothing is copied);
    ``zero_copy=False`` decodes into the private mutable ``array('I')``
    buffers the eager path has always produced.
    """
    indexes: dict[str, InvertedIndex] = {}
    cursor = start
    remaining = length
    for kind_value, meta in index_meta.items():
        counts = np.asarray(meta["counts"], dtype=np.int64)
        if len(meta["tokens"]) != counts.size:
            raise ValueError("workspace postings metadata is inconsistent")
        total = int(counts.sum()) if counts.size else 0
        nbytes = 4 * total
        if 2 * nbytes > remaining:
            raise ValueError("workspace postings section is truncated")
        positions_all = np.frombuffer(
            buffer, dtype="<u4", count=total, offset=cursor
        )
        frequencies_all = np.frombuffer(
            buffer, dtype="<u4", count=total, offset=cursor + nbytes
        )
        _validate_posting_matrix(
            meta, positions_all, frequencies_all, len(meta["doc_ids"])
        )
        ends = np.cumsum(counts)
        starts = ends - counts
        postings: dict[str, tuple] = {}
        if zero_copy:
            for i, token in enumerate(meta["tokens"]):
                lo, hi = int(starts[i]), int(ends[i])
                postings[token] = (positions_all[lo:hi], frequencies_all[lo:hi])
        else:
            view = memoryview(buffer)
            position_arr = array("I")
            position_arr.frombytes(view[cursor : cursor + nbytes])
            frequency_arr = array("I")
            frequency_arr.frombytes(view[cursor + nbytes : cursor + 2 * nbytes])
            if sys.byteorder == "big":  # pragma: no cover - LE hosts
                position_arr.byteswap()
                frequency_arr.byteswap()
            for i, token in enumerate(meta["tokens"]):
                lo, hi = int(starts[i]), int(ends[i])
                # array slicing copies: each token gets its own mutable
                # buffer, exactly like the version-1 decoder produced.
                postings[token] = (position_arr[lo:hi], frequency_arr[lo:hi])
        indexes[kind_value] = InvertedIndex.from_posting_arrays(
            meta["doc_ids"], meta["doc_lengths"], postings
        )
        cursor += 2 * nbytes
        remaining -= 2 * nbytes
    if remaining != 0:
        raise ValueError("workspace postings section has trailing bytes")
    return indexes


def _hydrate_prepared_v2(
    buffer, base: int, sections: dict, header: dict, *, zero_copy: bool
) -> dict:
    """Decode a version-2 prepared payload from (mapped or read) bytes.

    Shared by the eager version-2 load path and the deferred hydration of a
    lazily mapped workspace (:meth:`Workspace._materialized_prepared`); in
    both cases the posting buffers never pass through JSON.
    """
    try:
        offset, length = sections["prepared"]
        prepared = json.loads(bytes(buffer[base + offset : base + offset + length]))
        offset, length = sections["postings"]
        prepared["indexes"] = _decode_indexes_v2(
            prepared.pop("index_meta"),
            buffer,
            base + offset,
            length,
            zero_copy=zero_copy,
        )
    except (KeyError, TypeError, IndexError, json.JSONDecodeError) as error:
        raise ValueError(f"malformed workspace artifact: {error}") from error
    if header.get("corpus_fingerprint") != prepared.get("corpus_fingerprint"):
        raise ValueError(
            "workspace header and prepared payload disagree on the "
            "corpus fingerprint"
        )
    return prepared


def _frame_bytes_aligned(magic: bytes, header: dict, sections) -> bytes:
    """Assemble a version-2 frame with page-aligned section starts.

    Same framing grammar as :func:`_frame_bytes`, but the header length
    field is a fixed-width decimal and the header JSON is padded with
    trailing spaces (which ``json.loads`` tolerates) so the first section
    starts on a :data:`SECTION_ALIGN` boundary; each further section offset
    is rounded up to the alignment with zero padding.  No padding follows
    the last section, so the frame end is exactly where delta frames
    append.
    """
    offsets = {}
    chunks: list[bytes] = []
    cursor = 0
    for name, section in sections:
        pad = (-cursor) % SECTION_ALIGN
        if pad:
            chunks.append(b"\x00" * pad)
            cursor += pad
        offsets[name] = [cursor, len(section)]
        chunks.append(bytes(section))
        cursor += len(section)
    header_bytes = json.dumps({**header, "sections": offsets}).encode("utf-8")
    # magic + "\n" + ten length digits + "\n" is a fixed-size prefix, so
    # padding the header block is enough to land section offset zero (and,
    # because SECTION_ALIGN is a page, every aligned offset after it) on a
    # page boundary in absolute file coordinates.
    prefix = len(magic) + 1 + 10 + 1
    pad = (-(prefix + len(header_bytes))) % SECTION_ALIGN
    header_block = header_bytes + b" " * pad
    return b"".join(
        (
            magic,
            b"\n",
            str(len(header_block)).zfill(10).encode("ascii"),
            b"\n",
            header_block,
            *chunks,
        )
    )


def _frame_bytes(magic: bytes, header: dict, sections) -> bytes:
    """Assemble one framed payload: magic, header length, header, sections.

    ``sections`` is an ordered ``(name, bytes)`` sequence; their offsets are
    recorded into the header.  The one writer of the framing both the base
    artifact and the delta frames use.
    """
    offsets = {}
    cursor = 0
    for name, section in sections:
        offsets[name] = [cursor, len(section)]
        cursor += len(section)
    header_bytes = json.dumps({**header, "sections": offsets}).encode("utf-8")
    return b"".join(
        (
            magic,
            b"\n",
            str(len(header_bytes)).encode("ascii"),
            b"\n",
            header_bytes,
            *(bytes(section) for _, section in sections),
        )
    )


def _encode_delta_frame(delta: dict) -> bytes:
    """Serialize one delta frame (see the module docstring for the layout)."""
    index_meta: dict[str, dict] = {}
    postings_blob = bytearray()
    for kind_value, index_delta in delta["indexes"].items():
        tokens, counts, blob = _pack_postings(index_delta["postings"].items())
        postings_blob += blob
        index_meta[kind_value] = {
            "doc_ids": list(index_delta["doc_ids"]),
            "doc_lengths": list(index_delta["doc_lengths"]),
            "tokens": tokens,
            "counts": counts,
        }
    prepared_delta = {
        "index_meta": index_meta,
        "match_protos": delta["match_protos"],
        "platform_vulnerabilities": delta["platform_vulnerabilities"],
        "shards": delta["shards"],
        "added": delta["added"],
    }
    return _frame_bytes(
        DELTA_MAGIC,
        {
            "version": DELTA_VERSION,
            "itemsize": 4,
            "fingerprint_before": delta["fingerprint_before"],
            "fingerprint_after": delta["fingerprint_after"],
        },
        (
            ("prepared", json.dumps(prepared_delta).encode("utf-8")),
            ("postings", postings_blob),
            ("corpus", delta["corpus_bytes"]),
        ),
    )


class _TornDeltaFrame(ValueError):
    """A final delta frame cut short by a crash mid-append.

    Distinct from corruption: every byte present is consistent, the frame
    just does not reach its declared extent (it runs past the end of the
    file).  The extend that wrote it never completed, so the artifact's last
    consistent state is simply the content *before* the torn frame --
    :meth:`Workspace.load` recovers by ignoring it.
    """


def _decode_delta_frame(raw: bytes, cursor: int) -> tuple[dict, int]:
    """Decode the delta frame starting at ``cursor``; returns (delta, end).

    Raises :class:`_TornDeltaFrame` for truncation-class failures (the
    frame's declared extent runs past the end of the file) and plain
    :class:`ValueError` for everything else (foreign bytes, corruption).
    """
    newline = raw.find(b"\n", cursor)
    if newline < 0:
        if DELTA_MAGIC.startswith(raw[cursor:]):
            raise _TornDeltaFrame("delta frame magic torn at end of file")
        raise ValueError("trailing bytes are not a workspace delta frame")
    if raw[cursor:newline] != DELTA_MAGIC:
        raise ValueError("trailing bytes are not a workspace delta frame")
    second_newline = raw.find(b"\n", newline + 1)
    if second_newline < 0:
        raise _TornDeltaFrame("delta frame header length torn at end of file")
    header_length = int(raw[newline + 1 : second_newline])
    base = second_newline + 1
    if base + header_length > len(raw):
        raise _TornDeltaFrame("delta frame header torn at end of file")
    header = json.loads(raw[base : base + header_length])
    if not isinstance(header, dict):
        raise ValueError("workspace delta header must be a JSON object")
    version = header.get("version")
    if version != DELTA_VERSION:
        raise ValueError(
            f"unsupported workspace delta version {version!r}; "
            f"expected {DELTA_VERSION}"
        )
    if array("I").itemsize != 4 or header.get("itemsize") != 4:
        raise ValueError(
            "workspace delta posting buffers use a 4-byte uint layout this "
            "platform cannot adopt"
        )
    sections = header["sections"]
    base += header_length
    end = base + max(offset + length for offset, length in sections.values())
    if end > len(raw):
        raise _TornDeltaFrame("delta frame sections torn at end of file")

    def section(name: str) -> bytes:
        offset, length = sections[name]
        start = base + offset
        if start + length > len(raw):
            raise ValueError("workspace delta sections exceed the file size")
        return raw[start : start + length]

    prepared_delta = json.loads(section("prepared"))
    postings_by_kind = _decode_posting_blob(
        prepared_delta["index_meta"], section("postings")
    )
    delta = {
        "indexes": {
            kind_value: {
                "doc_ids": meta["doc_ids"],
                "doc_lengths": meta["doc_lengths"],
                "postings": postings_by_kind[kind_value],
            }
            for kind_value, meta in prepared_delta["index_meta"].items()
        },
        "match_protos": prepared_delta["match_protos"],
        "platform_vulnerabilities": prepared_delta["platform_vulnerabilities"],
        "shards": prepared_delta["shards"],
        "added": prepared_delta.get("added", {}),
        "fingerprint_before": header["fingerprint_before"],
        "fingerprint_after": header["fingerprint_after"],
        "corpus_bytes": section("corpus"),
    }
    return delta, end

"""Single-file workspace artifact for sub-second cold starts.

A cold run of the pipeline at corpus scale 1.0 pays for synthetic corpus
generation, tokenization of ~24k record texts, and the TF-IDF fit before the
first query can be answered -- exactly the "analyst opens the tool" path the
paper's design-phase exploration loop depends on.  The workspace bundles
every prepared build product in **one file**, the way vector-database loaders
persist their embeddings: save once, load in milliseconds ever after.

The artifact is a framed container::

    CPSECWS1\\n
    <header length in bytes, decimal>\\n
    <header JSON>
    <section bytes, concatenated>

The header records the format version, the deterministic corpus-generation
parameters, the engine configuration in effect at build time, and byte ranges
for three sections:

* ``prepared`` -- the engine's :meth:`~repro.search.engine.SearchEngine.
  prepared_payload` minus the posting lists (columnar match prototypes,
  platform tables, per-index document tables, corpus fingerprint), parsed
  eagerly on load,
* ``postings`` -- every index's positional posting buffers as raw
  little-endian ``uint32`` bytes, decoded with bulk ``array.frombytes``
  instead of JSON number parsing (hundreds of thousands of postings),
* ``corpus`` -- the full corpus JSON, kept as raw bytes and parsed
  **lazily**: coverage/cosine association never touches corpus records, so
  the fast path skips deserializing ~10 MB of JSON entirely.

Framing means one ``open()``/``read()`` per cold start, and sections can be
decoded independently; writes go through the shared atomic
write-temp-then-rename helper so an interrupted save can never leave a
corrupt artifact.
"""

from __future__ import annotations

import json
import sys
import threading
from array import array
from dataclasses import dataclass, field
from pathlib import Path

from repro.corpus.store import CorpusStore
from repro.corpus.synthesis import build_corpus, build_params
from repro.ioutils import atomic_write_bytes
from repro.search.engine import SearchEngine
from repro.search.index import InvertedIndex, validate_posting_positions

#: Magic line identifying a workspace artifact file.
MAGIC = b"CPSECWS1"

#: Workspace format version; bump when the layout changes.
WORKSPACE_VERSION = 1

#: Engine-configuration fields recorded in the artifact and replayed as
#: defaults by :meth:`Workspace.engine`, with the types a loaded artifact
#: must carry for each (checked by :meth:`Workspace.load`, so a corrupt
#: configuration is rejected as :class:`ValueError` -- the rebuild-fallback
#: signal -- instead of surfacing later as a :class:`TypeError`).
ENGINE_CONFIG_TYPES: dict[str, tuple[type, ...]] = {
    "pattern_threshold": (int, float),
    "weakness_threshold": (int, float),
    "vulnerability_text_threshold": (int, float),
    "platform_coverage": (int, float),
    "fidelity_aware": (bool,),
    "scorer": (str,),
    "max_per_class": (int, type(None)),
    "enable_cache": (bool,),
    "max_cache_entries": (int, type(None)),
}

ENGINE_CONFIG_FIELDS = tuple(ENGINE_CONFIG_TYPES)

#: Bound on the warm engine handles one workspace keeps (distinct effective
#: configurations: scorer variants, threshold overrides, ...).  Each handle
#: owns fitted TF-IDF models and result caches, so an unbounded pool on a
#: long-lived multi-workspace server would grow with every configuration a
#: client ever asked for; the least-recently-used handle is dropped instead
#: (a re-request rebuilds it -- speed changes, results never do).
MAX_ENGINE_HANDLES = 8


def _validate_engine_config(engine_config: dict) -> dict:
    """Reject unknown keys or wrong-typed values in a loaded configuration."""
    if not isinstance(engine_config, dict):
        raise ValueError("workspace engine_config must be a JSON object")
    for key, value in engine_config.items():
        expected = ENGINE_CONFIG_TYPES.get(key)
        if expected is None:
            raise ValueError(f"unknown workspace engine_config key {key!r}")
        if not isinstance(value, expected) or (
            isinstance(value, bool) and bool not in expected
        ):
            raise ValueError(
                f"workspace engine_config key {key!r} has invalid value {value!r}"
            )
    return engine_config


@dataclass
class Workspace:
    """A saved (corpus, prepared engine, configuration) bundle.

    Build one from scratch with :meth:`build`, or around an existing corpus
    and engine with :meth:`from_engine`; persist with :meth:`save` and
    restore with :meth:`load`.  Engines produced by :meth:`engine` are
    bit-identical to engines built from the original corpus (the workspace
    equivalence tests pin this).
    """

    #: Prepared engine payload.  ``None`` on a freshly bundled engine
    #: (:meth:`from_engine` defers the ~60 ms serialization until save or an
    #: engine rebuild actually needs it); always a dict after :meth:`load`.
    prepared: dict | None
    params: dict | None = None
    engine_config: dict = field(default_factory=dict)
    _corpus: CorpusStore | None = field(default=None, repr=False)
    _corpus_bytes: bytes | None = field(default=None, repr=False)
    #: The engine this workspace was built from, handed back by
    #: :meth:`engine` when the requested configuration matches, so that
    #: build-then-associate flows never tokenize-and-fit a second engine.
    _built_engine: SearchEngine | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self._corpus_lock = threading.Lock()
        self._prepared_lock = threading.Lock()
        self._engine_handles: dict[tuple, SearchEngine] = {}
        self._engine_handles_lock = threading.Lock()
        self._engine_handle_evictions = 0
        self.max_engine_handles: int | None = MAX_ENGINE_HANDLES

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        scale: float = 1.0,
        seed: int = 7,
        include_background: bool = True,
        **engine_kwargs,
    ) -> "Workspace":
        """Synthesize the corpus, build the engine, and bundle both."""
        corpus = build_corpus(
            scale=scale, seed=seed, include_background=include_background
        )
        engine = SearchEngine(corpus, **engine_kwargs)
        workspace = cls.from_engine(engine)
        workspace.params = build_params(
            scale=scale, seed=seed, include_background=include_background
        )
        return workspace

    @classmethod
    def from_engine(cls, engine: SearchEngine) -> "Workspace":
        """Bundle an existing engine (and its corpus) into a workspace.

        The prepared payload is *not* serialized here: build-then-associate
        flows that never save or reconfigure would pay for it without ever
        reading it.  It materializes lazily (see :attr:`prepared`).
        """
        return cls(
            prepared=None,
            params=None,
            engine_config={
                name: getattr(engine, name) for name in ENGINE_CONFIG_FIELDS
            },
            _corpus=engine.corpus,
            _built_engine=engine,
        )

    def _materialized_prepared(self) -> dict:
        """The prepared payload, serialized from the built engine on demand."""
        if self.prepared is None:
            with self._prepared_lock:
                if self.prepared is None:
                    if self._built_engine is None:
                        raise ValueError(
                            "workspace has neither a prepared payload nor an engine"
                        )
                    self.prepared = self._built_engine.prepared_payload()
        return self.prepared

    # -- corpus ---------------------------------------------------------------

    @property
    def corpus(self) -> CorpusStore:
        """The corpus, materialized from the raw section bytes on first use.

        Materialization is locked: concurrent first touches (the jaccard
        scorer under a ``workers=N`` fan-out) parse the corpus JSON once,
        not once per thread.
        """
        if self._corpus is None:
            with self._corpus_lock:
                if self._corpus is None:
                    if self._corpus_bytes is None:
                        raise ValueError(
                            "workspace has neither a corpus nor corpus bytes"
                        )
                    self._corpus = CorpusStore.from_dict(
                        json.loads(self._corpus_bytes)
                    )
                    self._corpus_bytes = None
        return self._corpus

    @property
    def corpus_fingerprint(self) -> str | None:
        """Content hash of the bundled corpus (from the prepared payload)."""
        return self._materialized_prepared().get("corpus_fingerprint")

    def matches(
        self,
        scale: float = 1.0,
        seed: int = 7,
        include_background: bool = True,
    ) -> bool:
        """Whether this workspace was built with the given corpus parameters.

        Corpus generation is deterministic, so matching parameters guarantee
        the bundled corpus equals what :func:`repro.corpus.synthesis.
        build_corpus` would regenerate.  The recorded parameters include the
        generator's :data:`~repro.corpus.synthesis.SYNTHESIS_VERSION`, so an
        artifact saved by an older generator stops matching when the
        synthetic output changes, instead of being silently trusted.
        Workspaces built around externally supplied corpora (no recorded
        parameters) never match.
        """
        if self.params is None:
            return False
        return self.params == build_params(
            scale=scale, seed=seed, include_background=include_background
        )

    # -- engines --------------------------------------------------------------

    def engine(self, **overrides) -> SearchEngine:
        """A search engine over the bundled artifacts, skipping every rebuild.

        Keyword overrides win over the recorded engine configuration (e.g.
        ``workspace.engine(scorer="cosine")``).  A workspace that was just
        built (:meth:`build` / :meth:`from_engine`) hands back the engine it
        was built from when every override matches the recorded
        configuration, so the build-save-associate flow fits exactly one
        engine.  Loaded workspaces construct from the prepared payload with
        the corpus attached lazily: association with the coverage or cosine
        scorer runs without ever deserializing corpus records.
        """
        if self._built_engine is not None and all(
            key in self.engine_config and self.engine_config[key] == value
            for key, value in overrides.items()
        ):
            return self._built_engine
        kwargs = {**self.engine_config, **overrides}
        return SearchEngine.from_prepared(
            self._materialized_prepared(),
            corpus_loader=lambda: self.corpus,
            **kwargs,
        )

    def shared_engine(self, **overrides) -> SearchEngine:
        """A long-lived engine handle, one per effective configuration.

        :meth:`engine` constructs a fresh engine (a TF-IDF refit per record
        class) on every call; a long-lived service wants the *same* warm
        engine back for repeated requests so its result caches and stats
        accumulate.  This method memoizes engines per effective configuration
        (recorded config merged with the overrides) under a lock, so N
        concurrent requests share one engine instead of racing N builds.

        The pool is LRU-bounded by :attr:`max_engine_handles` (``None``
        disables the bound); evictions are counted and surfaced through
        :meth:`engine_pool_info` / the service's ``/healthz``.  Eviction
        changes speed only -- a dropped configuration is rebuilt, bit
        identically, on its next request.
        """
        effective = {**self.engine_config, **overrides}
        key = tuple(sorted(effective.items()))
        with self._engine_handles_lock:
            engine = self._engine_handles.get(key)
            if engine is not None:
                # Reinsert so plain dict order doubles as LRU order.
                self._engine_handles[key] = self._engine_handles.pop(key)
            else:
                engine = self.engine(**overrides)
                self._engine_handles[key] = engine
                while (
                    self.max_engine_handles is not None
                    and len(self._engine_handles) > self.max_engine_handles
                ):
                    self._engine_handles.pop(next(iter(self._engine_handles)))
                    self._engine_handle_evictions += 1
        return engine

    def engine_handles(self) -> tuple[SearchEngine, ...]:
        """Every engine currently held by the :meth:`shared_engine` pool."""
        with self._engine_handles_lock:
            return tuple(self._engine_handles.values())

    def engine_pool_info(self) -> dict:
        """Occupancy, bound, and eviction count of the shared-engine pool."""
        with self._engine_handles_lock:
            return {
                "engines": len(self._engine_handles),
                "max_engines": self.max_engine_handles,
                "evictions": self._engine_handle_evictions,
            }

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Atomically write the one-file artifact; returns the path.

        Posting lists leave the prepared payload and land in the binary
        section: per index, per token, the position array followed by the
        frequency array, as little-endian ``uint32``.
        """
        prepared = dict(self._materialized_prepared())
        index_meta: dict[str, dict] = {}
        postings_blob = bytearray()
        for kind_value, index_payload in prepared.pop("indexes").items():
            if isinstance(index_payload, InvertedIndex):
                index_payload = index_payload.to_dict()
            tokens: list[str] = []
            counts: list[int] = []
            for token, (positions, frequencies) in index_payload["postings"].items():
                tokens.append(token)
                counts.append(len(positions))
                for values in (positions, frequencies):
                    buffer = array("I", values)
                    if sys.byteorder == "big":  # pragma: no cover - LE hosts
                        buffer.byteswap()
                    postings_blob += buffer.tobytes()
            documents = index_payload["documents"]
            index_meta[kind_value] = {
                "doc_ids": [doc_id for doc_id, _ in documents],
                "doc_lengths": [length for _, length in documents],
                "tokens": tokens,
                "counts": counts,
            }
        prepared["index_meta"] = index_meta
        prepared_bytes = json.dumps(prepared).encode("utf-8")
        if self._corpus_bytes is not None:
            corpus_bytes = self._corpus_bytes
        else:
            corpus_bytes = json.dumps(self.corpus.to_dict()).encode("utf-8")
        offsets = {}
        cursor = 0
        for name, section in (
            ("prepared", prepared_bytes),
            ("postings", postings_blob),
            ("corpus", corpus_bytes),
        ):
            offsets[name] = [cursor, len(section)]
            cursor += len(section)
        header = {
            "version": WORKSPACE_VERSION,
            "itemsize": 4,
            "params": self.params,
            "engine_config": self.engine_config,
            "corpus_fingerprint": self.corpus_fingerprint,
            "sections": offsets,
        }
        header_bytes = json.dumps(header).encode("utf-8")
        payload = b"".join(
            (
                MAGIC,
                b"\n",
                str(len(header_bytes)).encode("ascii"),
                b"\n",
                header_bytes,
                prepared_bytes,
                bytes(postings_blob),
                corpus_bytes,
            )
        )
        return atomic_write_bytes(path, payload)

    @classmethod
    def load(cls, path: str | Path) -> "Workspace":
        """Read a saved artifact; raises :class:`ValueError` when malformed.

        The prepared and postings sections are decoded eagerly (they are
        needed to build an engine); the corpus section stays raw bytes until
        something touches :attr:`corpus`.
        """
        raw = Path(path).read_bytes()
        newline = raw.find(b"\n")
        if raw[:newline] != MAGIC:
            raise ValueError(f"not a workspace artifact: {path}")
        second_newline = raw.find(b"\n", newline + 1)
        try:
            if second_newline < 0:
                raise ValueError("workspace header framing is truncated")
            header_length = int(raw[newline + 1 : second_newline])
            base = second_newline + 1
            header = json.loads(raw[base : base + header_length])
            if not isinstance(header, dict):
                raise ValueError("workspace header must be a JSON object")
            version = header.get("version")
            if version != WORKSPACE_VERSION:
                raise ValueError(
                    f"unsupported workspace version {version!r}; "
                    f"expected {WORKSPACE_VERSION}"
                )
            if array("I").itemsize != 4 or header.get("itemsize") != 4:
                raise ValueError(
                    "workspace posting buffers use a 4-byte uint layout this "
                    "platform cannot adopt"
                )
            sections = header["sections"]
            base += header_length

            def section(name: str) -> bytes:
                offset, length = sections[name]
                start = base + offset
                if start + length > len(raw):
                    raise ValueError("workspace sections exceed the file size")
                return raw[start : start + length]

            prepared = json.loads(section("prepared"))
            blob = section("postings")
            corpus_bytes = section("corpus")
            prepared["indexes"] = _decode_indexes(
                prepared.pop("index_meta"), blob
            )
            if header.get("corpus_fingerprint") != prepared.get("corpus_fingerprint"):
                raise ValueError(
                    "workspace header and prepared payload disagree on the "
                    "corpus fingerprint"
                )
            engine_config = _validate_engine_config(header.get("engine_config") or {})
        except (KeyError, TypeError, IndexError, json.JSONDecodeError) as error:
            raise ValueError(f"malformed workspace artifact: {error}") from error
        return cls(
            prepared=prepared,
            params=header.get("params"),
            engine_config=engine_config,
            _corpus_bytes=corpus_bytes,
        )


def _decode_indexes(index_meta: dict, blob: bytes) -> dict[str, InvertedIndex]:
    """Decode the binary postings section into index objects, in order."""
    indexes: dict[str, InvertedIndex] = {}
    cursor = 0
    for kind_value, meta in index_meta.items():
        postings: dict[str, tuple[array, array]] = {}
        total_documents = len(meta["doc_ids"])
        for token, count in zip(meta["tokens"], meta["counts"], strict=True):
            nbytes = 4 * count
            rows = []
            for _ in range(2):
                buffer = array("I")
                chunk = blob[cursor : cursor + nbytes]
                if len(chunk) != nbytes:
                    raise ValueError("workspace postings section is truncated")
                buffer.frombytes(chunk)
                if sys.byteorder == "big":  # pragma: no cover - LE hosts
                    buffer.byteswap()
                cursor += nbytes
                rows.append(buffer)
            positions, frequencies = rows
            if positions and max(positions) >= total_documents:
                raise ValueError(
                    f"posting positions of token {token!r} fall outside "
                    "the document table"
                )
            validate_posting_positions(token, positions)
            if frequencies and min(frequencies) == 0:
                # uint32 buffers cannot be negative; zero would become a
                # -inf TF-IDF weight downstream.
                raise ValueError(
                    f"zero term frequency for token {token!r}"
                )
            postings[token] = (positions, frequencies)
        indexes[kind_value] = InvertedIndex.from_posting_arrays(
            meta["doc_ids"], meta["doc_lengths"], postings
        )
    if cursor != len(blob):
        raise ValueError("workspace postings section has trailing bytes")
    return indexes

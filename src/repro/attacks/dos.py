"""Denial-of-service attacks on the control network.

These model CAPEC-125 (flooding) and CAPEC-607 (obstruction) exploiting
CWE-400 / CWE-770: supervisory traffic is dropped or delayed, so the control
loop and the safety monitor operate on stale or missing data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cps.intervention import Intervention
from repro.cps.network import Message, MessageKind
from repro.cps.scada import ScadaSimulation


@dataclass
class MessageDropAttack(Intervention):
    """Drops all messages of the configured kinds to the configured receiver.

    With ``receiver=None`` every receiver is affected (a bus-level outage).
    """

    name: str = "message-drop"
    receiver: str | None = None
    kinds: tuple[MessageKind, ...] = (MessageKind.MEASUREMENT,)
    dropped: int = 0

    def on_message(self, message: Message, time_s: float) -> Message | None:
        if self.receiver is not None and message.receiver != self.receiver:
            return message
        if self.kinds and message.kind not in self.kinds:
            return message
        self.dropped += 1
        return None


@dataclass
class FloodAttack(Intervention):
    """Floods the bus so that legitimate messages are probabilistically lost.

    Each legitimate message survives with probability ``1 - loss_rate`` while
    the flood is active; the generator is seeded so runs are reproducible.
    """

    name: str = "network-flood"
    loss_rate: float = 0.7
    seed: int = 23
    dropped: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError("loss_rate must be within [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def on_step(self, simulation: ScadaSimulation, time_s: float) -> None:
        # The flood itself: junk traffic addressed to the controller, which
        # counts against the firewall and shows up in bus statistics.
        simulation.bus.send(
            "Corporate Network", "BPCS Platform", MessageKind.ENGINEERING,
            {"junk": True}, timestamp_s=time_s,
        )

    def on_message(self, message: Message, time_s: float) -> Message | None:
        if message.payload.get("junk"):
            return message
        if float(self._rng.uniform()) < self.loss_rate:
            self.dropped += 1
            return None
        return message

"""Named attack scenarios and their mapping to attack-vector records.

A scenario bundles the interventions that realize one coherent attack story
on the centrifuge, together with the CWE/CAPEC identifiers it instantiates.
The scenario library is what lets the consequence mapper turn an *associated
attack vector* (a CWE or CAPEC id attached to a component by the search
engine) into an *executable experiment* on the closed-loop simulation.

The flagship entry is the Triton-like scenario the paper cites: malware
first disables the safety instrumented system, then the compromised process
controller drives the plant into the unstable thermal region.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.attacks.dos import FloodAttack, MessageDropAttack
from repro.attacks.injection import CommandInjectionAttack, SetpointInjectionAttack
from repro.attacks.spoofing import (
    MeasurementSpoofingAttack,
    ReplayMeasurementAttack,
    SensorSpoofingAttack,
)
from repro.cps.intervention import Intervention
from repro.cps.network import MessageKind
from repro.cps.scada import SIS, WORKSTATION, ScadaSimulation


@dataclass
class SisDisableAttack(Intervention):
    """Disables the safety instrumented system over the network.

    Models the Triton/TRISIS action (CAPEC-554 functionality bypass,
    CWE-693 protection mechanism failure): the safety logic stops evaluating
    its trip conditions while reporting normal status.
    """

    name: str = "sis-disable"
    spoofed_sender: str = WORKSTATION
    _sent: bool = False

    def on_step(self, simulation: ScadaSimulation, time_s: float) -> None:
        if self._sent:
            return
        self._sent = True
        simulation.bus.send(
            self.spoofed_sender, SIS, MessageKind.SAFETY_COMMAND,
            {"command": "disable"}, timestamp_s=time_s,
        )


@dataclass
class AttackScenario:
    """A named, executable attack scenario.

    Parameters
    ----------
    name:
        Scenario identifier.
    description:
        What the scenario does and what consequence it is expected to cause.
    build_interventions:
        Zero-argument factory returning fresh interventions for one run (they
        are stateful, so each simulation needs its own instances).
    records:
        CWE / CAPEC identifiers this scenario instantiates.
    target_components:
        Names of the system-model components the scenario attacks.
    expected_hazards:
        Hazard kinds the scenario is expected to produce (documentation and
        test oracle, not enforced by the simulation).
    """

    name: str
    description: str
    build_interventions: Callable[[], list[Intervention]]
    records: tuple[str, ...] = ()
    target_components: tuple[str, ...] = ()
    expected_hazards: tuple[str, ...] = ()

    def interventions(self) -> list[Intervention]:
        """Fresh intervention instances for one simulation run."""
        return list(self.build_interventions())


@dataclass
class TritonLikeScenario:
    """Convenience builder for the paper's Triton-style composite attack."""

    sis_disable_time_s: float = 80.0
    injection_time_s: float = 120.0

    def interventions(self) -> list[Intervention]:
        """SIS disable followed by command injection on the BPCS."""
        return [
            SisDisableAttack(start_time_s=self.sis_disable_time_s),
            CommandInjectionAttack(start_time_s=self.injection_time_s),
        ]


def _triton() -> list[Intervention]:
    return TritonLikeScenario().interventions()


def _command_injection_only() -> list[Intervention]:
    return [CommandInjectionAttack(start_time_s=120.0)]


def _setpoint_injection() -> list[Intervention]:
    return [SetpointInjectionAttack(start_time_s=120.0, value=9_800.0)]


def _sensor_spoof_blind_controller() -> list[Intervention]:
    return [
        MeasurementSpoofingAttack(start_time_s=120.0, variable="temperature", value=20.0),
        SetpointInjectionAttack(
            start_time_s=125.0, register="temperature_setpoint", value=45.0
        ),
    ]


def _replay_blind_sis() -> list[Intervention]:
    return [
        ReplayMeasurementAttack(start_time_s=100.0, receiver=SIS),
        CommandInjectionAttack(start_time_s=140.0),
    ]


def _measurement_dos() -> list[Intervention]:
    return [MessageDropAttack(start_time_s=120.0, kinds=(MessageKind.MEASUREMENT,))]


def _flood() -> list[Intervention]:
    return [FloodAttack(start_time_s=120.0, loss_rate=0.8)]


def _physical_sensor_tamper() -> list[Intervention]:
    return [SensorSpoofingAttack(start_time_s=120.0, sensor="temperature", value=18.0)]


#: The scenario library keyed by scenario name.
SCENARIO_LIBRARY: dict[str, AttackScenario] = {
    scenario.name: scenario
    for scenario in (
        AttackScenario(
            name="triton-like-sis-bypass",
            description=(
                "Malware disables the safety instrumented system, then the "
                "compromised BPCS drives the rotor to maximum speed with cooling "
                "disabled; the solution temperature exceeds the stability limit."
            ),
            build_interventions=_triton,
            records=("CWE-693", "CAPEC-554", "CWE-78", "CAPEC-88", "CWE-494"),
            target_components=("SIS Platform", "BPCS Platform"),
            expected_hazards=("thermal_runaway",),
        ),
        AttackScenario(
            name="bpcs-command-injection",
            description=(
                "CWE-78 OS command injection on the BPCS forces hazardous set "
                "points; the SIS trips the drive, the batch is lost but the "
                "plant stays safe."
            ),
            build_interventions=_command_injection_only,
            records=("CWE-78", "CAPEC-88", "CWE-20"),
            target_components=("BPCS Platform",),
            expected_hazards=("speed_deviation",),
        ),
        AttackScenario(
            name="unauthenticated-setpoint-write",
            description=(
                "Forged MODBUS set-point writes (missing authentication for a "
                "critical function) push the rotor toward its limit until the "
                "SIS intervenes."
            ),
            build_interventions=_setpoint_injection,
            records=("CWE-306", "CAPEC-137", "CAPEC-21"),
            target_components=("BPCS Platform",),
            expected_hazards=("speed_deviation",),
        ),
        AttackScenario(
            name="controller-blinding-mitm",
            description=(
                "Adversary in the middle reports a nominal temperature to the "
                "BPCS while raising the temperature set point, so the cooling "
                "loop never reacts."
            ),
            build_interventions=_sensor_spoof_blind_controller,
            records=("CWE-924", "CWE-345", "CAPEC-94", "CAPEC-148"),
            target_components=("BPCS Platform", "Temperature Sensor"),
            expected_hazards=("thermal_runaway", "product_viscous"),
        ),
        AttackScenario(
            name="sis-replay-blinding",
            description=(
                "Measurements to the SIS are captured and replayed so the safety "
                "monitor keeps seeing the pre-attack state while the compromised "
                "BPCS overheats the process."
            ),
            build_interventions=_replay_blind_sis,
            records=("CWE-294", "CAPEC-60", "CWE-78"),
            target_components=("SIS Platform", "BPCS Platform"),
            expected_hazards=("thermal_runaway",),
        ),
        AttackScenario(
            name="measurement-dos",
            description=(
                "Measurement traffic is dropped so the control loop runs on "
                "stale values and regulation quality degrades."
            ),
            build_interventions=_measurement_dos,
            records=("CWE-400", "CAPEC-607", "CAPEC-125"),
            target_components=("BPCS Platform", "Control Firewall"),
            expected_hazards=("speed_deviation",),
        ),
        AttackScenario(
            name="network-flood",
            description=(
                "A flood from the corporate side causes heavy loss of "
                "supervisory traffic across the control network."
            ),
            build_interventions=_flood,
            records=("CWE-770", "CAPEC-125"),
            target_components=("Control Firewall", "BPCS Platform"),
            expected_hazards=("speed_deviation",),
        ),
        AttackScenario(
            name="physical-sensor-tamper",
            description=(
                "Physical tampering biases the temperature probe low, so both "
                "controllers run the process warmer than intended."
            ),
            build_interventions=_physical_sensor_tamper,
            records=("CWE-1263", "CAPEC-390"),
            target_components=("Temperature Sensor",),
            expected_hazards=("thermal_runaway",),
        ),
    )
}


#: Record identifier -> scenario name, derived from the library.
_RECORD_TO_SCENARIO: dict[str, str] = {}
for _scenario in SCENARIO_LIBRARY.values():
    for _record in _scenario.records:
        _RECORD_TO_SCENARIO.setdefault(_record, _scenario.name)


def scenario_for_record(record_id: str) -> AttackScenario | None:
    """The scenario that instantiates a CWE/CAPEC record, if one exists."""
    name = _RECORD_TO_SCENARIO.get(record_id)
    return SCENARIO_LIBRARY[name] if name else None

"""Attack injection and consequence mapping.

The paper's demonstration argues that "attack vectors can lead to unsafe
control actions in CPS and must be addressed early on, but no science of
security exists yet to map attack vectors to physical consequences".  This
package closes that loop for the reproduced system: attacks are implemented
as :class:`~repro.cps.intervention.Intervention` subclasses acting on the
closed-loop simulation, and :mod:`repro.attacks.consequence` maps associated
attack-vector records (CWE/CAPEC identifiers) to executable attack scenarios
whose physical outcome is evaluated by the hazard monitor.
"""

from repro.attacks.injection import (
    CommandInjectionAttack,
    EngineeringWriteAttack,
    SetpointInjectionAttack,
)
from repro.attacks.spoofing import (
    MeasurementSpoofingAttack,
    ReplayMeasurementAttack,
    SensorSpoofingAttack,
)
from repro.attacks.dos import FloodAttack, MessageDropAttack
from repro.attacks.scenarios import (
    AttackScenario,
    SCENARIO_LIBRARY,
    TritonLikeScenario,
    scenario_for_record,
)
from repro.attacks.consequence import ConsequenceAssessment, ConsequenceMapper

__all__ = [
    "SetpointInjectionAttack",
    "CommandInjectionAttack",
    "EngineeringWriteAttack",
    "SensorSpoofingAttack",
    "MeasurementSpoofingAttack",
    "ReplayMeasurementAttack",
    "MessageDropAttack",
    "FloodAttack",
    "AttackScenario",
    "TritonLikeScenario",
    "SCENARIO_LIBRARY",
    "scenario_for_record",
    "ConsequenceAssessment",
    "ConsequenceMapper",
]

"""Spoofing and replay attacks on measurements.

These model CAPEC-148 (content spoofing), CAPEC-94 (adversary in the middle),
CAPEC-60 (capture-replay), and the weaknesses they exploit (CWE-345, CWE-319,
CWE-924): the controller or the safety monitor acts on falsified process
values, so the physical state can drift into a hazardous region while the
cyber side looks nominal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cps.intervention import Intervention
from repro.cps.network import Message, MessageKind
from repro.cps.scada import BPCS, SIS, ScadaSimulation


@dataclass
class SensorSpoofingAttack(Intervention):
    """Physically spoofs a sensor so *every* consumer sees the same lie.

    Models tampering with the probe or its transmitter (CAPEC-390 physical
    access followed by signal injection).
    """

    name: str = "sensor-spoofing"
    sensor: str = "temperature"
    value: float = 20.0

    def on_activate(self, simulation: ScadaSimulation, time_s: float) -> None:
        self._target(simulation).spoof(self.value)

    def on_deactivate(self, simulation: ScadaSimulation, time_s: float) -> None:
        self._target(simulation).clear_spoof()

    def _target(self, simulation: ScadaSimulation):
        if self.sensor == "temperature":
            return simulation.temperature_sensor
        if self.sensor == "speed":
            return simulation.tachometer
        raise ValueError(f"unknown sensor: {self.sensor!r}")


@dataclass
class MeasurementSpoofingAttack(Intervention):
    """Adversary-in-the-middle rewrite of measurement messages to one receiver.

    Unlike :class:`SensorSpoofingAttack`, only the targeted receiver (by
    default the BPCS) sees the falsified value; the other consumer still sees
    the true process state.  This is the classic way to blind a controller
    while the safety system, or vice versa, still sees reality.
    """

    name: str = "measurement-mitm"
    variable: str = "temperature"
    value: float = 20.0
    receiver: str = BPCS

    def on_message(self, message: Message, time_s: float) -> Message | None:
        if (
            message.kind is MessageKind.MEASUREMENT
            and message.receiver == self.receiver
            and message.payload.get("variable") == self.variable
        ):
            return message.with_payload(value=self.value)
        return message


@dataclass
class ReplayMeasurementAttack(Intervention):
    """Capture-replay of measurements (CWE-294 / CAPEC-60).

    During the first ``capture_window_s`` seconds of the active window the
    attack records the measurements flowing to the targeted receiver; after
    that it keeps replaying the captured values, freezing the receiver's view
    of the process at the pre-attack state.
    """

    name: str = "measurement-replay"
    receiver: str = SIS
    capture_window_s: float = 10.0
    _captured: dict[str, float] = field(default_factory=dict)

    def on_message(self, message: Message, time_s: float) -> Message | None:
        if message.kind is not MessageKind.MEASUREMENT or message.receiver != self.receiver:
            return message
        variable = message.payload.get("variable", "")
        elapsed = time_s - self.start_time_s
        if elapsed <= self.capture_window_s:
            self._captured[variable] = float(message.payload.get("value", 0.0))
            return message
        if variable in self._captured:
            return message.with_payload(value=self._captured[variable])
        return message

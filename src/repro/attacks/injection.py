"""Injection attacks: forged set points, mode commands, and engineering writes.

These model the paper's flagship finding against the BPCS and SIS platforms:
CWE-78 OS command injection, "an attack scenario where an upstream attacker
may inject all or part of an operating system command onto an externally
influenced input ... disrupting or manipulating the platform's operation.
This attack may result in compromised control of the centrifuge, manifesting
in destruction of the manufactured product or damage to the centrifuge
itself."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cps.intervention import Intervention
from repro.cps.network import MessageKind
from repro.cps.scada import BPCS, WORKSTATION, ScadaSimulation


@dataclass
class SetpointInjectionAttack(Intervention):
    """Periodically writes an attacker-chosen set point to the BPCS.

    The messages are sent with a configurable ``spoofed_sender`` so the
    firewall and any message-authentication defence see a plausible origin;
    by default the attacker impersonates the programming workstation
    (CAPEC-137 parameter injection over an unauthenticated protocol,
    CWE-306).
    """

    name: str = "setpoint-injection"
    register: str = "speed_setpoint"
    value: float = 9_800.0
    period_s: float = 5.0
    spoofed_sender: str = WORKSTATION
    target: str = BPCS
    _last_sent_s: float = -1e9

    def on_step(self, simulation: ScadaSimulation, time_s: float) -> None:
        if time_s - self._last_sent_s < self.period_s:
            return
        self._last_sent_s = time_s
        simulation.bus.send(
            self.spoofed_sender,
            self.target,
            MessageKind.SETPOINT_WRITE,
            {"register": self.register, "value": self.value},
            timestamp_s=time_s,
        )


@dataclass
class EngineeringWriteAttack(Intervention):
    """Delivers an engineering (reconfiguration) write to a platform.

    Receiving an engineering write marks the BPCS controller as compromised;
    it models arbitrary code or logic download (CWE-494, CAPEC-441) without
    simulating the payload itself.
    """

    name: str = "engineering-write"
    spoofed_sender: str = WORKSTATION
    target: str = BPCS
    _sent: bool = False

    def on_step(self, simulation: ScadaSimulation, time_s: float) -> None:
        if self._sent:
            return
        self._sent = True
        simulation.bus.send(
            self.spoofed_sender,
            self.target,
            MessageKind.ENGINEERING,
            {"action": "logic-download"},
            timestamp_s=time_s,
        )


@dataclass
class CommandInjectionAttack(Intervention):
    """The CWE-78 scenario: command injection on the BPCS platform.

    An upstream attacker who can inject OS commands on the controller gains
    the ability to manipulate the control application directly.  The attack
    (a) marks the controller compromised via an engineering write and then
    (b) forces hazardous set points from inside the controller: maximum rotor
    speed and a disabled cooling loop (temperature set point far above the
    stability limit).
    """

    name: str = "cwe-78-command-injection"
    commanded_speed_rpm: float = 10_000.0
    commanded_temperature_c: float = 60.0

    def on_activate(self, simulation: ScadaSimulation, time_s: float) -> None:
        simulation.bus.send(
            WORKSTATION, BPCS, MessageKind.ENGINEERING,
            {"action": "os-command-injection"}, timestamp_s=time_s,
        )

    def on_step(self, simulation: ScadaSimulation, time_s: float) -> None:
        # Inside the controller, the injected command rewrites the set points
        # every cycle, so operator corrections do not stick.
        simulation.controller.set_speed_setpoint(self.commanded_speed_rpm)
        simulation.controller.set_temperature_setpoint(self.commanded_temperature_c)

"""Mapping associated attack vectors to physical consequences.

The paper's closing gap statement: "Attack vectors can lead to unsafe control
actions in CPS and must be addressed early on, but no science of security
exists yet to map attack vectors to physical consequences and leverage the
existing power of systems modeling."

The :class:`ConsequenceMapper` is this reproduction's bridge across that gap
for the demonstration system: given an attack-vector record that the search
engine associated with a component (for example CWE-78 on the BPCS platform),
it selects the executable attack scenarios that instantiate the record on
that component, runs the closed-loop simulation with and without the attack,
and reports which hazards the attack produced beyond the nominal run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.scenarios import SCENARIO_LIBRARY, AttackScenario
from repro.cps.control import BpcsController
from repro.cps.hazards import HazardKind, HazardMonitor, HazardReport
from repro.cps.scada import OperatorSchedule, ScadaSimulation, SimulationTrace
from repro.search.engine import SystemAssociation


@dataclass(frozen=True)
class ConsequenceAssessment:
    """Outcome of executing one attack scenario for one associated record."""

    record_id: str
    component: str
    scenario: str
    hazards: tuple[HazardKind, ...]
    new_hazards: tuple[HazardKind, ...]
    safety_hazard: bool
    product_lost: bool
    peak_temperature_c: float
    peak_speed_rpm: float
    sis_tripped: bool

    def describe(self) -> str:
        """A one-line human-readable summary of the assessment."""
        hazard_names = ", ".join(kind.value for kind in self.new_hazards) or "none"
        return (
            f"{self.record_id} on {self.component} via {self.scenario}: "
            f"new hazards [{hazard_names}], "
            f"peak temperature {self.peak_temperature_c:.1f} C, "
            f"peak speed {self.peak_speed_rpm:.0f} rpm, "
            f"SIS tripped: {self.sis_tripped}"
        )

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "record_id": self.record_id,
            "component": self.component,
            "scenario": self.scenario,
            "hazards": [kind.value for kind in self.hazards],
            "new_hazards": [kind.value for kind in self.new_hazards],
            "safety_hazard": self.safety_hazard,
            "product_lost": self.product_lost,
            "peak_temperature_c": self.peak_temperature_c,
            "peak_speed_rpm": self.peak_speed_rpm,
            "sis_tripped": self.sis_tripped,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConsequenceAssessment":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            record_id=payload["record_id"],
            component=payload["component"],
            scenario=payload["scenario"],
            hazards=tuple(HazardKind(value) for value in payload["hazards"]),
            new_hazards=tuple(HazardKind(value) for value in payload["new_hazards"]),
            safety_hazard=payload["safety_hazard"],
            product_lost=payload["product_lost"],
            peak_temperature_c=payload["peak_temperature_c"],
            peak_speed_rpm=payload["peak_speed_rpm"],
            sis_tripped=payload["sis_tripped"],
        )


@dataclass
class ConsequenceMapper:
    """Runs attack scenarios to attach physical consequences to attack vectors.

    Parameters
    ----------
    duration_s / dt:
        Simulation horizon and step used for every run.
    monitor:
        The hazard monitor applied to all traces.
    scenarios:
        The scenario library; defaults to the built-in one.
    """

    duration_s: float = 420.0
    dt: float = 0.5
    monitor: HazardMonitor = field(default_factory=HazardMonitor)
    scenarios: dict[str, AttackScenario] = field(
        default_factory=lambda: dict(SCENARIO_LIBRARY)
    )
    _baseline_report: HazardReport | None = field(default=None, init=False, repr=False)

    # -- simulation plumbing --------------------------------------------------

    def _new_simulation(self, interventions) -> ScadaSimulation:
        return ScadaSimulation(
            controller=BpcsController(),
            schedule=OperatorSchedule.batch(),
            interventions=interventions,
        )

    def run_nominal(self) -> tuple[SimulationTrace, HazardReport]:
        """Run (and cache) the attack-free baseline batch."""
        simulation = self._new_simulation([])
        trace = simulation.run(self.duration_s, self.dt)
        report = trace.hazards(self.monitor)
        self._baseline_report = report
        return trace, report

    def run_scenario(self, scenario: AttackScenario) -> tuple[SimulationTrace, HazardReport, bool]:
        """Run one attack scenario; returns (trace, hazard report, SIS tripped)."""
        simulation = self._new_simulation(scenario.interventions())
        trace = simulation.run(self.duration_s, self.dt)
        return trace, trace.hazards(self.monitor), simulation.sis.tripped

    # -- scenario selection -----------------------------------------------------

    def scenarios_for(self, record_id: str, component: str) -> list[AttackScenario]:
        """Scenarios that instantiate the record against the component.

        Scenarios matching both the record and the component are preferred;
        when none match the component, record-only matches are returned so
        every mapped record still gets *some* consequence evidence.
        """
        record_matches = [
            scenario
            for scenario in self.scenarios.values()
            if record_id in scenario.records
        ]
        both = [s for s in record_matches if component in s.target_components]
        return both or record_matches

    def mappable_records(self) -> frozenset[str]:
        """All record identifiers covered by at least one scenario."""
        records: set[str] = set()
        for scenario in self.scenarios.values():
            records.update(scenario.records)
        return frozenset(records)

    # -- assessment ----------------------------------------------------------------

    def assess(self, record_id: str, component: str) -> list[ConsequenceAssessment]:
        """Assess the physical consequence of one record on one component."""
        if self._baseline_report is None:
            self.run_nominal()
        baseline_kinds = {event.kind for event in self._baseline_report.events}
        assessments = []
        for scenario in self.scenarios_for(record_id, component):
            trace, report, tripped = self.run_scenario(scenario)
            kinds = tuple(sorted({event.kind for event in report.events}, key=lambda k: k.value))
            new = tuple(kind for kind in kinds if kind not in baseline_kinds)
            assessments.append(
                ConsequenceAssessment(
                    record_id=record_id,
                    component=component,
                    scenario=scenario.name,
                    hazards=kinds,
                    new_hazards=new,
                    safety_hazard=any(kind.is_safety_hazard for kind in new),
                    product_lost=report.product_lost,
                    peak_temperature_c=trace.max_temperature(),
                    peak_speed_rpm=trace.max_speed(),
                    sis_tripped=tripped,
                )
            )
        return assessments

    def assess_association(
        self, association: SystemAssociation, max_records_per_component: int = 3
    ) -> list[ConsequenceAssessment]:
        """Assess the top mappable records of every component in an association.

        For each component, the highest-scored associated records that have an
        executable scenario are assessed; records without scenarios (the vast
        majority -- exactly the paper's point about the missing science) are
        skipped.
        """
        mappable = self.mappable_records()
        assessments: list[ConsequenceAssessment] = []
        for component_association in association.components:
            assessed = 0
            for match in component_association.unique_matches():
                if assessed >= max_records_per_component:
                    break
                if match.identifier not in mappable:
                    continue
                assessments.extend(
                    self.assess(match.identifier, component_association.component.name)
                )
                assessed += 1
        return assessments

"""Record types for attack patterns, weaknesses, and vulnerabilities.

These mirror the structure of the MITRE CAPEC, CWE, and CVE/NVD feeds at the
level of detail the association pipeline needs:

* each record carries free text (name + description) for text matching,
* each record carries structured cross-references to the other two datasets
  ("each of these datasets contains interconnections with one another"),
* vulnerabilities carry CVSS vectors and CPE-like platform tags.

The paper's point about perspective is encoded here: attack patterns capture
the *attacker's* perspective, weaknesses and vulnerabilities the *system
owner's* perspective; all three are needed for a complete security posture.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.corpus.cvss import CvssVector


class RecordKind(enum.Enum):
    """The three classes of attack-vector records."""

    ATTACK_PATTERN = "attack_pattern"
    WEAKNESS = "weakness"
    VULNERABILITY = "vulnerability"


class Abstraction(enum.Enum):
    """CAPEC/CWE abstraction level of a record."""

    META = "meta"
    STANDARD = "standard"
    DETAILED = "detailed"


@dataclass(frozen=True)
class AttackPattern:
    """A CAPEC-like attack pattern: the attacker's perspective.

    Parameters
    ----------
    identifier:
        CAPEC id, e.g. ``"CAPEC-88"``.
    name:
        Canonical name, e.g. ``"OS Command Injection"``.
    description:
        Free text describing the pattern; used for matching.
    likelihood / severity:
        Qualitative ratings as published by CAPEC (Low/Medium/High/...).
    related_weaknesses:
        CWE ids this pattern exploits.
    prerequisites:
        Conditions the target must satisfy.
    domains:
        Attack domains (e.g. ``"Software"``, ``"Supply Chain"``, ``"Physical Security"``).
    """

    identifier: str
    name: str
    description: str = ""
    abstraction: Abstraction = Abstraction.STANDARD
    likelihood: str = "Medium"
    severity: str = "Medium"
    related_weaknesses: tuple[str, ...] = field(default_factory=tuple)
    prerequisites: tuple[str, ...] = field(default_factory=tuple)
    domains: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.identifier.startswith("CAPEC-"):
            raise ValueError(f"attack pattern id must start with 'CAPEC-': {self.identifier!r}")

    @property
    def kind(self) -> RecordKind:
        """The record class (always ``ATTACK_PATTERN``)."""
        return RecordKind.ATTACK_PATTERN

    @property
    def text(self) -> str:
        """All matchable text of the record."""
        parts = [self.name, self.description]
        parts.extend(self.prerequisites)
        parts.extend(self.domains)
        return " ".join(p for p in parts if p)


@dataclass(frozen=True)
class Weakness:
    """A CWE-like weakness: a class of flaw a system owner can have.

    Parameters
    ----------
    identifier:
        CWE id, e.g. ``"CWE-78"``.
    name:
        Canonical name.
    description:
        Free text; used for matching.
    related_attack_patterns:
        CAPEC ids that exploit this weakness.
    platforms:
        Technology/platform classes the weakness applies to (languages,
        technology classes such as ``"ICS/OT"`` or ``"Web Based"``).
    consequences:
        (scope, impact) pairs, e.g. ``("Integrity", "Modify Application Data")``.
    """

    identifier: str
    name: str
    description: str = ""
    abstraction: Abstraction = Abstraction.STANDARD
    related_attack_patterns: tuple[str, ...] = field(default_factory=tuple)
    platforms: tuple[str, ...] = field(default_factory=tuple)
    consequences: tuple[tuple[str, str], ...] = field(default_factory=tuple)
    likelihood: str = "Medium"

    def __post_init__(self) -> None:
        if not self.identifier.startswith("CWE-"):
            raise ValueError(f"weakness id must start with 'CWE-': {self.identifier!r}")

    @property
    def kind(self) -> RecordKind:
        """The record class (always ``WEAKNESS``)."""
        return RecordKind.WEAKNESS

    @property
    def text(self) -> str:
        """All matchable text of the record."""
        parts = [self.name, self.description]
        parts.extend(self.platforms)
        parts.extend(impact for _, impact in self.consequences)
        return " ".join(p for p in parts if p)

    def impacts_scope(self, scope: str) -> bool:
        """Whether any consequence affects the given scope (e.g. 'Integrity')."""
        return any(s.lower() == scope.lower() for s, _ in self.consequences)


@dataclass(frozen=True)
class Vulnerability:
    """A CVE-like vulnerability: a concrete flaw in a concrete product.

    Parameters
    ----------
    identifier:
        CVE id, e.g. ``"CVE-2018-0101"``.
    description:
        Free text as published by NVD; used for matching.
    cvss:
        CVSS v3.1 base vector.
    cwe_ids:
        Weakness classes the vulnerability instantiates.
    affected_platforms:
        CPE-like product tags, e.g. ``"cisco asa"``, ``"microsoft windows_7"``.
    published_year:
        Year of publication (drives recency filters).
    """

    identifier: str
    description: str = ""
    cvss: CvssVector = field(default_factory=CvssVector)
    cwe_ids: tuple[str, ...] = field(default_factory=tuple)
    affected_platforms: tuple[str, ...] = field(default_factory=tuple)
    published_year: int = 2019

    def __post_init__(self) -> None:
        if not self.identifier.startswith("CVE-"):
            raise ValueError(f"vulnerability id must start with 'CVE-': {self.identifier!r}")
        if not 1990 <= self.published_year <= 2100:
            raise ValueError(f"implausible publication year: {self.published_year}")

    @property
    def kind(self) -> RecordKind:
        """The record class (always ``VULNERABILITY``)."""
        return RecordKind.VULNERABILITY

    @property
    def name(self) -> str:
        """Vulnerabilities have no canonical name; the CVE id stands in."""
        return self.identifier

    @property
    def text(self) -> str:
        """All matchable text of the record."""
        parts = [self.description]
        parts.extend(self.affected_platforms)
        return " ".join(p for p in parts if p)

    @property
    def base_score(self) -> float:
        """The CVSS base score of the vulnerability."""
        return self.cvss.base_score()

    @property
    def severity(self) -> str:
        """The CVSS qualitative severity of the vulnerability."""
        return self.cvss.severity()


#: Union type of the three record classes, for annotations.
AttackVectorRecord = AttackPattern | Weakness | Vulnerability

"""In-memory attack-vector corpus with indexes and cross-reference traversal.

The store plays the role of the MITRE feeds in the authors' pipeline: it holds
attack patterns, weaknesses, and vulnerabilities, lets the search engine
enumerate them per class, and exposes the cross-references that connect the
attacker's perspective (CAPEC) with the system owner's perspective (CWE, CVE).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.corpus.cvss import CvssVector
from repro.ioutils import atomic_write_text
from repro.corpus.schema import (
    Abstraction,
    AttackPattern,
    AttackVectorRecord,
    RecordKind,
    Vulnerability,
    Weakness,
)


class CorpusStore:
    """Container for the three attack-vector datasets."""

    def __init__(self) -> None:
        self._attack_patterns: dict[str, AttackPattern] = {}
        self._weaknesses: dict[str, Weakness] = {}
        self._vulnerabilities: dict[str, Vulnerability] = {}
        self._platform_index: dict[str, set[str]] = {}

    # -- ingestion ---------------------------------------------------------

    def add(self, record: AttackVectorRecord) -> AttackVectorRecord:
        """Add one record of any class; raises on duplicate identifiers."""
        if isinstance(record, AttackPattern):
            target: dict = self._attack_patterns
        elif isinstance(record, Weakness):
            target = self._weaknesses
        elif isinstance(record, Vulnerability):
            target = self._vulnerabilities
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported record type: {type(record)!r}")
        if record.identifier in target:
            raise ValueError(f"duplicate record identifier: {record.identifier!r}")
        target[record.identifier] = record
        if isinstance(record, Vulnerability):
            for platform in record.affected_platforms:
                self._platform_index.setdefault(platform.lower(), set()).add(
                    record.identifier
                )
        return record

    def add_all(self, records: Iterable[AttackVectorRecord]) -> int:
        """Add many records; returns the number added."""
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count

    def merge(self, other: "CorpusStore") -> "CorpusStore":
        """Add every record of another store into this one; returns self."""
        self.add_all(other.all_records())
        return self

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return (
            len(self._attack_patterns)
            + len(self._weaknesses)
            + len(self._vulnerabilities)
        )

    def __contains__(self, identifier: str) -> bool:
        return (
            identifier in self._attack_patterns
            or identifier in self._weaknesses
            or identifier in self._vulnerabilities
        )

    def get(self, identifier: str) -> AttackVectorRecord:
        """Return any record by identifier."""
        for table in (self._attack_patterns, self._weaknesses, self._vulnerabilities):
            if identifier in table:
                return table[identifier]
        raise KeyError(f"unknown record identifier: {identifier!r}")

    @property
    def attack_patterns(self) -> tuple[AttackPattern, ...]:
        """All attack patterns, in insertion order."""
        return tuple(self._attack_patterns.values())

    @property
    def weaknesses(self) -> tuple[Weakness, ...]:
        """All weaknesses, in insertion order."""
        return tuple(self._weaknesses.values())

    @property
    def vulnerabilities(self) -> tuple[Vulnerability, ...]:
        """All vulnerabilities, in insertion order."""
        return tuple(self._vulnerabilities.values())

    def records_of_kind(self, kind: RecordKind) -> tuple[AttackVectorRecord, ...]:
        """All records of one class."""
        if kind is RecordKind.ATTACK_PATTERN:
            return self.attack_patterns
        if kind is RecordKind.WEAKNESS:
            return self.weaknesses
        return self.vulnerabilities

    def all_records(self) -> Iterator[AttackVectorRecord]:
        """Iterate over every record of every class."""
        yield from self._attack_patterns.values()
        yield from self._weaknesses.values()
        yield from self._vulnerabilities.values()

    def counts(self) -> dict[RecordKind, int]:
        """Record counts per class."""
        return {
            RecordKind.ATTACK_PATTERN: len(self._attack_patterns),
            RecordKind.WEAKNESS: len(self._weaknesses),
            RecordKind.VULNERABILITY: len(self._vulnerabilities),
        }

    # -- cross-references ---------------------------------------------------

    def weaknesses_for_pattern(self, capec_id: str) -> tuple[Weakness, ...]:
        """Weaknesses referenced by an attack pattern (and present in the store)."""
        pattern = self._attack_patterns.get(capec_id)
        if pattern is None:
            raise KeyError(f"unknown attack pattern: {capec_id!r}")
        return tuple(
            self._weaknesses[cwe]
            for cwe in pattern.related_weaknesses
            if cwe in self._weaknesses
        )

    def patterns_for_weakness(self, cwe_id: str) -> tuple[AttackPattern, ...]:
        """Attack patterns that exploit a weakness."""
        if cwe_id not in self._weaknesses:
            raise KeyError(f"unknown weakness: {cwe_id!r}")
        direct = set(self._weaknesses[cwe_id].related_attack_patterns)
        related = [
            pattern
            for pattern in self._attack_patterns.values()
            if cwe_id in pattern.related_weaknesses or pattern.identifier in direct
        ]
        return tuple(related)

    def vulnerabilities_for_weakness(self, cwe_id: str) -> tuple[Vulnerability, ...]:
        """Vulnerabilities that instantiate a weakness."""
        if cwe_id not in self._weaknesses:
            raise KeyError(f"unknown weakness: {cwe_id!r}")
        return tuple(
            vuln
            for vuln in self._vulnerabilities.values()
            if cwe_id in vuln.cwe_ids
        )

    def weaknesses_for_vulnerability(self, cve_id: str) -> tuple[Weakness, ...]:
        """Weakness classes a vulnerability instantiates (present in the store)."""
        vuln = self._vulnerabilities.get(cve_id)
        if vuln is None:
            raise KeyError(f"unknown vulnerability: {cve_id!r}")
        return tuple(
            self._weaknesses[cwe] for cwe in vuln.cwe_ids if cwe in self._weaknesses
        )

    def vulnerabilities_for_platform(self, platform: str) -> tuple[Vulnerability, ...]:
        """Vulnerabilities tagged with a CPE-like platform string."""
        identifiers = self._platform_index.get(platform.lower(), set())
        return tuple(self._vulnerabilities[i] for i in sorted(identifiers))

    def platforms(self) -> tuple[str, ...]:
        """All platform tags present in the vulnerability data."""
        return tuple(sorted(self._platform_index))

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable dictionary of the whole corpus."""
        return {
            "attack_patterns": [
                {
                    "identifier": p.identifier,
                    "name": p.name,
                    "description": p.description,
                    "abstraction": p.abstraction.value,
                    "likelihood": p.likelihood,
                    "severity": p.severity,
                    "related_weaknesses": list(p.related_weaknesses),
                    "prerequisites": list(p.prerequisites),
                    "domains": list(p.domains),
                }
                for p in self._attack_patterns.values()
            ],
            "weaknesses": [
                {
                    "identifier": w.identifier,
                    "name": w.name,
                    "description": w.description,
                    "abstraction": w.abstraction.value,
                    "related_attack_patterns": list(w.related_attack_patterns),
                    "platforms": list(w.platforms),
                    "consequences": [list(c) for c in w.consequences],
                    "likelihood": w.likelihood,
                }
                for w in self._weaknesses.values()
            ],
            "vulnerabilities": [
                {
                    "identifier": v.identifier,
                    "description": v.description,
                    "cvss": v.cvss.to_string(),
                    "cwe_ids": list(v.cwe_ids),
                    "affected_platforms": list(v.affected_platforms),
                    "published_year": v.published_year,
                }
                for v in self._vulnerabilities.values()
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusStore":
        """Rebuild a corpus from :meth:`to_dict` output."""
        store = cls()
        for item in payload.get("attack_patterns", []):
            store.add(
                AttackPattern(
                    identifier=item["identifier"],
                    name=item["name"],
                    description=item.get("description", ""),
                    abstraction=Abstraction(item.get("abstraction", "standard")),
                    likelihood=item.get("likelihood", "Medium"),
                    severity=item.get("severity", "Medium"),
                    related_weaknesses=tuple(item.get("related_weaknesses", ())),
                    prerequisites=tuple(item.get("prerequisites", ())),
                    domains=tuple(item.get("domains", ())),
                )
            )
        for item in payload.get("weaknesses", []):
            store.add(
                Weakness(
                    identifier=item["identifier"],
                    name=item["name"],
                    description=item.get("description", ""),
                    abstraction=Abstraction(item.get("abstraction", "standard")),
                    related_attack_patterns=tuple(item.get("related_attack_patterns", ())),
                    platforms=tuple(item.get("platforms", ())),
                    consequences=tuple(
                        (pair[0], pair[1]) for pair in item.get("consequences", ())
                    ),
                    likelihood=item.get("likelihood", "Medium"),
                )
            )
        for item in payload.get("vulnerabilities", []):
            store.add(
                Vulnerability(
                    identifier=item["identifier"],
                    description=item.get("description", ""),
                    cvss=CvssVector.parse(item.get("cvss", "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:N")),
                    cwe_ids=tuple(item.get("cwe_ids", ())),
                    affected_platforms=tuple(item.get("affected_platforms", ())),
                    published_year=item.get("published_year", 2019),
                )
            )
        return store

    def save(self, path: str | Path) -> Path:
        """Atomically write the corpus to a JSON file and return the path.

        The payload lands via write-temp-then-rename, so an interrupted save
        leaves the previous file intact rather than a truncated one.
        """
        return atomic_write_text(path, json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "CorpusStore":
        """Read a corpus from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = self.counts()
        return (
            "CorpusStore("
            f"attack_patterns={counts[RecordKind.ATTACK_PATTERN]}, "
            f"weaknesses={counts[RecordKind.WEAKNESS]}, "
            f"vulnerabilities={counts[RecordKind.VULNERABILITY]})"
        )

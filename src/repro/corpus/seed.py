"""Curated seed corpus of well-known attack patterns, weaknesses, and CVEs.

The entries below are hand-written summaries of real MITRE CAPEC / CWE / NVD
records that matter for the paper's demonstration (a SCADA-controlled
particle-separation centrifuge): OS command injection (CWE-78, the weakness
the paper calls out against the BPCS and SIS platforms), protocol
manipulation and adversary-in-the-middle over MODBUS, firmware tampering,
safety-system bypass (the Triton incident referenced by the paper), and the
platform vulnerabilities behind Table 1 (Cisco ASA, Windows 7, NI Linux
Real-Time, LabVIEW, cRIO controllers).

The texts are paraphrased, not copied, but keep the vocabulary the search
engine needs to land the same associations the paper reports.
"""

from __future__ import annotations

from repro.corpus.cvss import CvssVector
from repro.corpus.schema import Abstraction, AttackPattern, Vulnerability, Weakness
from repro.corpus.store import CorpusStore


def seed_corpus() -> CorpusStore:
    """Build the curated seed corpus."""
    store = CorpusStore()
    store.add_all(seed_attack_patterns())
    store.add_all(seed_weaknesses())
    store.add_all(seed_vulnerabilities())
    return store


def seed_attack_patterns() -> list[AttackPattern]:
    """The curated CAPEC-like attack patterns."""
    return [
        AttackPattern(
            "CAPEC-88",
            "OS Command Injection",
            "An attacker injects operating system commands through an externally "
            "influenced input that is passed to a command interpreter on the target "
            "platform, gaining the ability to execute arbitrary commands with the "
            "privileges of the vulnerable application such as a controller runtime "
            "or supervisory software.",
            related_weaknesses=("CWE-78", "CWE-20"),
            severity="High",
            likelihood="High",
            prerequisites=("externally influenced input reaches a command shell",),
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-66",
            "SQL Injection",
            "An attacker crafts input containing SQL syntax so that the database "
            "query built by the application executes attacker-chosen statements, "
            "exposing or modifying historian and configuration data stores.",
            related_weaknesses=("CWE-89", "CWE-20"),
            severity="High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-94",
            "Adversary in the Middle",
            "An attacker inserts themselves into the communication path between an "
            "industrial controller and its workstation or sensor, intercepting, "
            "modifying, or replaying messages on the network such as MODBUS or "
            "fieldbus traffic without either endpoint noticing.",
            related_weaknesses=("CWE-300", "CWE-319", "CWE-924"),
            severity="High",
            domains=("Communications",),
        ),
        AttackPattern(
            "CAPEC-125",
            "Flooding",
            "An attacker consumes the resources of a target network device, "
            "controller, or service by sending a high volume of traffic, degrading "
            "or denying the availability of supervisory control communications.",
            related_weaknesses=("CWE-400", "CWE-770"),
            severity="Medium",
            domains=("Communications",),
        ),
        AttackPattern(
            "CAPEC-148",
            "Content Spoofing",
            "An attacker modifies data presented to an operator or controller, for "
            "example spoofed sensor measurements or forged status displays, so that "
            "decisions are made on falsified process values.",
            related_weaknesses=("CWE-345", "CWE-346"),
            severity="Medium",
            domains=("Software", "Communications"),
        ),
        AttackPattern(
            "CAPEC-137",
            "Parameter Injection",
            "An attacker manipulates the parameters or set points exchanged between "
            "applications, such as a commanded rotor speed or temperature set point, "
            "so the receiving controller acts on attacker-chosen values.",
            related_weaknesses=("CWE-20", "CWE-74"),
            severity="High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-176",
            "Configuration/Environment Manipulation",
            "An attacker modifies configuration files, calibration constants, or the "
            "runtime environment of a programmable controller or workstation to "
            "change its behavior persistently.",
            related_weaknesses=("CWE-15", "CWE-1188"),
            severity="High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-438",
            "Modification During Manufacture",
            "An attacker alters hardware or firmware of a device, such as a compact "
            "RIO controller module, in the supply chain before it is integrated into "
            "the deployed system.",
            related_weaknesses=("CWE-494",),
            severity="High",
            likelihood="Low",
            domains=("Supply Chain", "Hardware"),
        ),
        AttackPattern(
            "CAPEC-439",
            "Manipulation During Distribution",
            "An attacker intercepts devices or software updates in transit and "
            "implants malicious logic before delivery to the industrial site.",
            related_weaknesses=("CWE-494",),
            severity="High",
            likelihood="Low",
            domains=("Supply Chain",),
        ),
        AttackPattern(
            "CAPEC-441",
            "Malicious Logic Insertion",
            "An attacker installs malware or malicious ladder logic onto a control "
            "platform such as a programmable logic controller or safety system, "
            "changing its commanded behavior while reporting normal status.",
            related_weaknesses=("CWE-506",),
            severity="Very High",
            domains=("Software", "Hardware"),
        ),
        AttackPattern(
            "CAPEC-163",
            "Spear Phishing",
            "An attacker sends a targeted message to engineering or operations staff "
            "to obtain credentials or execute malicious code on an engineering "
            "workstation connected to the control network.",
            related_weaknesses=("CWE-1204", "CWE-522"),
            severity="High",
            likelihood="High",
            domains=("Social Engineering",),
        ),
        AttackPattern(
            "CAPEC-112",
            "Brute Force",
            "An attacker systematically guesses passwords or keys protecting remote "
            "access services, maintenance interfaces, or VPN endpoints of the "
            "control network perimeter.",
            related_weaknesses=("CWE-521", "CWE-307"),
            severity="Medium",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-114",
            "Authentication Abuse",
            "An attacker exploits weak or missing authentication on an engineering "
            "protocol or web management interface to issue privileged commands to a "
            "controller or firewall.",
            related_weaknesses=("CWE-287", "CWE-306"),
            severity="High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-554",
            "Functionality Bypass",
            "An attacker bypasses a protection mechanism such as a safety interlock, "
            "alarm, or safety instrumented function so that hazardous commands are "
            "not blocked or reported.",
            related_weaknesses=("CWE-693",),
            severity="Very High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-607",
            "Obstruction",
            "An attacker blocks, jams, or delays legitimate communication between "
            "sensors, controllers, and actuators so the control loop operates on "
            "stale process data.",
            related_weaknesses=("CWE-400",),
            severity="Medium",
            domains=("Communications", "Physical Security"),
        ),
        AttackPattern(
            "CAPEC-390",
            "Bypassing Physical Security",
            "An attacker gains physical access to cabinets, field wiring, or local "
            "maintenance ports, enabling direct manipulation of devices that are "
            "otherwise isolated from the network.",
            related_weaknesses=("CWE-1263",),
            severity="High",
            likelihood="Low",
            domains=("Physical Security",),
        ),
        AttackPattern(
            "CAPEC-169",
            "Footprinting",
            "An attacker enumerates hosts, services, and protocols of the corporate "
            "and control networks to map the system architecture before an attack.",
            related_weaknesses=("CWE-200",),
            severity="Low",
            likelihood="High",
            domains=("Software", "Communications"),
        ),
        AttackPattern(
            "CAPEC-586",
            "Object Injection",
            "An attacker supplies serialized objects or project files that are "
            "deserialized by engineering software, executing attacker logic when "
            "the project is opened.",
            related_weaknesses=("CWE-502",),
            severity="High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-60",
            "Reusing Session IDs (Replay)",
            "An attacker captures valid protocol exchanges such as write commands to "
            "a controller register and replays them later to repeat the commanded "
            "action without authorization.",
            related_weaknesses=("CWE-294", "CWE-345"),
            severity="High",
            domains=("Communications",),
        ),
        AttackPattern(
            "CAPEC-97",
            "Cryptanalysis",
            "An attacker defeats weak or misconfigured encryption protecting remote "
            "access or firmware images, recovering credentials or signing keys.",
            related_weaknesses=("CWE-327", "CWE-311"),
            severity="Medium",
            likelihood="Low",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-700",
            "Network Boundary Bridging",
            "An attacker who controls a boundary device such as a firewall or data "
            "diode re-routes or tunnels traffic across network segments, joining the "
            "corporate network to the isolated control network.",
            related_weaknesses=("CWE-923",),
            severity="Very High",
            likelihood="Low",
            domains=("Communications",),
        ),
        AttackPattern(
            "CAPEC-180",
            "Exploiting Incorrectly Configured Access Control",
            "An attacker leverages permissive firewall rules or access control lists "
            "to reach services on the control network that should be unreachable "
            "from the corporate side.",
            related_weaknesses=("CWE-732", "CWE-284"),
            severity="High",
            domains=("Software",),
        ),
        AttackPattern(
            "CAPEC-184",
            "Software Integrity Attack",
            "An attacker delivers modified firmware or application updates to a "
            "device that does not verify integrity or authenticity of downloaded "
            "code before installation.",
            related_weaknesses=("CWE-494", "CWE-354"),
            severity="High",
            domains=("Software", "Supply Chain"),
        ),
        AttackPattern(
            "CAPEC-624",
            "Hardware Fault Injection",
            "An attacker induces faults through voltage, clock, or electromagnetic "
            "disturbance to corrupt computation in embedded controllers.",
            related_weaknesses=("CWE-1247",),
            severity="Medium",
            likelihood="Low",
            domains=("Hardware", "Physical Security"),
        ),
        AttackPattern(
            "CAPEC-21",
            "Exploitation of Trusted Identifiers",
            "An attacker forges or reuses trusted identifiers such as device "
            "addresses or unit identifiers on an industrial protocol to issue "
            "commands that appear to come from a legitimate master.",
            related_weaknesses=("CWE-290", "CWE-346"),
            severity="High",
            domains=("Communications",),
        ),
    ]


def seed_weaknesses() -> list[Weakness]:
    """The curated CWE-like weaknesses."""
    return [
        Weakness(
            "CWE-78",
            "Improper Neutralization of Special Elements used in an OS Command "
            "('OS Command Injection')",
            "The software constructs all or part of an operating system command "
            "using externally influenced input from an upstream component, allowing "
            "an attacker to inject commands that the platform executes. On a control "
            "platform this may disrupt or manipulate supervisory operation.",
            related_attack_patterns=("CAPEC-88",),
            platforms=("Linux", "Windows", "embedded controller", "ICS/OT"),
            consequences=(
                ("Integrity", "Execute Unauthorized Code or Commands"),
                ("Availability", "DoS: Crash, Exit, or Restart"),
            ),
            likelihood="High",
        ),
        Weakness(
            "CWE-20",
            "Improper Input Validation",
            "The product receives input but does not validate that it has the "
            "properties required to process it safely, enabling injection, "
            "overflow, and logic manipulation through crafted messages or set "
            "points.",
            related_attack_patterns=("CAPEC-137", "CAPEC-88"),
            platforms=("Language-Independent", "ICS/OT"),
            consequences=(("Integrity", "Unexpected State"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-79",
            "Improper Neutralization of Input During Web Page Generation "
            "('Cross-site Scripting')",
            "The web interface of the product does not neutralize user-controllable "
            "input before it is placed in output used by other users, such as the "
            "management console of a firewall or HMI web server.",
            related_attack_patterns=("CAPEC-63",),
            platforms=("Web Based",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
        Weakness(
            "CWE-89",
            "Improper Neutralization of Special Elements used in an SQL Command "
            "('SQL Injection')",
            "The product builds SQL statements from externally influenced input, "
            "allowing attackers to read or modify historian and configuration "
            "databases.",
            related_attack_patterns=("CAPEC-66",),
            platforms=("Database Server",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
        Weakness(
            "CWE-119",
            "Improper Restriction of Operations within the Bounds of a Memory Buffer",
            "The software performs operations on a memory buffer but can read from "
            "or write to locations outside the intended boundary, a classic flaw in "
            "network stacks and protocol parsers of operating systems and firmware.",
            related_attack_patterns=("CAPEC-100",),
            platforms=("C", "C++", "firmware", "operating system"),
            consequences=(("Availability", "DoS: Crash"), ("Integrity", "Execute Unauthorized Code or Commands")),
            likelihood="High",
        ),
        Weakness(
            "CWE-287",
            "Improper Authentication",
            "The product does not prove or insufficiently proves that the claimed "
            "identity of an actor is correct, so remote services and engineering "
            "interfaces accept commands from unauthenticated peers.",
            related_attack_patterns=("CAPEC-114", "CAPEC-112"),
            platforms=("Language-Independent", "ICS/OT"),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-306",
            "Missing Authentication for Critical Function",
            "The software does not authenticate functions that require a provable "
            "user identity, such as writing registers, changing set points, or "
            "updating firmware over an industrial protocol like MODBUS.",
            related_attack_patterns=("CAPEC-114", "CAPEC-21"),
            platforms=("ICS/OT", "embedded controller"),
            consequences=(("Integrity", "Modify Application Data"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-311",
            "Missing Encryption of Sensitive Data",
            "The software does not encrypt sensitive or safety-relevant information "
            "before transmission or storage, exposing credentials and process data "
            "to interception.",
            related_attack_patterns=("CAPEC-94", "CAPEC-97"),
            platforms=("Language-Independent",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
        Weakness(
            "CWE-319",
            "Cleartext Transmission of Sensitive Information",
            "The software transmits sensitive data such as credentials, commands, or "
            "measurements in cleartext over a channel that can be sniffed, which is "
            "typical of legacy fieldbus and supervisory protocols.",
            related_attack_patterns=("CAPEC-94",),
            platforms=("ICS/OT", "network protocol"),
            consequences=(("Confidentiality", "Read Application Data"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-345",
            "Insufficient Verification of Data Authenticity",
            "The software does not sufficiently verify the origin or authenticity of "
            "data, accepting spoofed sensor readings, replayed commands, or forged "
            "status messages as genuine.",
            related_attack_patterns=("CAPEC-148", "CAPEC-60"),
            platforms=("ICS/OT",),
            consequences=(("Integrity", "Modify Application Data"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-346",
            "Origin Validation Error",
            "The software does not properly verify that the source of data or "
            "communication is who it claims, letting any node on the control "
            "network act as the legitimate master or historian.",
            related_attack_patterns=("CAPEC-21", "CAPEC-148"),
            platforms=("network protocol",),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-400",
            "Uncontrolled Resource Consumption",
            "The software does not limit the resources consumed on behalf of a "
            "requester, so floods of traffic or requests exhaust the controller or "
            "network device and deny supervisory control.",
            related_attack_patterns=("CAPEC-125", "CAPEC-607"),
            platforms=("Language-Independent",),
            consequences=(("Availability", "DoS: Resource Consumption"),),
        ),
        Weakness(
            "CWE-494",
            "Download of Code Without Integrity Check",
            "The product downloads source code, firmware, or an executable and "
            "installs it without sufficiently verifying its origin and integrity, "
            "enabling malicious firmware or logic to be deployed to controllers.",
            related_attack_patterns=("CAPEC-184", "CAPEC-438"),
            platforms=("embedded controller", "firmware"),
            consequences=(("Integrity", "Execute Unauthorized Code or Commands"),),
        ),
        Weakness(
            "CWE-502",
            "Deserialization of Untrusted Data",
            "The application deserializes untrusted project files or messages "
            "without verifying the resulting object graph, as found in engineering "
            "and visualization software.",
            related_attack_patterns=("CAPEC-586",),
            platforms=("Java", ".NET", "engineering software"),
            consequences=(("Integrity", "Execute Unauthorized Code or Commands"),),
        ),
        Weakness(
            "CWE-522",
            "Insufficiently Protected Credentials",
            "The product stores or transmits authentication credentials using a "
            "method that allows recovery, such as plaintext project files or weakly "
            "hashed passwords on workstations.",
            related_attack_patterns=("CAPEC-163",),
            platforms=("Language-Independent",),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-798",
            "Use of Hard-coded Credentials",
            "The software contains hard-coded credentials such as default passwords "
            "or embedded service accounts, common in controllers, network devices, "
            "and maintenance interfaces.",
            related_attack_patterns=("CAPEC-70",),
            platforms=("embedded controller", "network device"),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-693",
            "Protection Mechanism Failure",
            "The product does not use, or incorrectly uses, a protection mechanism "
            "such as a safety interlock, alarm, or safety instrumented function, so "
            "attacks that should be stopped proceed to hazardous outcomes.",
            related_attack_patterns=("CAPEC-554",),
            platforms=("ICS/OT", "safety system"),
            consequences=(("Other", "Bypass Protection Mechanism"),),
        ),
        Weakness(
            "CWE-354",
            "Improper Validation of Integrity Check Value",
            "The software does not validate or incorrectly validates the integrity "
            "check values of messages or firmware images, so modified data is "
            "accepted as authentic.",
            related_attack_patterns=("CAPEC-184",),
            platforms=("network protocol", "firmware"),
            consequences=(("Integrity", "Modify Application Data"),),
        ),
        Weakness(
            "CWE-924",
            "Improper Enforcement of Message Integrity During Transmission in a "
            "Communication Channel",
            "The software establishes a communication channel but does not ensure "
            "that messages cannot be modified in transit, which allows adversary in "
            "the middle manipulation of commands and measurements.",
            related_attack_patterns=("CAPEC-94",),
            platforms=("network protocol", "ICS/OT"),
            consequences=(("Integrity", "Modify Application Data"),),
        ),
        Weakness(
            "CWE-300",
            "Channel Accessible by Non-Endpoint",
            "The product does not adequately verify the identity of endpoints, so "
            "an actor on the communication path can interpose between controller and "
            "workstation.",
            related_attack_patterns=("CAPEC-94",),
            platforms=("network protocol",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
        Weakness(
            "CWE-732",
            "Incorrect Permission Assignment for Critical Resource",
            "The product assigns permissions to a critical resource such as firewall "
            "rules, shared folders, or controller projects in a way that allows "
            "unintended actors to read or modify it.",
            related_attack_patterns=("CAPEC-180",),
            platforms=("Language-Independent",),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-284",
            "Improper Access Control",
            "The software does not restrict or incorrectly restricts access to a "
            "resource from an unauthorized actor, such as permissive rules on a "
            "control firewall separating corporate and control networks.",
            related_attack_patterns=("CAPEC-180", "CAPEC-700"),
            platforms=("Language-Independent",),
            consequences=(("Access Control", "Bypass Protection Mechanism"),),
        ),
        Weakness(
            "CWE-1188",
            "Insecure Default Initialization of Resource",
            "The software initializes a resource with insecure defaults, such as "
            "open services, default accounts, or disabled security features on "
            "controllers and network equipment.",
            related_attack_patterns=("CAPEC-176",),
            platforms=("embedded controller", "network device"),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-506",
            "Embedded Malicious Code",
            "The application or firmware contains code that appears benign but "
            "performs malicious actions, such as malware implanted on a safety "
            "controller or engineering workstation.",
            related_attack_patterns=("CAPEC-441",),
            platforms=("Language-Independent",),
            consequences=(("Integrity", "Execute Unauthorized Code or Commands"),),
        ),
        Weakness(
            "CWE-200",
            "Exposure of Sensitive Information to an Unauthorized Actor",
            "The product exposes information about the system, its configuration, "
            "or its network to actors who should not receive it, enabling "
            "footprinting of the control architecture.",
            related_attack_patterns=("CAPEC-169",),
            platforms=("Language-Independent",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
        Weakness(
            "CWE-307",
            "Improper Restriction of Excessive Authentication Attempts",
            "The software does not limit the number of failed authentication "
            "attempts, enabling brute-force guessing of operator or VPN passwords.",
            related_attack_patterns=("CAPEC-112",),
            platforms=("Language-Independent",),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-521",
            "Weak Password Requirements",
            "The product does not require strong passwords, making credential "
            "guessing against remote maintenance and management interfaces easier.",
            related_attack_patterns=("CAPEC-112",),
            platforms=("Language-Independent",),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-327",
            "Use of a Broken or Risky Cryptographic Algorithm",
            "The product uses a broken or weak cryptographic algorithm to protect "
            "communications or stored secrets, such as legacy VPN and remote access "
            "configurations on perimeter firewalls.",
            related_attack_patterns=("CAPEC-97",),
            platforms=("Language-Independent",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
        Weakness(
            "CWE-416",
            "Use After Free",
            "The product reuses memory after it has been freed, which can corrupt "
            "state or allow code execution in operating system kernels, browsers, "
            "and protocol stacks.",
            related_attack_patterns=("CAPEC-100",),
            platforms=("C", "C++", "operating system"),
            consequences=(("Integrity", "Execute Unauthorized Code or Commands"),),
        ),
        Weakness(
            "CWE-787",
            "Out-of-bounds Write",
            "The software writes data past the end or before the beginning of the "
            "intended buffer, a dominant memory-safety flaw in operating systems, "
            "network services, and firmware images.",
            related_attack_patterns=("CAPEC-100",),
            platforms=("C", "C++", "operating system", "firmware"),
            consequences=(("Integrity", "Execute Unauthorized Code or Commands"),),
            likelihood="High",
        ),
        Weakness(
            "CWE-290",
            "Authentication Bypass by Spoofing",
            "The software is vulnerable to authentication bypass through spoofing of "
            "addresses, identifiers, or certificates that it trusts implicitly.",
            related_attack_patterns=("CAPEC-21",),
            platforms=("network protocol",),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-1247",
            "Improper Protection Against Voltage and Clock Glitches",
            "The hardware does not implement or incorrectly implements protections "
            "against fault injection through voltage or clock manipulation.",
            related_attack_patterns=("CAPEC-624",),
            platforms=("hardware",),
            consequences=(("Integrity", "Unexpected State"),),
        ),
        Weakness(
            "CWE-1263",
            "Improper Physical Access Control",
            "The product does not restrict physical access to ports, cabinets, or "
            "field wiring, allowing direct local manipulation of devices.",
            related_attack_patterns=("CAPEC-390",),
            platforms=("hardware",),
            consequences=(("Access Control", "Bypass Protection Mechanism"),),
        ),
        Weakness(
            "CWE-770",
            "Allocation of Resources Without Limits or Throttling",
            "The software allocates reusable resources without limits, enabling "
            "exhaustion of sessions, sockets, or memory by a remote requester.",
            related_attack_patterns=("CAPEC-125",),
            platforms=("Language-Independent",),
            consequences=(("Availability", "DoS: Resource Consumption"),),
        ),
        Weakness(
            "CWE-294",
            "Authentication Bypass by Capture-replay",
            "The protocol permits a captured exchange to be replayed later to "
            "repeat an authenticated action, such as a register write or mode "
            "change on an industrial controller.",
            related_attack_patterns=("CAPEC-60",),
            platforms=("network protocol", "ICS/OT"),
            consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
        ),
        Weakness(
            "CWE-923",
            "Improper Restriction of Communication Channel to Intended Endpoints",
            "The product establishes a channel without ensuring only the intended "
            "endpoints can use it, enabling bridging between network segments that "
            "should remain isolated.",
            related_attack_patterns=("CAPEC-700",),
            platforms=("network protocol",),
            consequences=(("Access Control", "Bypass Protection Mechanism"),),
        ),
        Weakness(
            "CWE-1204",
            "Generation of Weak Initialization Vector",
            "The product uses a weak or predictable initialization vector, lowering "
            "the protection of encrypted sessions used for remote access.",
            related_attack_patterns=("CAPEC-97",),
            platforms=("Language-Independent",),
            consequences=(("Confidentiality", "Read Application Data"),),
        ),
    ]


def seed_vulnerabilities() -> list[Vulnerability]:
    """The curated CVE-like vulnerabilities for the demonstration platforms."""
    return [
        Vulnerability(
            "CVE-2018-0101",
            "A vulnerability in the Secure Sockets Layer VPN functionality of Cisco "
            "Adaptive Security Appliance (Cisco ASA) software could allow an "
            "unauthenticated remote attacker to cause a reload of the affected "
            "device or remotely execute code.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H"),
            cwe_ids=("CWE-416",),
            affected_platforms=("cisco asa",),
            published_year=2018,
        ),
        Vulnerability(
            "CVE-2020-3452",
            "A vulnerability in the web services interface of Cisco Adaptive "
            "Security Appliance (ASA) software could allow an unauthenticated "
            "remote attacker to conduct directory traversal attacks and read "
            "sensitive files on the targeted firewall.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"),
            cwe_ids=("CWE-20",),
            affected_platforms=("cisco asa",),
            published_year=2020,
        ),
        Vulnerability(
            "CVE-2016-6366",
            "Buffer overflow in Cisco Adaptive Security Appliance (ASA) software "
            "SNMP implementation allows remote authenticated attackers to execute "
            "arbitrary code via crafted SNMP packets (EXTRABACON).",
            cvss=CvssVector.parse("CVSS:3.1/AV:A/AC:H/PR:L/UI:N/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-119",),
            affected_platforms=("cisco asa",),
            published_year=2016,
        ),
        Vulnerability(
            "CVE-2017-0144",
            "The SMBv1 server in Microsoft Windows 7 SP1 and other Windows versions "
            "allows remote attackers to execute arbitrary code via crafted packets, "
            "as exploited by the EternalBlue exploit and the WannaCry malware.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-787",),
            affected_platforms=("microsoft windows 7",),
            published_year=2017,
        ),
        Vulnerability(
            "CVE-2019-0708",
            "A remote code execution vulnerability exists in Remote Desktop Services "
            "on Microsoft Windows 7 when an unauthenticated attacker connects using "
            "RDP and sends specially crafted requests (BlueKeep).",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-416",),
            affected_platforms=("microsoft windows 7",),
            published_year=2019,
        ),
        Vulnerability(
            "CVE-2017-8464",
            "Windows Shell in Microsoft Windows 7 allows local users or remote "
            "attackers to execute arbitrary code via a crafted .LNK file placed on "
            "removable media, a technique associated with industrial intrusions.",
            cvss=CvssVector.parse("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-20",),
            affected_platforms=("microsoft windows 7",),
            published_year=2017,
        ),
        Vulnerability(
            "CVE-2017-2779",
            "A memory corruption vulnerability exists in the project file parser of "
            "National Instruments LabVIEW; opening a specially crafted VI file can "
            "result in attacker-controlled code execution on the workstation.",
            cvss=CvssVector.parse("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-787",),
            affected_platforms=("ni labview",),
            published_year=2017,
        ),
        Vulnerability(
            "CVE-2022-42718",
            "An incorrect default permissions vulnerability in National Instruments "
            "LabVIEW system services allows a local authenticated user to escalate "
            "privileges on the programming workstation.",
            cvss=CvssVector.parse("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-732",),
            affected_platforms=("ni labview",),
            published_year=2022,
        ),
        Vulnerability(
            "CVE-2019-11477",
            "An integer overflow in the Linux kernel TCP selective acknowledgement "
            "handling (SACK Panic) allows a remote attacker to crash systems running "
            "the Linux kernel, including NI Linux Real-Time based controllers.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"),
            cwe_ids=("CWE-400",),
            affected_platforms=("ni linux real-time", "linux kernel"),
            published_year=2019,
        ),
        Vulnerability(
            "CVE-2016-5195",
            "A race condition in the memory subsystem of the Linux kernel (Dirty "
            "COW) allows local users to gain write access to read-only memory and "
            "escalate privileges on Linux and NI Linux Real-Time systems.",
            cvss=CvssVector.parse("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H"),
            cwe_ids=("CWE-416",),
            affected_platforms=("ni linux real-time", "linux kernel"),
            published_year=2016,
        ),
        Vulnerability(
            "CVE-2020-25176",
            "The firmware of National Instruments CompactRIO controllers (including "
            "cRIO-9063 and cRIO-9064) exposes a service that allows remote "
            "unauthenticated users to reboot the device or modify startup settings, "
            "disrupting the control application.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:H"),
            cwe_ids=("CWE-306",),
            affected_platforms=("ni crio-9063", "ni crio-9064"),
            published_year=2020,
        ),
        Vulnerability(
            "CVE-2018-7522",
            "A vulnerability in the safety controller firmware of a widely deployed "
            "safety instrumented system allows specially crafted network messages to "
            "place the safety processor in a state where malicious logic can be "
            "downloaded, as leveraged by the TRITON/TRISIS malware.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:C/C:H/I:H/A:H"),
            cwe_ids=("CWE-306", "CWE-494"),
            affected_platforms=("safety instrumented system",),
            published_year=2018,
        ),
        Vulnerability(
            "CVE-2015-5374",
            "A vulnerability in the EN100 Ethernet module of a protection relay "
            "allows remote attackers to cause a denial of service (defect mode) via "
            "crafted packets to UDP port 50000, halting supervisory communication.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H"),
            cwe_ids=("CWE-400",),
            affected_platforms=("protection relay",),
            published_year=2015,
        ),
        Vulnerability(
            "CVE-2019-6572",
            "Unauthenticated access to the MODBUS TCP interface of an industrial "
            "controller allows remote attackers to write coils and holding registers "
            "and thereby change commanded set points of the physical process.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:H/A:H"),
            cwe_ids=("CWE-306",),
            affected_platforms=("modbus controller", "bpcs platform"),
            published_year=2019,
        ),
        Vulnerability(
            "CVE-2014-0160",
            "The TLS heartbeat extension implementation in OpenSSL (Heartbleed) "
            "allows remote attackers to read process memory and recover private "
            "keys from servers and appliances terminating TLS, including VPN "
            "concentrators and management interfaces.",
            cvss=CvssVector.parse("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:N/A:N"),
            cwe_ids=("CWE-119",),
            affected_platforms=("openssl", "network appliance"),
            published_year=2014,
        ),
        Vulnerability(
            "CVE-2010-2772",
            "The WinCC Runtime and Step 7 software used with a family of PLCs "
            "contains a hard-coded database password, which was leveraged by the "
            "Stuxnet malware to access the project database on engineering "
            "workstations.",
            cvss=CvssVector.parse("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:N"),
            cwe_ids=("CWE-798",),
            affected_platforms=("engineering workstation", "scada software"),
            published_year=2010,
        ),
    ]

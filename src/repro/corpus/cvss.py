"""CVSS v3.1 base-metric scoring.

The paper warns that "a common mistake is to use CVSS as a potential metric
for risk.  However, CVSS only defines severity of a given vulnerability and
not risk."  To make that argument reproducible (experiment E8) we need an
actual CVSS implementation: this module computes the v3.1 base score from a
vector string per the first.org specification, and maps scores to the
qualitative severity ratings (None/Low/Medium/High/Critical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

_AV = {"N": 0.85, "A": 0.62, "L": 0.55, "P": 0.2}
_AC = {"L": 0.77, "H": 0.44}
_PR_UNCHANGED = {"N": 0.85, "L": 0.62, "H": 0.27}
_PR_CHANGED = {"N": 0.85, "L": 0.68, "H": 0.5}
_UI = {"N": 0.85, "R": 0.62}
_CIA = {"N": 0.0, "L": 0.22, "H": 0.56}

_METRIC_NAMES = ("AV", "AC", "PR", "UI", "S", "C", "I", "A")


@dataclass(frozen=True)
class CvssVector:
    """A parsed CVSS v3.1 base vector."""

    attack_vector: str = "N"
    attack_complexity: str = "L"
    privileges_required: str = "N"
    user_interaction: str = "N"
    scope: str = "U"
    confidentiality: str = "N"
    integrity: str = "N"
    availability: str = "N"

    def __post_init__(self) -> None:
        checks = (
            ("attack_vector", self.attack_vector, _AV),
            ("attack_complexity", self.attack_complexity, _AC),
            ("privileges_required", self.privileges_required, _PR_UNCHANGED),
            ("user_interaction", self.user_interaction, _UI),
            ("confidentiality", self.confidentiality, _CIA),
            ("integrity", self.integrity, _CIA),
            ("availability", self.availability, _CIA),
        )
        for field_name, value, table in checks:
            if value not in table:
                raise ValueError(f"invalid CVSS {field_name} value: {value!r}")
        if self.scope not in {"U", "C"}:
            raise ValueError(f"invalid CVSS scope value: {self.scope!r}")

    @classmethod
    def parse(cls, vector: str) -> "CvssVector":
        """Parse a ``CVSS:3.1/AV:N/AC:L/...`` vector string.

        Parsed vectors are cached per input string: real-world feeds repeat a
        small set of base vectors tens of thousands of times, so corpus
        synthesis and deserialization share one immutable instance per
        distinct vector instead of re-validating each occurrence.
        """
        return _parse_cached(vector)

    @classmethod
    def _parse(cls, vector: str) -> "CvssVector":
        parts = [p for p in vector.strip().split("/") if p]
        metrics: dict[str, str] = {}
        for part in parts:
            if part.upper().startswith("CVSS:"):
                continue
            if ":" not in part:
                raise ValueError(f"malformed CVSS metric: {part!r}")
            key, value = part.split(":", 1)
            metrics[key.upper()] = value.upper()
        missing = [name for name in _METRIC_NAMES if name not in metrics]
        if missing:
            raise ValueError(f"CVSS vector missing metrics: {', '.join(missing)}")
        return cls(
            attack_vector=metrics["AV"],
            attack_complexity=metrics["AC"],
            privileges_required=metrics["PR"],
            user_interaction=metrics["UI"],
            scope=metrics["S"],
            confidentiality=metrics["C"],
            integrity=metrics["I"],
            availability=metrics["A"],
        )

    def to_string(self) -> str:
        """Render the canonical vector string."""
        return (
            "CVSS:3.1"
            f"/AV:{self.attack_vector}/AC:{self.attack_complexity}"
            f"/PR:{self.privileges_required}/UI:{self.user_interaction}"
            f"/S:{self.scope}/C:{self.confidentiality}"
            f"/I:{self.integrity}/A:{self.availability}"
        )

    @property
    def scope_changed(self) -> bool:
        """Whether the scope metric is Changed."""
        return self.scope == "C"

    def base_score(self) -> float:
        """The CVSS v3.1 base score in [0.0, 10.0] (cached per vector)."""
        return _base_score_cached(self)

    def severity(self) -> str:
        """The qualitative severity rating of the base score."""
        return severity_rating(self.base_score())

    @property
    def network_exploitable(self) -> bool:
        """Whether the vulnerability is exploitable over a network."""
        return self.attack_vector in {"N", "A"}


@lru_cache(maxsize=4096)
def _parse_cached(vector: str) -> "CvssVector":
    return CvssVector._parse(vector)


@lru_cache(maxsize=4096)
def _base_score_cached(vector: CvssVector) -> float:
    return cvss_base_score(vector)


def clear_caches() -> None:
    """Drop the module's parse/score LRU caches.

    Fork hygiene for pre-forked servers: these process-wide caches fill up
    during parent warm-up, and a freshly forked worker should start with
    the same cold-cache behaviour as a freshly started process.
    """
    _parse_cached.cache_clear()
    _base_score_cached.cache_clear()


def cvss_base_score(vector: CvssVector) -> float:
    """Compute the CVSS v3.1 base score for a parsed vector.

    Implements the equations of the CVSS v3.1 specification, including the
    roundup-to-one-decimal behaviour defined there.
    """
    iss = 1.0 - (
        (1.0 - _CIA[vector.confidentiality])
        * (1.0 - _CIA[vector.integrity])
        * (1.0 - _CIA[vector.availability])
    )
    if vector.scope_changed:
        impact = 7.52 * (iss - 0.029) - 3.25 * (iss - 0.02) ** 15
        pr_table = _PR_CHANGED
    else:
        impact = 6.42 * iss
        pr_table = _PR_UNCHANGED
    exploitability = (
        8.22
        * _AV[vector.attack_vector]
        * _AC[vector.attack_complexity]
        * pr_table[vector.privileges_required]
        * _UI[vector.user_interaction]
    )
    if impact <= 0:
        return 0.0
    if vector.scope_changed:
        raw = min(1.08 * (impact + exploitability), 10.0)
    else:
        raw = min(impact + exploitability, 10.0)
    return _roundup(raw)


def _roundup(value: float) -> float:
    """CVSS Roundup: smallest number with one decimal >= value."""
    integer_input = round(value * 100000)
    if integer_input % 10000 == 0:
        return integer_input / 100000.0
    return (math.floor(integer_input / 10000) + 1) / 10.0


def severity_rating(score: float) -> str:
    """Map a base score to the CVSS qualitative severity rating."""
    if not 0.0 <= score <= 10.0:
        raise ValueError(f"CVSS score out of range: {score}")
    if score == 0.0:
        return "None"
    if score < 4.0:
        return "Low"
    if score < 7.0:
        return "Medium"
    if score < 9.0:
        return "High"
    return "Critical"

"""Attack-vector corpus substrate.

The paper's security data inputs are "databases containing vulnerability,
weakness, and attack pattern data, such as the ones published by MITRE" --
i.e. CVE/NVD, CWE, and CAPEC.  Those feeds are large and network-only, so
this package provides:

* :mod:`repro.corpus.schema` -- record types for attack patterns (CAPEC),
  weaknesses (CWE), and vulnerabilities (CVE), with cross-references,
* :mod:`repro.corpus.cvss` -- a full CVSS v3.1 base-score implementation,
* :mod:`repro.corpus.store` -- an in-memory corpus with id and platform
  indexes and cross-reference traversal,
* :mod:`repro.corpus.seed` -- curated, real, well-known entries (CWE-78,
  CAPEC-88, platform weaknesses used in the paper's demonstration),
* :mod:`repro.corpus.synthesis` -- a deterministic synthetic generator that
  expands the corpus to NVD-like sizes per platform so that the shape of the
  paper's Table 1 can be reproduced offline.
"""

from repro.corpus.cvss import CvssVector, cvss_base_score, severity_rating
from repro.corpus.schema import (
    AttackPattern,
    RecordKind,
    Vulnerability,
    Weakness,
)
from repro.corpus.store import CorpusStore
from repro.corpus.seed import seed_corpus
from repro.corpus.synthesis import PlatformProfile, SyntheticCorpusBuilder, build_corpus

__all__ = [
    "AttackPattern",
    "Weakness",
    "Vulnerability",
    "RecordKind",
    "CvssVector",
    "cvss_base_score",
    "severity_rating",
    "CorpusStore",
    "seed_corpus",
    "PlatformProfile",
    "SyntheticCorpusBuilder",
    "build_corpus",
]

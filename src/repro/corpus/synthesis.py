"""Deterministic synthetic expansion of the attack-vector corpus.

The authors run their search engine against the full MITRE feeds: roughly
500+ CAPEC attack patterns, 900+ CWE weaknesses, and well over one hundred
thousand NVD vulnerability entries, of which thousands match each platform of
the demonstration SCADA system (Table 1: 3,776 for Cisco ASA, 9,673 for NI RT
Linux, 6,627 for Windows 7, ...).

Those feeds are not redistributable here and the environment is offline, so
this module generates a synthetic corpus with the same *statistical shape*:

* per-platform vulnerability populations sized like the paper's Table 1,
* weakness and attack-pattern populations sized like CWE/CAPEC, themed so
  that operating-system attributes match many of them while narrow product
  attributes (LabVIEW, cRIO) match few -- the property Table 1 exhibits,
* realistic description text assembled from templates, so the text-matching
  pipeline is exercised exactly as it would be on the real feeds,
* full CAPEC <-> CWE <-> CVE cross-references.

Generation is fully deterministic for a given ``seed`` and ``scale`` so tests
and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.cvss import CvssVector
from repro.corpus.schema import Abstraction, AttackPattern, Vulnerability, Weakness
from repro.corpus.seed import seed_corpus
from repro.corpus.store import CorpusStore

# -- platform profiles (Table 1 of the paper) --------------------------------


@dataclass(frozen=True)
class PlatformProfile:
    """Describes one platform's synthetic vulnerability population.

    Parameters
    ----------
    key:
        Stable identifier used in CVE platform tags.
    mentions:
        Phrases inserted into vulnerability descriptions; the first one is
        the canonical product name.
    vulnerability_count:
        Target number of vulnerabilities at ``scale=1.0`` (taken from the
        paper's Table 1 where applicable).
    cwe_pool:
        Weakness classes the platform's vulnerabilities instantiate.
    subcomponents:
        Subsystem nouns used in description templates.
    year_range:
        Publication years to draw from.
    """

    key: str
    mentions: tuple[str, ...]
    vulnerability_count: int
    cwe_pool: tuple[str, ...]
    subcomponents: tuple[str, ...]
    year_range: tuple[int, int] = (2010, 2020)


#: Platform populations sized from the paper's Table 1.  The NI Linux
#: Real-Time figure is large because the product is Linux-kernel based and the
#: authors' search matches generic Linux kernel CVEs; we reproduce that by
#: making the population mention the Linux kernel.
TABLE1_PROFILES: tuple[PlatformProfile, ...] = (
    PlatformProfile(
        key="cisco asa",
        mentions=(
            "Cisco Adaptive Security Appliance (ASA) software",
            "Cisco ASA firewall",
            "the Cisco ASA VPN appliance",
        ),
        vulnerability_count=3776,
        cwe_pool=("CWE-119", "CWE-20", "CWE-79", "CWE-287", "CWE-400", "CWE-416",
                  "CWE-327", "CWE-798"),
        subcomponents=(
            "web services interface", "SSL VPN functionality", "SNMP implementation",
            "IKEv2 module", "management console", "packet inspection engine",
            "clientless VPN portal", "REST API",
        ),
    ),
    PlatformProfile(
        key="ni linux real-time",
        mentions=(
            "the Linux kernel",
            "Linux kernel network stack",
            "NI Linux Real-Time operating system",
            "real-time Linux distributions",
        ),
        vulnerability_count=9673,
        cwe_pool=("CWE-416", "CWE-787", "CWE-119", "CWE-400", "CWE-20", "CWE-200",
                  "CWE-770"),
        subcomponents=(
            "TCP/IP stack", "USB driver subsystem", "ext4 filesystem", "netfilter module",
            "KVM virtualization layer", "perf subsystem", "scheduler", "socket layer",
            "device driver ioctl handler", "memory management subsystem",
        ),
    ),
    PlatformProfile(
        key="microsoft windows 7",
        mentions=(
            "Microsoft Windows 7 SP1",
            "Windows 7",
            "the Windows 7 operating system",
        ),
        vulnerability_count=6627,
        cwe_pool=("CWE-787", "CWE-416", "CWE-119", "CWE-20", "CWE-287", "CWE-200",
                  "CWE-732", "CWE-522"),
        subcomponents=(
            "SMB server", "Remote Desktop Services", "win32k kernel driver",
            "graphics device interface", "task scheduler", "print spooler",
            "LSASS authentication service", "OLE component", "shell link handler",
        ),
    ),
    PlatformProfile(
        key="ni labview",
        mentions=("National Instruments LabVIEW", "NI LabVIEW development environment"),
        vulnerability_count=6,
        cwe_pool=("CWE-787", "CWE-20", "CWE-732"),
        subcomponents=(
            "VI project file parser", "web server component", "shared variable engine",
            "installer service",
        ),
    ),
    PlatformProfile(
        key="ni crio-9063",
        mentions=("National Instruments cRIO-9063 controller firmware",),
        vulnerability_count=7,
        cwe_pool=("CWE-306", "CWE-798", "CWE-494"),
        subcomponents=(
            "system web configuration service", "firmware update mechanism",
            "network discovery service",
        ),
    ),
    PlatformProfile(
        key="ni crio-9064",
        mentions=("National Instruments cRIO-9064 controller firmware",),
        vulnerability_count=7,
        cwe_pool=("CWE-306", "CWE-798", "CWE-494"),
        subcomponents=(
            "system web configuration service", "firmware update mechanism",
            "RT target deployment service",
        ),
    ),
)

#: Background populations that do not correspond to the demonstration's
#: attributes; they keep the corpus from being trivially separable and give
#: filters something to discard.
BACKGROUND_PROFILES: tuple[PlatformProfile, ...] = (
    PlatformProfile(
        key="apache http server",
        mentions=("Apache HTTP Server", "the Apache web server"),
        vulnerability_count=900,
        cwe_pool=("CWE-20", "CWE-79", "CWE-400", "CWE-200"),
        subcomponents=("mod_proxy module", "request parser", "TLS handling", "htaccess processing"),
    ),
    PlatformProfile(
        key="oracle java",
        mentions=("Oracle Java SE", "the Java runtime environment"),
        vulnerability_count=800,
        cwe_pool=("CWE-502", "CWE-20", "CWE-787"),
        subcomponents=("deserialization routines", "2D graphics library", "JNDI subsystem", "hotspot compiler"),
    ),
    PlatformProfile(
        key="modbus plc",
        mentions=(
            "a programmable logic controller exposing MODBUS TCP",
            "the MODBUS protocol implementation of an industrial controller",
        ),
        vulnerability_count=180,
        cwe_pool=("CWE-306", "CWE-319", "CWE-294", "CWE-345", "CWE-400"),
        subcomponents=("register write handler", "unit identifier parsing", "function code dispatcher"),
    ),
    PlatformProfile(
        key="scada hmi",
        mentions=("a SCADA human machine interface application", "supervisory control software"),
        vulnerability_count=260,
        cwe_pool=("CWE-798", "CWE-287", "CWE-89", "CWE-522", "CWE-20"),
        subcomponents=("tag database", "alarm server", "historian connector", "project file loader"),
    ),
    PlatformProfile(
        key="openssl",
        mentions=("OpenSSL", "the OpenSSL cryptographic library"),
        vulnerability_count=320,
        cwe_pool=("CWE-119", "CWE-327", "CWE-200"),
        subcomponents=("TLS handshake code", "ASN.1 parser", "heartbeat extension"),
    ),
)


# -- description templates ----------------------------------------------------

_CWE_PHRASES = {
    "CWE-78": "an OS command injection flaw",
    "CWE-20": "an improper input validation issue",
    "CWE-79": "a cross-site scripting vulnerability",
    "CWE-89": "a SQL injection vulnerability",
    "CWE-119": "a buffer overflow",
    "CWE-787": "an out-of-bounds write",
    "CWE-416": "a use-after-free condition",
    "CWE-287": "an improper authentication weakness",
    "CWE-306": "missing authentication for a critical function",
    "CWE-311": "missing encryption of sensitive data",
    "CWE-319": "cleartext transmission of sensitive information",
    "CWE-345": "insufficient verification of data authenticity",
    "CWE-346": "an origin validation error",
    "CWE-400": "uncontrolled resource consumption",
    "CWE-494": "download of code without an integrity check",
    "CWE-502": "unsafe deserialization of untrusted data",
    "CWE-522": "insufficiently protected credentials",
    "CWE-798": "use of hard-coded credentials",
    "CWE-693": "a protection mechanism failure",
    "CWE-354": "improper validation of an integrity check value",
    "CWE-924": "improper enforcement of message integrity",
    "CWE-300": "a channel accessible by a non-endpoint",
    "CWE-732": "incorrect permission assignment for a critical resource",
    "CWE-284": "improper access control",
    "CWE-1188": "insecure default initialization",
    "CWE-200": "an information exposure",
    "CWE-327": "use of a broken cryptographic algorithm",
    "CWE-307": "missing restriction of authentication attempts",
    "CWE-521": "weak password requirements",
    "CWE-294": "an authentication bypass by capture-replay",
    "CWE-770": "resource allocation without limits",
    "CWE-290": "an authentication bypass by spoofing",
    "CWE-923": "improper restriction of a communication channel",
    "CWE-506": "embedded malicious code",
}

_ACTORS = (
    "a remote unauthenticated attacker",
    "a remote authenticated attacker",
    "a local user",
    "an adjacent network attacker",
    "an attacker with physical access",
)

_IMPACTS = (
    "execute arbitrary code",
    "cause a denial of service",
    "escalate privileges",
    "read sensitive information",
    "modify configuration data",
    "bypass authentication",
    "crash the affected process",
    "write attacker controlled values to process registers",
)

_VECTORS = (
    "a crafted network packet",
    "a malformed protocol message",
    "a specially crafted file",
    "a crafted HTTP request",
    "a sequence of malformed requests",
    "a crafted serialized object",
    "repeated connection attempts",
    "a manipulated firmware image",
)

_CVSS_CHOICES = (
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H", 18),
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:N/I:N/A:H", 14),
    ("CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:H/I:H/A:H", 10),
    ("CVSS:3.1/AV:N/AC:L/PR:L/UI:N/S:U/C:H/I:N/A:N", 10),
    ("CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H", 14),
    ("CVSS:3.1/AV:L/AC:L/PR:N/UI:R/S:U/C:H/I:H/A:H", 10),
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N", 8),
    ("CVSS:3.1/AV:A/AC:H/PR:L/UI:N/S:U/C:H/I:H/A:H", 6),
    ("CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H", 4),
    ("CVSS:3.1/AV:P/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:N", 2),
)


# -- weakness / attack-pattern themes -----------------------------------------
#
# Each theme yields synthetic CWE/CAPEC entries whose text contains the theme
# keywords.  The per-theme counts are chosen so that the *matching counts* of
# the paper's Table 1 attributes keep their shape: operating-system attributes
# (Windows 7, NI RT Linux) match tens of weaknesses and attack patterns, while
# narrow product attributes (Cisco ASA, LabVIEW, cRIO) match almost none.

@dataclass(frozen=True)
class _Theme:
    key: str
    keywords: tuple[str, ...]
    weakness_count: int
    pattern_count: int
    subjects: tuple[str, ...]
    flaws: tuple[str, ...]
    consequences: tuple[tuple[str, str], ...] = (
        ("Integrity", "Modify Application Data"),
    )


_THEMES: tuple[_Theme, ...] = (
    _Theme(
        key="windows",
        keywords=("the Windows operating system", "Microsoft Windows platforms"),
        weakness_count=68,
        pattern_count=38,
        subjects=("kernel driver", "registry hive", "service control manager",
                  "access token handling", "named pipe server", "DLL search order",
                  "COM object activation", "scheduled task"),
        flaws=("improper privilege management", "unquoted search path",
               "improper handling of symbolic links", "incorrect default permissions",
               "improper isolation of shared resources", "race condition during access"),
    ),
    _Theme(
        key="linux",
        keywords=("the Linux kernel", "Linux based and real-time operating systems"),
        weakness_count=70,
        pattern_count=48,
        subjects=("system call interface", "device driver", "memory management code",
                  "netlink socket handling", "filesystem implementation", "eBPF verifier",
                  "scheduler", "capability checks"),
        flaws=("use after free", "out-of-bounds write", "race condition",
               "missing permission check", "integer overflow", "reference count error"),
    ),
    _Theme(
        key="network_protocol",
        keywords=("network protocol implementations", "industrial communication protocols such as MODBUS"),
        weakness_count=60,
        pattern_count=55,
        subjects=("message parser", "session establishment", "frame reassembly",
                  "checksum validation", "address resolution", "broadcast handling"),
        flaws=("missing message authentication", "acceptance of replayed frames",
               "cleartext transport of commands", "improper length validation",
               "trust of unverified source addresses"),
        consequences=(("Integrity", "Modify Application Data"),
                      ("Availability", "DoS: Crash, Exit, or Restart")),
    ),
    _Theme(
        key="web",
        keywords=("web applications", "web based management interfaces"),
        weakness_count=85,
        pattern_count=70,
        subjects=("login form", "session cookie handling", "REST endpoint",
                  "file upload handler", "template rendering", "password reset flow"),
        flaws=("cross-site scripting", "cross-site request forgery", "path traversal",
               "server-side request forgery", "insecure direct object reference",
               "improper session expiration"),
        consequences=(("Confidentiality", "Read Application Data"),),
    ),
    _Theme(
        key="embedded_firmware",
        keywords=("embedded devices and controller firmware", "programmable logic controllers"),
        weakness_count=55,
        pattern_count=45,
        subjects=("bootloader", "firmware update routine", "debug interface",
                  "field service port", "watchdog configuration", "ladder logic loader"),
        flaws=("unsigned firmware acceptance", "hard-coded maintenance credentials",
               "exposed JTAG interface", "missing secure boot", "writable configuration memory"),
        consequences=(("Integrity", "Execute Unauthorized Code or Commands"),),
    ),
    _Theme(
        key="ics_safety",
        keywords=("industrial control systems", "safety instrumented systems and supervisory control"),
        weakness_count=50,
        pattern_count=45,
        subjects=("safety logic solver", "alarm management", "set point handling",
                  "interlock configuration", "historian interface", "engineering download"),
        flaws=("unauthenticated register writes", "bypassable safety interlocks",
               "acceptance of out-of-range set points", "unverified logic downloads",
               "suppressed alarm propagation"),
        consequences=(("Other", "Bypass Protection Mechanism"),
                      ("Availability", "DoS: Crash, Exit, or Restart")),
    ),
    _Theme(
        key="firewall_appliance",
        keywords=("perimeter firewall appliances", "adaptive security appliances and VPN gateways"),
        weakness_count=4,
        pattern_count=3,
        subjects=("rule compilation", "VPN session handling", "management plane",
                  "high availability synchronization"),
        flaws=("permissive default rule sets", "management plane exposure",
               "weak VPN cipher configuration"),
        consequences=(("Access Control", "Bypass Protection Mechanism"),),
    ),
    _Theme(
        key="generic_software",
        keywords=("software applications", "general purpose software components"),
        weakness_count=240,
        pattern_count=150,
        subjects=("input parser", "memory allocator", "configuration loader",
                  "logging subsystem", "plugin loader", "inter-process interface",
                  "temporary file handling", "error handling path"),
        flaws=("improper input validation", "improper error handling",
               "insecure temporary file creation", "uncontrolled format string",
               "improper resource shutdown", "excessive data exposure"),
    ),
    _Theme(
        key="hardware_physical",
        keywords=("hardware platforms", "physically accessible equipment"),
        weakness_count=45,
        pattern_count=40,
        subjects=("debug port", "memory bus", "power supply monitoring",
                  "enclosure tamper detection", "sensor interface wiring"),
        flaws=("missing tamper detection", "unprotected debug access",
               "susceptibility to fault injection", "exposed field wiring"),
        consequences=(("Integrity", "Unexpected State"),),
    ),
    _Theme(
        key="credentials_social",
        keywords=("credential handling and human factors", "enterprise authentication systems"),
        weakness_count=60,
        pattern_count=55,
        subjects=("password storage", "single sign-on integration", "phishing resistance",
                  "account recovery", "privileged account management"),
        flaws=("reversible password storage", "missing multi-factor authentication",
               "overly long session lifetimes", "shared administrative accounts"),
        consequences=(("Access Control", "Gain Privileges or Assume Identity"),),
    ),
)


# -- builder ------------------------------------------------------------------


@dataclass
class SyntheticCorpusBuilder:
    """Builds a deterministic synthetic corpus.

    Parameters
    ----------
    scale:
        Multiplier on all population sizes.  ``1.0`` reproduces paper-scale
        populations (about 21k vulnerabilities); tests use a small scale.
    seed:
        Seed for the deterministic pseudo-random generator.
    profiles:
        Platform profiles to generate vulnerabilities for.
    include_background:
        Whether to also generate the background (non-Table-1) populations.
    """

    scale: float = 1.0
    seed: int = 7
    profiles: tuple[PlatformProfile, ...] = TABLE1_PROFILES
    include_background: bool = True
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        self._rng = random.Random(self.seed)

    # .. vulnerabilities ....................................................

    def build_vulnerabilities(self) -> list[Vulnerability]:
        """Generate the per-platform vulnerability populations."""
        profiles = list(self.profiles)
        if self.include_background:
            profiles.extend(BACKGROUND_PROFILES)
        vulnerabilities: list[Vulnerability] = []
        serial = 10000
        for profile in profiles:
            count = self._scaled(profile.vulnerability_count)
            for _ in range(count):
                serial += 1
                vulnerabilities.append(self._vulnerability(profile, serial))
        return vulnerabilities

    def _scaled(self, count: int) -> int:
        return max(1, round(count * self.scale)) if count else 0

    def _vulnerability(self, profile: PlatformProfile, serial: int) -> Vulnerability:
        rng = self._rng
        cwe = rng.choice(profile.cwe_pool)
        phrase = _CWE_PHRASES.get(cwe, "a security flaw")
        mention = rng.choice(profile.mentions)
        subcomponent = rng.choice(profile.subcomponents)
        actor = rng.choice(_ACTORS)
        impact = rng.choice(_IMPACTS)
        vector = rng.choice(_VECTORS)
        year = rng.randint(*profile.year_range)
        description = (
            f"{phrase.capitalize()} in the {subcomponent} of {mention} allows "
            f"{actor} to {impact} via {vector}."
        )
        cvss = CvssVector.parse(self._pick_cvss())
        return Vulnerability(
            identifier=f"CVE-{year}-{serial}",
            description=description,
            cvss=cvss,
            cwe_ids=(cwe,),
            affected_platforms=(profile.key,),
            published_year=year,
        )

    def _pick_cvss(self) -> str:
        total = sum(weight for _, weight in _CVSS_CHOICES)
        pick = self._rng.uniform(0, total)
        cumulative = 0.0
        for vector, weight in _CVSS_CHOICES:
            cumulative += weight
            if pick <= cumulative:
                return vector
        return _CVSS_CHOICES[-1][0]

    # .. weaknesses and attack patterns .....................................

    def build_weaknesses(self) -> list[Weakness]:
        """Generate themed synthetic weaknesses (CWE-like)."""
        weaknesses: list[Weakness] = []
        identifier = 2000
        for theme in _THEMES:
            count = self._scaled(theme.weakness_count)
            for index in range(count):
                identifier += 1
                weaknesses.append(self._weakness(theme, identifier, index))
        return weaknesses

    def _weakness(self, theme: _Theme, identifier: int, index: int) -> Weakness:
        rng = self._rng
        flaw = rng.choice(theme.flaws)
        subject = rng.choice(theme.subjects)
        keyword = theme.keywords[index % len(theme.keywords)]
        name = f"{flaw.capitalize()} in {subject}"
        description = (
            f"The product exhibits {flaw} in its {subject}, a weakness commonly "
            f"observed in {keyword}. An attacker who can reach the affected "
            f"interface may leverage it to compromise the component."
        )
        return Weakness(
            identifier=f"CWE-{identifier}",
            name=name,
            description=description,
            abstraction=Abstraction.DETAILED,
            platforms=(theme.key.replace("_", " "),) + theme.keywords[:1],
            consequences=theme.consequences,
        )

    def build_attack_patterns(self) -> list[AttackPattern]:
        """Generate themed synthetic attack patterns (CAPEC-like)."""
        patterns: list[AttackPattern] = []
        identifier = 1000
        for theme in _THEMES:
            count = self._scaled(theme.pattern_count)
            for index in range(count):
                identifier += 1
                patterns.append(self._pattern(theme, identifier, index))
        return patterns

    def _pattern(self, theme: _Theme, identifier: int, index: int) -> AttackPattern:
        rng = self._rng
        flaw = rng.choice(theme.flaws)
        subject = rng.choice(theme.subjects)
        keyword = theme.keywords[index % len(theme.keywords)]
        name = f"Exploiting {flaw} via {subject}"
        description = (
            f"An adversary targets {keyword}, abusing {flaw} exposed through the "
            f"{subject} to influence the behavior of the target system."
        )
        severity = rng.choice(("Medium", "High", "Very High"))
        likelihood = rng.choice(("Low", "Medium", "High"))
        return AttackPattern(
            identifier=f"CAPEC-{identifier}",
            name=name,
            description=description,
            abstraction=Abstraction.DETAILED,
            severity=severity,
            likelihood=likelihood,
            domains=(keyword,),
        )

    # .. top level ..........................................................

    def build(self, include_seed: bool = True) -> CorpusStore:
        """Build the full corpus (optionally merged with the curated seed)."""
        store = seed_corpus() if include_seed else CorpusStore()
        store.add_all(self.build_attack_patterns())
        store.add_all(self.build_weaknesses())
        store.add_all(self.build_vulnerabilities())
        return store


def build_corpus(scale: float = 1.0, seed: int = 7, include_background: bool = True) -> CorpusStore:
    """Convenience wrapper: curated seed plus synthetic expansion."""
    builder = SyntheticCorpusBuilder(
        scale=scale, seed=seed, include_background=include_background
    )
    return builder.build(include_seed=True)


#: Bump whenever the synthetic generator's *output* changes for identical
#: parameters (new profiles/themes/templates, tokenization-relevant text
#: edits, seed-corpus changes).  Saved workspace artifacts record it, so an
#: artifact generated by older synthesis code stops matching and is rebuilt
#: instead of silently serving a stale corpus.
SYNTHESIS_VERSION = 1


#: Identifier serial floor used by :func:`build_extension_corpus`; far above
#: anything :func:`build_corpus` emits at any scale, so extension batches
#: never collide with a base corpus (or with each other, given distinct
#: ``start_serial`` values).
EXTENSION_SERIAL_BASE = 900000


def build_extension_corpus(
    count: int = 100,
    seed: int = 99,
    start_serial: int = EXTENSION_SERIAL_BASE,
) -> CorpusStore:
    """A deterministic batch of *new* records for incremental ingest.

    Models the feed-update workload: mostly fresh CVEs across the existing
    platform populations, plus a few new weaknesses and attack patterns per
    theme -- the delta an analyst appends with ``cpsec workspace extend``
    instead of rebuilding the whole workspace.  Identifiers start at
    ``start_serial`` so the batch is disjoint from every
    :func:`build_corpus` output; two batches with different
    ``(seed, start_serial)`` pairs are disjoint from each other.
    """
    if count < 1:
        raise ValueError(f"count must be positive, got {count}")
    builder = SyntheticCorpusBuilder(scale=1.0, seed=seed)
    profiles = TABLE1_PROFILES + BACKGROUND_PROFILES
    vulnerability_count = max(1, round(count * 0.8))
    weakness_count = max(1, round(count * 0.12))
    pattern_count = max(1, count - vulnerability_count - weakness_count)
    store = CorpusStore()
    serial = start_serial
    for index in range(vulnerability_count):
        serial += 1
        store.add(builder._vulnerability(profiles[index % len(profiles)], serial))
    identifier = start_serial
    for index in range(weakness_count):
        identifier += 1
        store.add(builder._weakness(_THEMES[index % len(_THEMES)], identifier, index))
    identifier = start_serial + weakness_count
    for index in range(pattern_count):
        identifier += 1
        store.add(builder._pattern(_THEMES[index % len(_THEMES)], identifier, index))
    return store


def build_params(scale: float = 1.0, seed: int = 7, include_background: bool = True) -> dict:
    """The JSON-serializable generation parameters of :func:`build_corpus`.

    Workspace artifacts (:mod:`repro.workspace`) record these so that a saved
    artifact can be matched against the parameters a CLI run asks for --
    generation is deterministic, so equal parameters (including the
    :data:`SYNTHESIS_VERSION` of the generator itself) mean an equal corpus.
    """
    return {
        "scale": scale,
        "seed": seed,
        "include_background": include_background,
        "synthesis_version": SYNTHESIS_VERSION,
    }

"""Deterministic fault injection: named points, armed per-test or via env.

Production code calls :func:`trip` (or :func:`mangle` for torn-write
points) at a handful of named seams -- journal writes, artifact loads,
handler entry, operation dispatch.  Disarmed (the default, and the only
state production ever runs in unless ``CPSEC_FAULTS`` is set) a trip is a
single module-level boolean check, so the instrumented paths stay
byte-identical and effectively free.

Arming is explicit and bounded::

    faults.arm("journal.append", "error", arg=OSError("disk full"))
    faults.arm("op.simulate", "slow", arg=0.2, times=3)
    faults.reset()                      # disarm everything

or, for subprocess tests and the CI chaos-smoke job, via the
``CPSEC_FAULTS`` environment variable -- a comma-separated list of
``point:mode[:arg[:times]]`` entries parsed at import time::

    CPSEC_FAULTS="journal.append:oserror,handler.crash:exit:13:1"

Modes:

``error`` / ``oserror`` / ``runtimeerror``
    Raise an exception at the point.  In-process arming may pass any
    exception *instance* as ``arg``; env arming picks the type by mode
    name (``error`` defaults to :class:`OSError`).
``slow``
    ``time.sleep(arg)`` seconds (default 0.05) at the point, then proceed.
``exit``
    ``os._exit(arg)`` (default 13) -- an abrupt process death for the
    pre-forked crash-restart tests.  Never triggers outside an armed test.
``torn``
    Only meaningful at :func:`mangle` points: the caller receives a
    truncated copy of its text to write, simulating a write torn by a
    crash mid-line.

``times`` bounds how often a fault fires (default: unbounded); a tripped
budget leaves the point disarmed.  :func:`trips` reports how many times a
point actually fired, which is how tests assert a fault was exercised.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager

_MODES = frozenset({"error", "oserror", "runtimeerror", "slow", "exit", "torn"})

_lock = threading.Lock()
_faults: dict[str, "_Fault"] = {}
_trips: dict[str, int] = {}

#: Fast-path flag: every trip() begins with one read of this module global.
_armed = False


class _Fault:
    __slots__ = ("point", "mode", "arg", "remaining")

    def __init__(self, point: str, mode: str, arg, remaining: int | None) -> None:
        self.point = point
        self.mode = mode
        self.arg = arg
        self.remaining = remaining  # None = unbounded


def arm(point: str, mode: str = "error", *, arg=None, times: int | None = None) -> None:
    """Arm ``point`` with ``mode`` (see module docstring) for ``times`` trips."""
    if mode not in _MODES:
        raise ValueError(f"unknown fault mode {mode!r} (one of {sorted(_MODES)})")
    if times is not None and times < 1:
        raise ValueError(f"times must be >= 1, got {times}")
    global _armed
    with _lock:
        _faults[point] = _Fault(point, mode, arg, times)
        _armed = True


def disarm(point: str) -> None:
    """Disarm one point (no-op if it is not armed)."""
    global _armed
    with _lock:
        _faults.pop(point, None)
        if not _faults:
            _armed = False


def reset() -> None:
    """Disarm every point and zero the trip counters."""
    global _armed
    with _lock:
        _faults.clear()
        _trips.clear()
        _armed = False


def trips(point: str) -> int:
    """How many times ``point`` has fired since the last :func:`reset`."""
    with _lock:
        return _trips.get(point, 0)


def armed_points() -> list[str]:
    """The currently armed point names (for diagnostics)."""
    with _lock:
        return sorted(_faults)


@contextmanager
def armed(point: str, mode: str = "error", *, arg=None, times: int | None = None):
    """Context manager: arm ``point`` for the block, disarm on exit."""
    arm(point, mode, arg=arg, times=times)
    try:
        yield
    finally:
        disarm(point)


def _take(point: str) -> "_Fault | None":
    """Consume one trip budget for ``point`` if armed; else ``None``."""
    global _armed
    with _lock:
        fault = _faults.get(point)
        if fault is None:
            return None
        if fault.remaining is not None:
            fault.remaining -= 1
            if fault.remaining <= 0:
                del _faults[point]
                if not _faults:
                    _armed = False
        _trips[point] = _trips.get(point, 0) + 1
        return fault


def _exception_for(fault: _Fault) -> BaseException:
    if isinstance(fault.arg, BaseException):
        return fault.arg
    message = f"injected fault at {fault.point}"
    if fault.mode == "runtimeerror":
        return RuntimeError(message)
    return OSError(message)


def trip(point: str) -> None:
    """Fire ``point`` if armed: raise, sleep, or exit per its mode.

    Disarmed this is one module-global boolean check -- the byte-identity
    and overhead guarantees of every instrumented path rest on that.
    """
    if not _armed:
        return
    fault = _take(point)
    if fault is None:
        return
    if fault.mode == "slow":
        time.sleep(float(fault.arg) if fault.arg is not None else 0.05)
        return
    if fault.mode == "exit":
        os._exit(int(fault.arg) if fault.arg is not None else 13)
    raise _exception_for(fault)


def mangle(point: str, text: str) -> str | None:
    """A torn copy of ``text`` if ``point`` is armed with mode ``torn``.

    Returns ``None`` when disarmed (the caller writes ``text`` normally).
    The torn copy is the first half of the text with no trailing newline --
    exactly the shape a crash mid-``write`` leaves behind, which the
    journal's torn-tail healing must survive.
    """
    if not _armed:
        return None
    with _lock:
        fault = _faults.get(point)
        if fault is None or fault.mode != "torn":
            return None
    fault = _take(point)
    if fault is None:  # lost a race with a concurrent final trip
        return None
    return text[: max(1, len(text) // 2)]


def load_env(value: str | None = None) -> int:
    """Arm faults from ``CPSEC_FAULTS`` (or an explicit ``value``).

    Entries are ``point:mode[:arg[:times]]`` separated by commas; ``arg``
    may be empty to skip it while giving ``times``.  Returns the number of
    points armed.  Malformed entries raise :class:`ValueError` so a typo in
    a chaos run fails loudly instead of silently testing nothing.
    """
    raw = os.environ.get("CPSEC_FAULTS", "") if value is None else value
    count = 0
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) < 2 or len(parts) > 4:
            raise ValueError(f"malformed CPSEC_FAULTS entry {entry!r}")
        point, mode = parts[0], parts[1]
        arg: float | None = None
        if len(parts) >= 3 and parts[2] != "":
            arg = float(parts[2])
        times: int | None = None
        if len(parts) == 4 and parts[3] != "":
            times = int(parts[3])
        arm(point, mode, arg=arg, times=times)
        count += 1
    return count


# Subprocess chaos runs (and the pre-forked workers they fork) arm faults
# purely through the environment; importing the package is enough.
if os.environ.get("CPSEC_FAULTS"):
    load_env()

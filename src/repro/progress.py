"""Ambient progress reporting for long-running operations.

The job engine (:mod:`repro.jobs`) runs any typed operation in a background
thread and wants observable progress from the long paths -- association
scoring loops, what-if sweeps, simulation ticks -- **without** threading a
callback through every request dataclass (the wire protocol must stay
unchanged, and the synchronous fast path must stay byte-identical).

The mechanism is an ambient *sink* held in a :class:`contextvars.ContextVar`:

* a caller that wants progress wraps the operation in :func:`report_to`,
* instrumented loops fetch the sink **once** via :func:`progress_sink` and
  emit ``sink(phase, done, total)`` as work completes,
* with no sink installed (every synchronous caller), the cost is a single
  ``ContextVar.get()`` plus an ``is None`` branch per operation -- the hot
  loops themselves are untouched.

A sink may raise :class:`OperationCancelled` to abort the operation
cooperatively; the job engine uses this for mid-run cancellation.  Sinks run
on the thread executing the operation, so they must be cheap and must not
call back into the engine.

``ContextVar`` isolation means concurrent jobs on one service each see only
their own sink, and synchronous requests running alongside jobs see none.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from contextlib import contextmanager
from contextvars import ContextVar

#: A progress sink: ``sink(phase, done, total)`` with ``0 <= done <= total``.
ProgressSink = Callable[[str, int, int], None]

_SINK: ContextVar[ProgressSink | None] = ContextVar(
    "cpsec_progress_sink", default=None
)


class OperationCancelled(Exception):
    """Raised out of an instrumented loop to abort an operation mid-run.

    Progress sinks raise this (typically because a cancellation flag was
    set); the operation unwinds without producing a result and the caller
    that installed the sink decides what "cancelled" means.
    """


def progress_sink() -> ProgressSink | None:
    """The ambient sink for the current context, or ``None``.

    Instrumented code calls this once per operation, outside the hot loop,
    and skips all emission when it returns ``None``.
    """
    return _SINK.get()


@contextmanager
def report_to(sink: ProgressSink | None) -> Iterator[None]:
    """Install ``sink`` as the ambient progress sink for the ``with`` body.

    Installation is context-local: other threads (and other contexts on the
    same thread) are unaffected, and the previous sink is restored on exit
    even when the body raises.
    """
    token = _SINK.set(sink)
    try:
        yield
    finally:
        _SINK.reset(token)

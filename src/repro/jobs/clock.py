"""The time seam of the job engine.

Every time-dependent decision the scheduler makes -- submission timestamps,
queue-wait accounting, token-bucket refill -- goes through a :class:`Clock`
instead of calling :mod:`time` directly.  Production uses
:class:`SystemClock`; the test suite injects a fake clock
(``tests/helpers_jobs.py``) and *sets* time instead of sleeping through it,
which is what makes every scheduling behavior -- fairness shares, quota
refill, wait-time percentiles -- provable deterministically instead of being
asserted against wall-time races.

The seam deliberately covers only scheduling accounting.  Blocking
primitives (condition waits backing SSE streams and ``JobManager.wait``)
stay on real OS timeouts: a fake clock must never be able to hang a real
subscriber, and the deterministic tests never block -- they single-step the
scheduler instead (``JobManager.run_next``).
"""

from __future__ import annotations

import time


class Clock:
    """Monotonic + wall time, as an injectable pair."""

    def time(self) -> float:
        """Wall-clock seconds (journal and event timestamps)."""
        raise NotImplementedError

    def monotonic(self) -> float:
        """Monotonic seconds (wait accounting, quota refill)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The real thing; the default for every production :class:`JobManager`."""

    def time(self) -> float:
        return time.time()

    def monotonic(self) -> float:
        return time.monotonic()


#: Shared default instance -- the clock is stateless.
SYSTEM_CLOCK = SystemClock()

"""Persistent job store: an append-only JSON-lines journal.

A long-lived ``cpsec serve`` process must not lose job history across
restarts: an analyst who submitted a paper-scale sweep before a deploy wants
``GET /v1/jobs/<id>`` to answer afterwards.  The store is deliberately the
simplest durable structure that supports that -- one JSON object per line,
append-only, flushed per lifecycle event:

* ``submitted`` -- job id, operation, request payload, creation time,
* ``started`` -- the worker picked the job up,
* ``cancel_requested`` -- a cancel arrived (before or during the run),
* ``finished`` -- terminal state plus the result payload (succeeded) or the
  typed error (failed).

Per-tick *progress* events are **not** journalled: a paper-scale simulation
emits thousands and they are only meaningful to a live SSE subscriber; the
journal records what happened, not how fast.

Replay (:func:`read_journal`) tolerates a torn final line -- the one partial
write a crash can leave -- by skipping undecodable lines.  The
:class:`repro.jobs.manager.JobManager` replays the journal at construction
and re-marks jobs that were still queued/running when the process died as
``failed`` with code ``interrupted``, appending the matching ``finished``
lines so a second restart replays to the same state.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

#: Journal line format version; bump when the line layout changes.
JOURNAL_VERSION = 1


class JobJournal:
    """Append-only JSON-lines writer for job lifecycle events.

    Lines are flushed on every append, so at most the line being written when
    the process dies can be lost (and replay skips it).  Appends are
    lock-protected: worker threads finish jobs concurrently.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        # Heal a torn tail: a crash mid-write can leave a final line without
        # its newline; appending straight after it would merge two lines and
        # corrupt the *new* entry too.  Terminating the torn line sacrifices
        # only the bytes the crash already lost.
        if self.path.stat().st_size > 0:
            with open(self.path, "rb") as probe:
                probe.seek(-1, 2)
                if probe.read(1) != b"\n":
                    self._handle.write("\n")
                    self._handle.flush()

    def append(self, kind: str, **fields) -> None:
        """Write one lifecycle line (a no-op after :meth:`close`)."""
        line = json.dumps(
            {"v": JOURNAL_VERSION, "kind": kind, **fields},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


def read_journal(path: str | Path) -> list[dict]:
    """Every decodable lifecycle entry of a journal file, in order.

    A missing file is an empty history (first boot).  Undecodable or
    wrong-shape lines -- the torn tail a crash can leave, or foreign junk --
    are skipped rather than fatal: losing one line must not take the whole
    history down with it.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("v") == JOURNAL_VERSION:
                entries.append(entry)
    return entries

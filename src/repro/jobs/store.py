"""Persistent job store: an append-only JSON-lines journal.

A long-lived ``cpsec serve`` process must not lose job history across
restarts: an analyst who submitted a paper-scale sweep before a deploy wants
``GET /v1/jobs/<id>`` to answer afterwards.  The store is deliberately the
simplest durable structure that supports that -- one JSON object per line,
append-only, flushed per lifecycle event:

* ``submitted`` -- job id, operation, request payload, creation time,
* ``started`` -- the worker picked the job up,
* ``cancel_requested`` -- a cancel arrived (before or during the run),
* ``finished`` -- terminal state plus the result payload (succeeded) or the
  typed error (failed).

One non-lifecycle line rides along: a ``quota`` snapshot of the per-client
token buckets, appended at shutdown so a restart refills each client for
the *downtime only* instead of handing everyone a fresh burst.  Journals
without one (pre-quota format) replay with full buckets.

Per-tick *progress* events are **not** journalled: a paper-scale simulation
emits thousands and they are only meaningful to a live SSE subscriber; the
journal records what happened, not how fast.

Replay (:func:`read_journal`) tolerates a torn final line -- the one partial
write a crash can leave -- by skipping undecodable lines.  The
:class:`repro.jobs.manager.JobManager` replays the journal at construction
and re-marks jobs that were still queued/running when the process died as
``failed`` with code ``interrupted``, appending the matching ``finished``
lines so a second restart replays to the same state.

Two mechanisms keep the journal from growing forever on a long-lived server:

* **result spill** -- a ``finished`` line whose result payload exceeds
  :data:`MAX_INLINE_RESULT_BYTES` stores the result in a side file under
  ``<journal>.d/`` and journals only a ``result_spill`` reference, so one
  paper-scale export cannot bloat every future replay,
* **compaction** (:meth:`JobJournal.compact`) -- rewrites the journal
  keeping every line of non-terminal jobs plus the lines of the last *N*
  terminal jobs (and deletes the spill files of the dropped ones).  The
  manager triggers it at startup and every ``journal_keep`` finishes.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from repro import faults
from repro.ioutils import atomic_write_text

#: Journal line format version; bump when the line layout changes.
JOURNAL_VERSION = 1

#: Largest result payload journalled inline; larger ones spill to a side
#: file.  64 KiB keeps replay proportional to job *count*, not result size.
MAX_INLINE_RESULT_BYTES = 64 * 1024


class JobJournal:
    """Append-only JSON-lines writer for job lifecycle events.

    Lines are flushed on every append, so at most the line being written when
    the process dies can be lost (and replay skips it).  Appends are
    lock-protected: worker threads finish jobs concurrently.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        max_inline_result_bytes: int = MAX_INLINE_RESULT_BYTES,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_inline_result_bytes = max_inline_result_bytes
        self.compactions = 0
        self.spilled_results = 0
        #: Total bytes appended by this process (newlines included); the
        #: cpsec_journal_bytes_written_total counter on /metrics.
        self.bytes_written = 0
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")
        # Heal a torn tail: a crash mid-write can leave a final line without
        # its newline; appending straight after it would merge two lines and
        # corrupt the *new* entry too.  Terminating the torn line sacrifices
        # only the bytes the crash already lost.
        if self.path.stat().st_size > 0:
            with open(self.path, "rb") as probe:
                probe.seek(-1, 2)
                if probe.read(1) != b"\n":
                    self._handle.write("\n")
                    self._handle.flush()

    @property
    def spill_dir(self) -> Path:
        """Directory holding spilled (oversized) result payloads."""
        return self.path.with_name(self.path.name + ".d")

    def append(self, kind: str, **fields) -> None:
        """Write one lifecycle line (a no-op after :meth:`close`)."""
        line = json.dumps(
            {"v": JOURNAL_VERSION, "kind": kind, **fields},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            self._append_locked(line)

    def _append_locked(self, line: str) -> None:
        if self._handle.closed:
            return
        faults.trip("journal.append")
        torn = faults.mangle("journal.torn", line)
        if torn is not None:
            # Simulate a write torn by a crash mid-line: the truncated
            # prefix lands (no newline), then the write "fails".  Replay
            # heals the torn tail; the manager degrades on the error.
            self._handle.write(torn)
            self._handle.flush()
            raise OSError(f"injected torn write at {self.path}")
        self._handle.write(line + "\n")
        self._handle.flush()
        self.bytes_written += len(line.encode("utf-8")) + 1

    def append_finished(
        self, *, job_id: str, state: str, finished_at, result, error
    ) -> None:
        """Journal a terminal transition, spilling an oversized result.

        The result payload is serialized once; when it exceeds the inline
        bound it lands (atomically) in ``<journal>.d/<job_id>.result.json``
        and the journal line carries a ``result_spill`` reference instead.
        Replay resolves the reference through :func:`load_spilled_result`.
        """
        fields: dict = {
            "job_id": job_id,
            "state": state,
            "finished_at": finished_at,
            "error": error,
        }
        spill_name = None
        if result is not None:
            encoded = json.dumps(result, sort_keys=True, separators=(",", ":"))
            if len(encoded) > self.max_inline_result_bytes:
                spill_name = f"{job_id}.result.json"
                self.spill_dir.mkdir(parents=True, exist_ok=True)
                atomic_write_text(self.spill_dir / spill_name, encoded)
        if spill_name is not None:
            fields["result"] = None
            fields["result_spill"] = spill_name
        else:
            fields["result"] = result
        line = json.dumps(
            {"v": JOURNAL_VERSION, "kind": "finished", **fields},
            sort_keys=True,
            separators=(",", ":"),
        )
        with self._lock:
            if spill_name is not None:
                self.spilled_results += 1
            self._append_locked(line)

    def compact(self, keep_terminal: int, terminal_states) -> int:
        """Rewrite the journal keeping only the last ``keep_terminal`` jobs.

        Every line of a job that never reached a terminal state is kept (the
        manager needs them to mark interruptions after a restart); terminal
        jobs beyond the bound -- oldest first, by the order their terminal
        lines were written -- are dropped wholesale, together with their
        spilled result files.  The rewrite is atomic (write-temp-then-
        rename) and the append handle reopens on the compacted file, so a
        crash mid-compaction leaves either the old or the new journal, never
        a torn one.  Returns the number of jobs dropped.
        """
        if keep_terminal < 0:
            raise ValueError(f"keep_terminal must be >= 0, got {keep_terminal}")
        with self._lock:
            if self._handle.closed:
                return 0
            faults.trip("journal.compact")
            self._handle.flush()
            entries = read_journal(self.path)
            terminal_order: list[str] = []
            terminal_seen: set[str] = set()
            for entry in entries:
                if (
                    entry.get("kind") == "finished"
                    and entry.get("state") in terminal_states
                ):
                    job_id = entry.get("job_id")
                    if isinstance(job_id, str) and job_id not in terminal_seen:
                        terminal_seen.add(job_id)
                        terminal_order.append(job_id)
            dropped = set(terminal_order[: max(0, len(terminal_order) - keep_terminal)])
            # Quota snapshots carry no job_id; each shutdown appends one, so
            # compaction keeps only the newest (the only one replay uses).
            quota_indexes = [
                index
                for index, entry in enumerate(entries)
                if entry.get("kind") == "quota"
            ]
            stale_quota = set(quota_indexes[:-1])
            if not dropped and not stale_quota:
                return 0
            kept_lines = [
                json.dumps(entry, sort_keys=True, separators=(",", ":"))
                for index, entry in enumerate(entries)
                if entry.get("job_id") not in dropped and index not in stale_quota
            ]
            self._handle.close()
            atomic_write_text(
                self.path, "".join(line + "\n" for line in kept_lines)
            )
            self._handle = open(self.path, "a", encoding="utf-8")
            self.compactions += 1
            for job_id in dropped:
                try:
                    os.unlink(self.spill_dir / f"{job_id}.result.json")
                except OSError:
                    pass  # never spilled, or already gone
        return len(dropped)

    def close(self) -> None:
        """Flush and close the underlying file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()


def read_journal(path: str | Path) -> list[dict]:
    """Every decodable lifecycle entry of a journal file, in order.

    A missing file is an empty history (first boot).  Undecodable or
    wrong-shape lines -- the torn tail a crash can leave, or foreign junk --
    are skipped rather than fatal: losing one line must not take the whole
    history down with it.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict) and entry.get("v") == JOURNAL_VERSION:
                entries.append(entry)
    return entries


def load_spilled_result(journal_path: str | Path, entry: dict) -> dict | None:
    """Resolve a ``finished`` entry's result, following a spill reference.

    Returns the inline result when present, the side file's payload for a
    ``result_spill`` reference, or ``None`` when the side file is gone or
    unreadable (the job record then replays without its result -- losing one
    oversized payload must not take the history down).
    """
    result = entry.get("result")
    if isinstance(result, dict):
        return result
    spill_name = entry.get("result_spill")
    if not isinstance(spill_name, str) or "/" in spill_name or "\\" in spill_name:
        return None
    path = Path(journal_path)
    spill_path = path.with_name(path.name + ".d") / spill_name
    try:
        payload = json.loads(spill_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None

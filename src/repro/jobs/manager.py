"""The async job engine: typed operations as scheduled, observable jobs.

:class:`JobManager` wraps an :class:`~repro.service.service.AnalysisService`
(or anything with the same method-per-operation surface) and runs any of the
typed operations on a **scheduled worker pool**, turning a blocking request
into a :class:`JobRecord` the caller can poll, stream, and cancel:

* states walk ``queued -> running -> succeeded | failed | cancelled``
  (:data:`JOB_STATES`); every transition appends a monotonic
  :class:`JobEvent`,
* dispatch order is a policy, not arrival order: priority classes
  (``interactive`` beats ``batch``, aged so batch never fully starves),
  per-workspace weighted fair queueing, and per-client token-bucket quotas
  all live in :mod:`repro.jobs.scheduler`; the manager owns the locking and
  the lifecycle around them,
* jobs can depend on other jobs (``depends_on=[job_ids]``): a job waits --
  queued, but invisible to the scheduler -- until every parent succeeds.  A
  parent that fails or is cancelled cascade-cancels its unstarted dependents
  (typed ``dependency_unsatisfied`` error), so nothing waits forever.  The
  ``merge`` pseudo-operation joins a fan-out: it depends on N jobs and
  succeeds with their results keyed by label, deterministically,
* progress events flow from the instrumented long paths (association
  scoring, sweep batches, simulation ticks) through the ambient sink in
  :mod:`repro.progress` -- the manager installs a per-job sink around the
  operation call, so concurrent jobs never see each other's progress,
* cancellation is cooperative: ``cancel()`` flips a flag that the progress
  sink checks, raising :class:`~repro.progress.OperationCancelled` out of
  the operation at the next progress point.  A still-queued job is cancelled
  before it ever starts,
* the lifecycle is journalled (:mod:`repro.jobs.store`), so a restarted
  server replays its history; jobs interrupted by the restart come back as
  ``failed`` with code ``interrupted``.  Journals written before the
  scheduler existed replay cleanly -- the priority/weight/dependency fields
  are additive, defaulted on read,
* submissions beyond the queue bound fail fast with a typed 429
  (``queue_full``), quota-exhausted clients get a typed 429
  (``quota_exhausted``, with ``retry_after_s``) **before** anything touches
  the journal, and a draining manager refuses new work with a 503.

Time enters through the :class:`~repro.jobs.clock.Clock` seam: all
scheduling accounting (timestamps, queue-wait percentiles, quota refill)
reads the injected clock, so the deterministic tests drive a fake clock and
single-step dispatch via :meth:`JobManager.run_next` (construct with
``start_workers=False``) instead of sleeping through wall time.

Determinism: a job runs the *same* service method the synchronous endpoint
runs, on the same warm engines and response cache, so its final ``result``
payload is byte-identical to the synchronous response for the same request
(the job determinism tests pin this for every operation, and the dependency
tests pin that a fan-out + ``merge`` equals the synchronous sweep).
"""

from __future__ import annotations

import heapq
import json
import math
import random
import sys
import threading
import uuid
from collections import deque
from dataclasses import dataclass

from repro.jobs.clock import SYSTEM_CLOCK, Clock
from repro.jobs.scheduler import (
    DEFAULT_FLOW,
    JOB_PRIORITIES,
    FairScheduler,
    TokenBucket,
    default_priority,
)
from repro.jobs.store import JobJournal, load_spilled_result, read_journal
from repro.obs.trace import current_trace_id, new_trace_id, valid_trace_id
from repro.obs.trace import trace as obs_trace
from repro.progress import OperationCancelled, report_to
from repro.service.protocol import (
    JOB_STATES,
    SCHEMA_VERSION,
    TERMINAL_JOB_STATES,
    ServiceError,
    parse_request,
)

#: The protocol owns the state tables; the jobs package re-exports them.
TERMINAL_STATES = TERMINAL_JOB_STATES

#: The dependency-join pseudo-operation: not a service method, handled by
#: the manager itself.  A ``merge`` job depends on N parents and succeeds
#: with ``{"results": {label: parent_result}}`` -- the deterministic join of
#: a fan-out (``whatif sweep --async`` uses it).
MERGE_OPERATION = "merge"

#: Queue-wait samples kept per priority class for the /healthz percentiles.
WAIT_SAMPLE_WINDOW = 512

#: Bound on distinct per-client token buckets kept in memory.
MAX_QUOTA_CLIENTS = 1024

#: Upper bound on ``submit(..., max_retries=N)``.
MAX_RETRIES_BOUND = 20

#: Default base backoff for retried jobs (seconds); doubles per attempt.
DEFAULT_BACKOFF_S = 0.5

#: Cap on a single computed retry delay (seconds).
MAX_RETRY_DELAY_S = 300.0


def _retryable(error: dict) -> bool:
    """A job error worth retrying: server-side/transient (5xx), never 4xx.

    A 4xx is the *request's* fault and will fail identically on every
    attempt; a 5xx (internal crash, workspace load failure, injected
    transient fault) is the kind of error the next attempt can outlive.
    """
    status = error.get("status")
    return isinstance(status, int) and status >= 500


def _retry_delay(job: "JobRecord") -> float:
    """Jittered exponential backoff for ``job``'s current attempt.

    ``backoff_s * 2**(attempt-1)``, scaled by a jitter factor in
    ``[0.5, 1.5)`` that is **deterministic per (job_id, attempt)** -- so a
    fake-clock test can compute the exact same delay the manager did --
    while still de-correlating real fleets (distinct job ids draw distinct
    factors).  Capped at :data:`MAX_RETRY_DELAY_S`.
    """
    base = job.backoff_s * (2.0 ** (job.attempt - 1))
    jitter = 0.5 + random.Random(f"{job.job_id}:{job.attempt}").random()
    return min(MAX_RETRY_DELAY_S, base * jitter)


@dataclass(frozen=True)
class JobEvent:
    """One observable moment of a job: a state change or a progress step.

    ``seq`` is job-local, starts at 0, and increases by exactly 1 per event
    -- the monotonic spine an SSE client resumes from (``?after=seq``).
    """

    seq: int
    kind: str  # "state" | "progress"
    timestamp: float
    state: str | None = None
    phase: str | None = None
    done: int | None = None
    total: int | None = None

    def to_dict(self) -> dict:
        """The JSON form streamed to SSE subscribers."""
        payload: dict = {
            "seq": self.seq,
            "kind": self.kind,
            "timestamp": self.timestamp,
        }
        if self.kind == "state":
            payload["state"] = self.state
        else:
            payload["phase"] = self.phase
            payload["done"] = self.done
            payload["total"] = self.total
        return payload


class JobRecord:
    """One submitted job: identity, scheduling, lifecycle, and outcome.

    Mutable, but only ever mutated by its :class:`JobManager` under the
    manager's condition lock; callers read consistent copies via
    :meth:`to_dict`.
    """

    __slots__ = (
        "job_id",
        "operation",
        "payload",
        "state",
        "created_at",
        "started_at",
        "finished_at",
        "result",
        "error",
        "events",
        "cancel_requested",
        "replayed",
        "priority",
        "weight",
        "deps",
        "client",
        "flow",
        "waiting_on",
        "created_mono",
        "wait_s",
        "request_obj",
        "trace_id",
        "max_retries",
        "backoff_s",
        "attempt",
        "retry_at",
        "dead",
    )

    def __init__(
        self,
        job_id: str,
        operation: str,
        payload: dict,
        created_at: float,
        *,
        priority: str | None = None,
        weight: float = 1.0,
        deps: list[str] | None = None,
        client: str | None = None,
        created_mono: float = 0.0,
        trace_id: str | None = None,
        max_retries: int = 0,
        backoff_s: float = DEFAULT_BACKOFF_S,
    ):
        self.job_id = job_id
        self.operation = operation
        self.payload = payload
        self.state = "queued"
        self.created_at = created_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: dict | None = None
        self.error: dict | None = None
        self.events: list[JobEvent] = []
        self.cancel_requested = False
        self.replayed = False
        self.priority = priority if priority in JOB_PRIORITIES else default_priority(operation)
        self.weight = weight
        self.deps: list[str] = list(deps or [])
        self.client = client
        workspace = payload.get("workspace")
        self.flow = workspace if isinstance(workspace, str) and workspace else DEFAULT_FLOW
        self.waiting_on: set[str] = set()
        self.created_mono = created_mono
        self.wait_s: float | None = None
        self.request_obj = None  # parsed typed request; never serialized
        #: Trace identity: the submitting request's ambient trace id, or a
        #: fresh one -- re-entered around the job's execution so engine
        #: spans and the journal line correlate with the HTTP submission.
        self.trace_id = trace_id if trace_id else new_trace_id()
        #: Retry policy: how many re-runs a retryable (5xx) failure earns,
        #: and the base backoff the exponential delay grows from.
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        #: Retries consumed so far (0 on the first run).
        self.attempt = 0
        #: Monotonic instant the next retry becomes dispatchable, while the
        #: job waits out a backoff; ``None`` otherwise.
        self.retry_at: float | None = None
        #: Dead-letter flag: retries were configured and ALL attempts (or a
        #: non-retryable failure) still left the job failed.
        self.dead = False

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a state it never leaves."""
        return self.state in TERMINAL_STATES

    def to_dict(self, *, include_result: bool = True) -> dict:
        """The JSON form served by ``GET /v1/jobs/<id>``.

        ``include_result=False`` (the list endpoint) drops the potentially
        large ``result`` payload but keeps everything else.
        """
        progress = None
        for event in reversed(self.events):
            if event.kind == "progress":
                progress = event.to_dict()
                break
        payload: dict = {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "operation": self.operation,
            "request": self.payload,
            "state": self.state,
            "priority": self.priority,
            "weight": self.weight,
            "depends_on": list(self.deps),
            "client": self.client,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wait_s": self.wait_s,
            "cancel_requested": self.cancel_requested,
            "replayed": self.replayed,
            "event_count": len(self.events),
            "progress": progress,
            "error": self.error,
            "trace_id": self.trace_id,
            "max_retries": self.max_retries,
            "attempt": self.attempt,
            "dead_letter": self.dead,
        }
        if include_result:
            payload["result"] = self.result
        return payload


def _percentile(samples, q: float) -> float | None:
    """Nearest-rank percentile of a sample window; None when empty."""
    if not samples:
        return None
    data = sorted(samples)
    index = min(len(data) - 1, max(0, math.ceil(q * len(data)) - 1))
    return data[index]


class JobManager:
    """Runs typed operations as background jobs under a scheduling policy.

    Parameters
    ----------
    service:
        The operations backend; each job calls ``getattr(service,
        operation)(request)`` exactly like a synchronous frontend would.
    workers:
        Worker-pool size: how many jobs run concurrently.
    max_queued:
        Bound on jobs *waiting* for a worker (dependency-blocked jobs
        included).  Submissions past the bound fail with a typed 429
        ``queue_full`` error -- backpressure instead of an unbounded queue
        on a shared server.
    journal_path:
        Optional JSON-lines journal (see :mod:`repro.jobs.store`).  Replayed
        at construction; ``None`` keeps history in memory only.
    max_history:
        Bound on *terminal* jobs kept in memory (oldest pruned first;
        queued/running jobs are never pruned, and neither is a terminal job
        a pending dependent still needs).  ``None`` disables pruning.
    journal_keep:
        Retention bound on *terminal* jobs in the on-disk journal
        (``cpsec serve --journal-keep``); see :meth:`JobJournal.compact`.
        ``None`` keeps everything.
    policy:
        ``"fair"`` (the default: priorities + weighted fair queueing) or
        ``"fifo"`` (arrival order -- the benchmark baseline).
    starvation_limit:
        After this many consecutive interactive dispatches a ready batch
        job runs (anti-starvation aging).
    quota:
        Optional ``(rate, burst)`` per-client token-bucket submission quota
        (``cpsec serve --quota``).  Exhausted clients get a typed 429
        ``quota_exhausted`` *before* the submission touches the journal.
        ``None`` disables quotas.
    clock:
        The time source for all scheduling accounting (timestamps, wait
        percentiles, quota refill).  Tests inject a fake clock; blocking
        waits (``wait``, ``events_since``) stay on real OS time regardless.
    start_workers:
        ``False`` skips spawning worker threads; jobs then run only via
        :meth:`run_next` -- the single-stepped mode the deterministic
        scheduler tests drive.
    """

    def __init__(
        self,
        service,
        *,
        workers: int = 2,
        max_queued: int = 32,
        journal_path=None,
        max_history: int | None = 256,
        journal_keep: int | None = None,
        policy: str = "fair",
        starvation_limit: int = 8,
        quota: tuple[float, float] | None = None,
        clock: Clock = SYSTEM_CLOCK,
        start_workers: bool = True,
        metrics=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queued < 1:
            raise ValueError(f"max_queued must be positive, got {max_queued}")
        if max_history is not None and max_history < 1:
            raise ValueError(f"max_history must be positive, got {max_history}")
        if journal_keep is not None and journal_keep < 1:
            raise ValueError(f"journal_keep must be positive, got {journal_keep}")
        self._service = service
        self.workers = workers
        self.max_queued = max_queued
        self.max_history = max_history
        self.journal_keep = journal_keep
        self._clock = clock
        self._finished_since_compact = 0
        self._jobs: dict[str, JobRecord] = {}
        self._dependents: dict[str, list[JobRecord]] = {}
        self._cond = threading.Condition()
        self._draining = False
        self._stop = False
        self._scheduler = FairScheduler(
            policy=policy, starvation_limit=starvation_limit
        )
        self._quota = None
        if quota is not None:
            rate, burst = quota
            if rate <= 0 or burst < 1:
                raise ValueError(
                    f"quota needs rate > 0 and burst >= 1, got {quota!r}"
                )
            self._quota = (float(rate), float(burst))
        self._buckets: dict[str, TokenBucket] = {}
        self._quota_rejections = 0
        self._wait_samples = {
            cls: deque(maxlen=WAIT_SAMPLE_WINDOW) for cls in JOB_PRIORITIES
        }
        #: Jobs waiting out a retry backoff: a min-heap of
        #: ``(retry_at_mono, tiebreak, job)``.  Entries for jobs that turn
        #: terminal while waiting (cancel) are skipped lazily on promotion.
        self._retries: list[tuple[float, int, JobRecord]] = []
        self._retry_seq = 0
        self._retries_total = 0
        #: Degraded journal mode: a journal OSError disables journalling
        #: (serving with in-memory history beats crashing a worker thread)
        #: and is reported via stats()/healthz and the metrics below.
        self._journal_degraded = False
        self._journal_errors = 0
        self._journal_error: str | None = None
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` for the
        #: event-driven job metrics (state-snapshot gauges are collected at
        #: scrape time from :meth:`stats` instead).
        self._m_submitted = self._m_finished = self._m_wait = None
        self._m_quota_rejections = None
        if metrics is not None:
            self._m_submitted = metrics.counter(
                "cpsec_jobs_submitted_total", "Jobs accepted by submit()."
            )
            self._m_finished = metrics.counter(
                "cpsec_jobs_finished_total",
                "Jobs that reached a terminal state.",
                ("state",),
            )
            self._m_wait = metrics.histogram(
                "cpsec_job_wait_seconds",
                "Queue wait from submission to dispatch.",
                ("priority",),
            )
            self._m_quota_rejections = metrics.counter(
                "cpsec_quota_rejections_total",
                "Job submissions rejected by the per-client token-bucket quota.",
            )
            self._m_retries = metrics.counter(
                "cpsec_jobs_retries_total",
                "Failed job attempts re-queued for a retry.",
            )
            self._m_journal_errors = metrics.counter(
                "cpsec_journal_errors_total",
                "Journal I/O errors that flipped the manager to degraded "
                "(journal-disabled) mode.",
            )
        else:
            self._m_retries = self._m_journal_errors = None
        self._journal: JobJournal | None = None
        if journal_path is not None:
            self._replay(journal_path)
            self._journal = JobJournal(journal_path)
            self._journal_interrupted()
            if journal_keep is not None:
                try:
                    self._journal.compact(journal_keep, TERMINAL_STATES)
                except OSError as error:
                    self._degrade_journal(error)
            with self._cond:
                self._prune_locked()
        self._threads: list[threading.Thread] = []
        if start_workers:
            for index in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"cpsec-job-{index}",
                    daemon=False,
                )
                thread.start()
                self._threads.append(thread)

    # -- journal replay --------------------------------------------------------

    def _replay(self, journal_path) -> None:
        """Rebuild job history from the journal, before accepting new work.

        The scheduling fields (``priority``/``weight``/``depends_on``/
        ``client``) are additive: a journal written by the pre-scheduler
        format simply lacks them, and replay defaults each one exactly as a
        field-less submission would.
        """
        self._interrupted: list[JobRecord] = []
        self._journal_path = journal_path
        quota_snapshot = None
        for entry in read_journal(journal_path):
            job_id = entry.get("job_id")
            kind = entry.get("kind")
            if kind == "quota":
                # Per-client token-bucket snapshot written at shutdown; the
                # last one wins (compaction keeps only that one anyway).
                clients = entry.get("clients")
                wall = entry.get("wall")
                if isinstance(clients, dict) and isinstance(wall, (int, float)):
                    quota_snapshot = (float(wall), clients)
                continue
            if kind == "submitted":
                payload = entry.get("request")
                operation = entry.get("operation")
                if not isinstance(job_id, str) or not isinstance(operation, str):
                    continue
                priority = entry.get("priority")
                try:
                    weight = float(entry.get("weight", 1.0))
                except (TypeError, ValueError):
                    weight = 1.0
                if not (0 < weight <= 1000) or weight != weight:
                    weight = 1.0
                raw_deps = entry.get("depends_on")
                deps = (
                    [dep for dep in raw_deps if isinstance(dep, str)]
                    if isinstance(raw_deps, list)
                    else []
                )
                client = entry.get("client")
                max_retries = entry.get("max_retries")
                if (
                    isinstance(max_retries, bool)
                    or not isinstance(max_retries, int)
                    or not 0 <= max_retries <= MAX_RETRIES_BOUND
                ):
                    max_retries = 0
                try:
                    backoff_s = float(entry.get("backoff_s", DEFAULT_BACKOFF_S))
                except (TypeError, ValueError):
                    backoff_s = DEFAULT_BACKOFF_S
                if not (0 <= backoff_s <= 3600) or backoff_s != backoff_s:
                    backoff_s = DEFAULT_BACKOFF_S
                job = JobRecord(
                    job_id,
                    operation,
                    payload if isinstance(payload, dict) else {},
                    float(entry.get("created_at") or 0.0),
                    priority=priority if priority in JOB_PRIORITIES else None,
                    weight=weight,
                    deps=deps,
                    client=client if isinstance(client, str) else None,
                    created_mono=self._clock.monotonic(),
                    trace_id=valid_trace_id(entry.get("trace_id")),
                    max_retries=max_retries,
                    backoff_s=backoff_s,
                )
                job.replayed = True
                self._jobs[job_id] = job
                continue
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if kind == "started":
                job.state = "running"
                job.started_at = entry.get("started_at")
            elif kind == "cancel_requested":
                job.cancel_requested = True
            elif kind == "retry":
                # A failed attempt was re-queued for a retry; the job was
                # waiting (or running again) when the process died, so it
                # replays as non-terminal and becomes ``interrupted`` below.
                attempt = entry.get("attempt")
                if isinstance(attempt, int) and attempt > 0:
                    job.attempt = attempt
                job.state = "queued"
                job.started_at = None
            elif kind == "finished":
                state = entry.get("state")
                if state in TERMINAL_STATES:
                    job.state = state
                    job.finished_at = entry.get("finished_at")
                    error = entry.get("error")
                    # Inline result, or a spilled-result side file reference.
                    job.result = load_spilled_result(journal_path, entry)
                    job.error = error if isinstance(error, dict) else None
                    # Same rule as the live path: a job that had retries
                    # configured and still failed is dead-lettered.
                    job.dead = state == "failed" and job.max_retries > 0
        for job in self._jobs.values():
            if not job.terminal:
                # The previous process died with this job queued/running; the
                # work is gone, so the honest terminal state is a failure.
                job.state = "failed"
                job.finished_at = None
                job.error = {
                    "code": "interrupted",
                    "message": "server restarted while the job was pending",
                }
                self._interrupted.append(job)
            # Replayed jobs get a single synthetic event so an SSE subscriber
            # sees the terminal state immediately instead of hanging.
            job.events = [
                JobEvent(
                    seq=0,
                    kind="state",
                    timestamp=self._clock.time(),
                    state=job.state,
                )
            ]
        self._restore_quota(quota_snapshot)

    def _restore_quota(self, snapshot) -> None:
        """Rebuild per-client token buckets from a journalled snapshot.

        Buckets refill for the wall-clock downtime (``rate`` tokens/s, capped
        at ``burst``) -- a restart neither resets a heavy client's quota nor
        penalizes one for the deploy.  Journals with no snapshot (pre-quota
        format, or quota newly enabled) replay with full buckets, exactly as
        before.
        """
        if self._quota is None or snapshot is None:
            return
        wall, clients = snapshot
        rate, burst = self._quota
        elapsed = max(0.0, self._clock.time() - wall)
        now_mono = self._clock.monotonic()
        for client_key, recorded in clients.items():
            if not isinstance(client_key, str) or isinstance(recorded, bool):
                continue
            if not isinstance(recorded, (int, float)):
                continue
            if len(self._buckets) >= MAX_QUOTA_CLIENTS:
                break
            bucket = TokenBucket(rate, burst, now_mono)
            bucket.tokens = min(
                burst, max(0.0, float(recorded)) + elapsed * rate
            )
            self._buckets[client_key] = bucket

    def _journal_quota(self) -> None:
        """Snapshot per-client token buckets into the journal (at shutdown).

        Tokens are refreshed to *now* first, so the line pairs with its
        ``wall`` timestamp and replay only has to add the downtime refill.
        """
        if self._journal is None or self._quota is None or not self._buckets:
            return
        now_mono = self._clock.monotonic()
        clients = {}
        for client_key, bucket in self._buckets.items():
            elapsed = max(0.0, now_mono - bucket.updated)
            clients[client_key] = round(
                min(bucket.burst, bucket.tokens + elapsed * bucket.rate), 6
            )
        self._journal_append("quota", wall=self._clock.time(), clients=clients)

    def _journal_interrupted(self) -> None:
        """Append ``finished`` lines for jobs the restart interrupted."""
        for job in self._interrupted:
            if self._journal_degraded:
                break
            try:
                self._journal.append_finished(
                    job_id=job.job_id,
                    state=job.state,
                    finished_at=job.finished_at,
                    result=None,
                    error=job.error,
                )
            except OSError as error:
                self._degrade_journal(error)
        self._interrupted = []

    # -- journal degradation ---------------------------------------------------

    def _journal_append(self, kind: str, **fields) -> None:
        """Append one journal line, degrading (not crashing) on I/O errors.

        Every journal write a worker or submitter thread makes goes through
        here (or through the same ``try``/``except`` in
        :meth:`_journal_finish`): an ``OSError`` out of the journal -- disk
        full, volume gone, injected fault -- must never escape into the
        thread that happened to trigger it.
        """
        if self._journal is None or self._journal_degraded:
            return
        try:
            self._journal.append(kind, **fields)
        except OSError as error:
            self._degrade_journal(error)

    def _degrade_journal(self, error: OSError) -> None:
        """Flip to degraded journal-disabled mode after a journal I/O error.

        The manager keeps serving with in-memory history only; the flag (and
        the error) surface in :meth:`stats` -- and from there ``/healthz``
        and ``cpsec_journal_errors_total`` -- so operators see the
        durability loss instead of a crashed worker thread.
        """
        with self._cond:
            first = not self._journal_degraded
            self._journal_degraded = True
            self._journal_errors += 1
            self._journal_error = f"{type(error).__name__}: {error}"
        if self._m_journal_errors is not None:
            self._m_journal_errors.inc()
        if first and self._journal is not None:
            try:
                self._journal.close()
            except OSError:
                pass
            print(
                json.dumps(
                    {
                        "event": "journal_degraded",
                        "journal": str(self._journal.path),
                        "error": self._journal_error,
                    },
                    sort_keys=True,
                ),
                file=sys.stderr,
                flush=True,
            )

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        operation: str,
        payload: dict | None = None,
        *,
        priority: str | None = None,
        weight: float | None = None,
        depends_on: list[str] | None = None,
        client: str | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
    ) -> JobRecord:
        """Queue one typed operation as a background job.

        The payload is parsed into the typed request **now**, so a malformed
        submission fails fast with the protocol's usual typed error instead
        of surfacing minutes later as a failed job.  Scheduling knobs:

        * ``priority`` -- one of :data:`JOB_PRIORITIES`; defaults per
          operation (:func:`~repro.jobs.scheduler.default_priority`),
        * ``weight`` -- the submitting workspace's fair-share weight
          (``0 < weight <= 1000``, default 1.0),
        * ``depends_on`` -- job ids that must *succeed* before this job
          runs; a failed or cancelled parent cancels this job instead,
        * ``client`` -- quota identity; unnamed clients share the
          ``anonymous`` bucket,
        * ``max_retries`` -- how many times a *retryable* (5xx) failure is
          re-queued with jittered exponential backoff before the job is
          dead-lettered (default 0: fail on the first error, exactly as
          before),
        * ``backoff_s`` -- base backoff seconds for the first retry
          (doubles per attempt, jittered, capped; default
          :data:`DEFAULT_BACKOFF_S`).

        The :data:`MERGE_OPERATION` pseudo-operation requires
        ``depends_on`` and accepts only an optional ``labels`` payload
        mapping parent job ids to result keys.
        """
        payload = dict(payload or {})
        deps = self._validate_deps(depends_on)
        if operation == MERGE_OPERATION:
            request = None
            self._validate_merge(payload, deps)
        else:
            request = parse_request(operation, payload)  # typed 4xx on bad input
        priority = self._validate_priority(operation, priority)
        weight = self._validate_weight(weight)
        max_retries, backoff_s = self._validate_retries(max_retries, backoff_s)
        client_key = client if isinstance(client, str) and client else "anonymous"
        journal_immediate_cancel = False
        with self._cond:
            if self._draining:
                raise ServiceError(
                    "server is draining and refuses new job submissions",
                    code="shutting_down",
                    status=503,
                )
            unknown = [dep for dep in deps if dep not in self._jobs]
            if unknown:
                raise ServiceError(
                    f"unknown dependency job(s): {', '.join(unknown)}",
                    code="unknown_dependency",
                    status=400,
                    details={"unknown": unknown},
                )
            queued = sum(1 for job in self._jobs.values() if job.state == "queued")
            if queued >= self.max_queued:
                raise ServiceError(
                    f"job queue is full ({queued} queued, bound {self.max_queued})",
                    code="queue_full",
                    status=429,
                    details={"max_queued": self.max_queued},
                )
            # The quota gate is the LAST check before the record exists, so a
            # rejected submission consumes neither memory nor journal space.
            if self._quota is not None:
                retry_after = self._bucket_for(client_key).try_take(
                    self._clock.monotonic()
                )
                if retry_after > 0:
                    self._quota_rejections += 1
                    if self._m_quota_rejections is not None:
                        self._m_quota_rejections.inc()
                    raise ServiceError(
                        f"submission quota exhausted for client {client_key!r}",
                        code="quota_exhausted",
                        status=429,
                        details={
                            "client": client_key,
                            "retry_after_s": round(retry_after, 3),
                            "rate": self._quota[0],
                            "burst": self._quota[1],
                        },
                    )
            job = JobRecord(
                f"job-{uuid.uuid4().hex[:12]}",
                operation,
                payload,
                self._clock.time(),
                priority=priority,
                weight=weight,
                deps=deps,
                client=client if isinstance(client, str) and client else None,
                created_mono=self._clock.monotonic(),
                # The submitting request's ambient trace id (the HTTP layer
                # installs it from X-Cpsec-Trace-Id); generated when absent.
                trace_id=current_trace_id(),
                max_retries=max_retries,
                backoff_s=backoff_s,
            )
            job.request_obj = request
            if self._m_submitted is not None:
                self._m_submitted.inc()
            failed_parent: JobRecord | None = None
            for dep_id in deps:
                dep = self._jobs[dep_id]
                if dep.state == "succeeded":
                    continue
                if dep.terminal:
                    failed_parent = failed_parent or dep
                else:
                    job.waiting_on.add(dep_id)
                    self._dependents.setdefault(dep_id, []).append(job)
            self._jobs[job.job_id] = job
            self._append_event(job, "state", state="queued")
            cascade: list[JobRecord] = []
            if failed_parent is not None:
                # A dead parent means this job can never run; cancelling it
                # now is the same promise cascade-cancellation makes later.
                job.cancel_requested = True
                cascade = self._finish_locked(
                    job,
                    "cancelled",
                    error=_dependency_error(failed_parent),
                )
                journal_immediate_cancel = True
            elif not job.waiting_on:
                self._scheduler.add(job)
            self._prune_locked()
        if self._journal is not None:
            entry = {
                "job_id": job.job_id,
                "operation": operation,
                "request": payload,
                "created_at": job.created_at,
                "priority": job.priority,
                "weight": job.weight,
                "trace_id": job.trace_id,
            }
            if job.deps:
                entry["depends_on"] = job.deps
            if job.client is not None:
                entry["client"] = job.client
            if job.max_retries:
                entry["max_retries"] = job.max_retries
                entry["backoff_s"] = job.backoff_s
            self._journal_append("submitted", **entry)
        if journal_immediate_cancel:
            self._journal_finish(job)
        self._journal_cascade(cascade)
        return job

    def _validate_priority(self, operation: str, priority: str | None) -> str:
        if priority is None:
            return default_priority(operation)
        if priority not in JOB_PRIORITIES:
            raise ServiceError(
                f"unknown priority {priority!r}",
                code="invalid_priority",
                status=400,
                details={"choices": list(JOB_PRIORITIES)},
            )
        return priority

    def _validate_weight(self, weight) -> float:
        if weight is None:
            return 1.0
        try:
            value = float(weight)
        except (TypeError, ValueError):
            value = float("nan")
        if not (0 < value <= 1000) or value != value:
            raise ServiceError(
                f"weight must be a number in (0, 1000], got {weight!r}",
                code="invalid_weight",
                status=400,
            )
        return value

    def _validate_retries(self, max_retries, backoff_s) -> tuple[int, float]:
        if max_retries is None:
            retries = 0
        else:
            if (
                isinstance(max_retries, bool)
                or not isinstance(max_retries, int)
                or not 0 <= max_retries <= MAX_RETRIES_BOUND
            ):
                raise ServiceError(
                    f"max_retries must be an integer in [0, "
                    f"{MAX_RETRIES_BOUND}], got {max_retries!r}",
                    code="invalid_max_retries",
                    status=400,
                    details={"max": MAX_RETRIES_BOUND},
                )
            retries = max_retries
        if backoff_s is None:
            return retries, DEFAULT_BACKOFF_S
        try:
            backoff = float(backoff_s)
        except (TypeError, ValueError):
            backoff = float("nan")
        if isinstance(backoff_s, bool) or not (0 <= backoff <= 3600):
            raise ServiceError(
                f"backoff_s must be a number in [0, 3600], got {backoff_s!r}",
                code="invalid_backoff",
                status=400,
            )
        return retries, backoff

    def _validate_deps(self, depends_on) -> list[str]:
        if depends_on is None:
            return []
        if not isinstance(depends_on, (list, tuple)) or any(
            not isinstance(dep, str) for dep in depends_on
        ):
            raise ServiceError(
                "depends_on must be a list of job ids",
                code="invalid_dependencies",
                status=400,
            )
        deps: list[str] = []
        for dep in depends_on:
            if dep not in deps:
                deps.append(dep)
        return deps

    def _validate_merge(self, payload: dict, deps: list[str]) -> None:
        if not deps:
            raise ServiceError(
                "merge requires at least one depends_on job",
                code="invalid_dependencies",
                status=400,
            )
        unknown_fields = sorted(set(payload) - {"labels"})
        if unknown_fields:
            raise ServiceError(
                f"unknown fields for merge: {', '.join(unknown_fields)}",
                code="unknown_fields",
                status=400,
                details={"unknown": unknown_fields},
            )
        labels = payload.get("labels", {})
        if not isinstance(labels, dict) or any(
            not isinstance(key, str) or not isinstance(value, str)
            for key, value in labels.items()
        ):
            raise ServiceError(
                "merge labels must map job ids to string labels",
                code="invalid_labels",
                status=400,
            )

    def _bucket_for(self, client_key: str) -> TokenBucket:
        """This client's token bucket, creating (bounded) on first use."""
        bucket = self._buckets.get(client_key)
        if bucket is None:
            if len(self._buckets) >= MAX_QUOTA_CLIENTS:
                stalest = min(
                    self._buckets, key=lambda key: self._buckets[key].updated
                )
                del self._buckets[stalest]
            rate, burst = self._quota
            bucket = self._buckets[client_key] = TokenBucket(
                rate, burst, self._clock.monotonic()
            )
        return bucket

    # -- execution -------------------------------------------------------------

    def _worker_loop(self) -> None:
        """One worker thread: pop ready jobs from the scheduler, run them.

        The wait is bounded by the next pending retry's due time (if any),
        so a job waiting out its backoff is promoted without needing a new
        submission to wake a worker.
        """
        while True:
            with self._cond:
                job = None
                while job is None:
                    if self._stop:
                        return
                    job = self._pop_ready_locked()
                    if job is None:
                        self._cond.wait(self._next_retry_wait_locked())
            self._run_job(job)

    def run_next(self) -> JobRecord | None:
        """Pop one ready job and run it on the calling thread.

        The single-stepped dispatch mode: with ``start_workers=False`` the
        deterministic tests call this to advance the scheduler one decision
        at a time.  Returns the job that ran, or ``None`` when nothing was
        ready.
        """
        with self._cond:
            job = self._pop_ready_locked()
        if job is None:
            return None
        self._run_job(job)
        return job

    def _pop_ready_locked(self) -> JobRecord | None:
        """Dispatch one job: pop from the scheduler and mark it running.

        Pop and the running transition share one critical section, so
        ``cancel()`` -- which finishes still-queued jobs under the same lock
        -- can never race a worker into running a cancelled job.
        """
        self._promote_retries_locked()
        while True:
            job = self._scheduler.pop_next()
            if job is None:
                return None
            if job.terminal:  # defensive: cancel() removes queued jobs
                continue
            job.state = "running"
            job.started_at = self._clock.time()
            job.wait_s = max(0.0, self._clock.monotonic() - job.created_mono)
            self._wait_samples[job.priority].append(job.wait_s)
            if self._m_wait is not None:
                self._m_wait.labels(job.priority).observe(job.wait_s)
            self._append_event(job, "state", state="running")
            return job

    def _promote_retries_locked(self) -> None:
        """Move retry-waiting jobs whose backoff elapsed into the scheduler.

        Caller holds the lock.  Heap entries whose job turned terminal while
        waiting (a cancel) or left the queued state are skipped lazily.
        """
        now = self._clock.monotonic()
        while self._retries and self._retries[0][0] <= now:
            _, _, job = heapq.heappop(self._retries)
            if job.terminal or job.state != "queued" or job.retry_at is None:
                continue
            job.retry_at = None
            self._scheduler.add(job)

    def _next_retry_wait_locked(self) -> float | None:
        """Seconds until the earliest pending retry is due; None when none.

        Caller holds the lock.  Floored so a worker never busy-spins on a
        clock that advances more coarsely than it wakes.
        """
        if not self._retries:
            return None
        return max(0.01, self._retries[0][0] - self._clock.monotonic())

    def _run_job(self, job: JobRecord) -> None:
        """Execute one already-running job (called off-lock)."""
        self._journal_append(
            "started", job_id=job.job_id, started_at=job.started_at
        )
        if job.operation == MERGE_OPERATION:
            self._run_merge(job)
            return

        def sink(phase: str, done: int, total: int) -> None:
            self._report_progress(job, phase, done, total)

        cascade: list[JobRecord] = []
        try:
            # Re-enter the submission's trace around the operation: engine
            # spans and anything the service logs correlate with the job.
            with obs_trace(job.trace_id), report_to(sink):
                response = getattr(self._service, job.operation)(job.request_obj)
            result = response.to_dict()
        except OperationCancelled:
            with self._cond:
                cascade = self._finish_locked(job, "cancelled")
        except ServiceError as error:
            cascade = self._fail_or_retry(
                job,
                {
                    "code": error.code,
                    "message": error.message,
                    "status": error.status,
                    "details": error.details,
                },
            )
        except Exception as error:  # noqa: BLE001 - worker crash boundary
            cascade = self._fail_or_retry(
                job,
                {
                    "code": "internal_error",
                    "message": f"{type(error).__name__}: {error}",
                    "status": 500,
                },
            )
        else:
            with self._cond:
                cascade = self._finish_locked(job, "succeeded", result=result)
        self._journal_finish(job)
        self._journal_cascade(cascade)

    def _fail_or_retry(self, job: JobRecord, error: dict) -> list[JobRecord]:
        """Re-queue a retryable failed attempt, or finish the job failed.

        A retry earns a jittered exponential backoff (:func:`_retry_delay`,
        on the injected clock, so fake-clock tests single-step it) and a
        journalled ``retry`` line -- additive, old journals replay fine.
        Non-retryable errors, exhausted budgets, cancel requests, and a
        draining manager all fall through to the normal failure, which is
        dead-lettered when retries were configured.
        """
        retry_delay = None
        with self._cond:
            if (
                job.attempt < job.max_retries
                and not job.cancel_requested
                and not self._draining
                and _retryable(error)
            ):
                job.attempt += 1
                retry_delay = _retry_delay(job)
                job.retry_at = self._clock.monotonic() + retry_delay
                job.started_at = None
                job.error = error  # the last attempt's error, while waiting
                job.state = "queued"
                self._retry_seq += 1
                heapq.heappush(
                    self._retries, (job.retry_at, self._retry_seq, job)
                )
                self._retries_total += 1
                if self._m_retries is not None:
                    self._m_retries.inc()
                self._append_event(job, "state", state="queued")
                cascade: list[JobRecord] = []
            else:
                job.dead = job.max_retries > 0
                cascade = self._finish_locked(job, "failed", error=error)
        if retry_delay is not None:
            self._journal_append(
                "retry",
                job_id=job.job_id,
                attempt=job.attempt,
                delay_s=round(retry_delay, 6),
                error=error,
            )
        return cascade

    def _run_merge(self, job: JobRecord) -> None:
        """Join a fan-out: succeed with every parent's result, keyed by label.

        Parents are read in submission order, so the merged payload is
        deterministic -- byte-identical across runs for the same fan-out.
        """
        cascade: list[JobRecord] = []
        with self._cond:
            if job.cancel_requested:
                cascade = self._finish_locked(job, "cancelled")
            else:
                labels = job.payload.get("labels") or {}
                results: dict = {}
                missing: list[str] = []
                for dep_id in job.deps:
                    dep = self._jobs.get(dep_id)
                    if dep is None or dep.result is None:
                        missing.append(dep_id)
                    else:
                        results[labels.get(dep_id, dep_id)] = dep.result
                if missing:
                    cascade = self._finish_locked(
                        job,
                        "failed",
                        error={
                            "code": "dependency_result_missing",
                            "message": (
                                "merge dependencies lost their results: "
                                + ", ".join(missing)
                            ),
                            "status": 500,
                            "details": {"missing": missing},
                        },
                    )
                else:
                    cascade = self._finish_locked(
                        job,
                        "succeeded",
                        result={
                            "schema_version": SCHEMA_VERSION,
                            "results": results,
                        },
                    )
        self._journal_finish(job)
        self._journal_cascade(cascade)

    def _report_progress(self, job: JobRecord, phase: str, done: int, total: int) -> None:
        with self._cond:
            if job.cancel_requested:
                raise OperationCancelled(job.job_id)
            self._append_event(job, "progress", phase=phase, done=done, total=total)

    def _append_event(self, job: JobRecord, kind: str, **fields) -> None:
        """Append one event and wake every waiter.  Caller holds the lock.

        Invariant: ``seq`` equals the event's list index (events are only
        ever appended, under this lock), which is what lets readers slice
        instead of scanning.
        """
        job.events.append(
            JobEvent(
                seq=len(job.events),
                kind=kind,
                timestamp=self._clock.time(),
                **fields,
            )
        )
        self._cond.notify_all()

    def _prune_locked(self) -> None:
        """Drop the oldest terminal jobs beyond the history bound.

        Caller holds the lock.  Dict insertion order is creation order, so
        iterating forwards prunes oldest-first; queued/running jobs are
        skipped, and so is any terminal job a pending dependent still
        references (a ``merge`` must be able to read its parents' results
        when it finally runs).
        """
        if self.max_history is None:
            return
        excess = len(self._jobs) - self.max_history
        if excess <= 0:
            return
        pinned: set[str] = set()
        for job in self._jobs.values():
            if not job.terminal and job.deps:
                pinned.update(job.deps)
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()
            if job.terminal and job_id not in pinned
        ]:
            if excess <= 0:
                break
            del self._jobs[job_id]
            excess -= 1

    def _finish_locked(
        self, job: JobRecord, state: str, *, result=None, error=None
    ) -> list[JobRecord]:
        """Finish one job and resolve its dependents.  Caller holds the lock.

        Returns the dependents this finish *cascade-cancelled* (recursively);
        the caller journals them after releasing the lock.
        """
        cascade: list[JobRecord] = []
        self._finish_one_locked(job, state, result=result, error=error, cascade=cascade)
        # Finishing may restore the history bound submit could not (only
        # terminal jobs are prunable).
        self._prune_locked()
        return cascade

    def _finish_one_locked(
        self, job: JobRecord, state: str, *, result=None, error=None, cascade
    ) -> None:
        # Outcome fields land before the state flip: the HTTP handlers read
        # records without taking this lock, and a reader that observes a
        # terminal state must never see the pre-outcome result/error.
        job.finished_at = self._clock.time()
        job.result = result
        job.error = error
        job.state = state
        if self._m_finished is not None:
            self._m_finished.labels(state).inc()
        self._append_event(job, "state", state=state)
        for child in self._dependents.pop(job.job_id, []):
            if child.terminal:
                continue
            child.waiting_on.discard(job.job_id)
            if state == "succeeded":
                if not child.waiting_on and child.state == "queued":
                    # Last parent done: the child becomes schedulable now
                    # (the _append_event above already woke the workers).
                    self._scheduler.add(child)
            else:
                # A failed/cancelled parent can never satisfy the child:
                # cancel it now so nothing sits "queued" forever.
                child.cancel_requested = True
                self._scheduler.remove(child)
                cascade.append(child)
                self._finish_one_locked(
                    child,
                    "cancelled",
                    error=_dependency_error(job),
                    cascade=cascade,
                )

    def _journal_finish(self, job: JobRecord) -> None:
        if self._journal is None or self._journal_degraded or not job.terminal:
            return
        try:
            self._journal.append_finished(
                job_id=job.job_id,
                state=job.state,
                finished_at=job.finished_at,
                result=job.result,
                error=job.error,
            )
        except OSError as error:
            self._degrade_journal(error)
            return
        if self.journal_keep is None:
            return
        with self._cond:
            self._finished_since_compact += 1
            if self._finished_since_compact < self.journal_keep:
                return
            self._finished_since_compact = 0
        # Outside the condition lock: compaction reads and rewrites the
        # whole file under the journal's own lock, and must not stall
        # submitters/streamers waiting on the manager condition.
        try:
            self._journal.compact(self.journal_keep, TERMINAL_STATES)
        except OSError as error:
            self._degrade_journal(error)

    def _journal_cascade(self, cascade: list[JobRecord]) -> None:
        """Journal the terminal lines of cascade-cancelled dependents."""
        for child in cascade:
            self._journal_finish(child)

    # -- observation -----------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """The job, or a typed 404."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"unknown job {job_id!r}",
                code="unknown_job",
                status=404,
            )
        return job

    def jobs(self) -> list[JobRecord]:
        """Every known job, oldest first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def events_since(
        self, job_id: str, after: int = -1, timeout: float | None = None
    ) -> tuple[list[JobEvent], bool]:
        """Events with ``seq > after``, blocking up to ``timeout`` for news.

        Returns ``(events, done)`` where ``done`` means the job is terminal
        *and* every event has been handed out -- the signal for an SSE stream
        to close.  A timeout with no news returns ``([], False)`` so the
        streamer can emit a keep-alive and wait again.

        The deadline is real OS time on purpose: a fake scheduling clock
        must never be able to hang a live subscriber.
        """
        job = self.get(job_id)
        deadline = (
            None if timeout is None else SYSTEM_CLOCK.monotonic() + timeout
        )
        with self._cond:
            while True:
                # seq == list index (see _append_event), so this is a slice,
                # not a scan -- O(new events) per wake even on long streams.
                events = job.events[max(after + 1, 0):]
                if events:
                    done = job.terminal and events[-1].seq == job.events[-1].seq
                    return events, done
                if job.terminal:
                    return [], True
                remaining = (
                    None
                    if deadline is None
                    else deadline - SYSTEM_CLOCK.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return [], False
                self._cond.wait(remaining)

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job is terminal (or the timeout passes)."""
        job = self.get(job_id)
        with self._cond:
            self._cond.wait_for(lambda: job.terminal, timeout)
        return job

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; idempotent on terminal jobs.

        A queued job is cancelled immediately (and removed from the
        scheduler); a running job is cancelled cooperatively at its next
        progress point.  Cancelling a job with unstarted dependents
        cascade-cancels them too -- a dependency chain never leaves a child
        ``queued`` forever.
        """
        job = self.get(job_id)
        journal_kinds: list[str] = []
        cascade: list[JobRecord] = []
        with self._cond:
            if not job.terminal and not job.cancel_requested:
                job.cancel_requested = True
                journal_kinds.append("cancel_requested")
                if job.state == "queued":
                    self._scheduler.remove(job)
                    cascade = self._finish_locked(job, "cancelled")
                    journal_kinds.append("finished")
        if "cancel_requested" in journal_kinds:
            self._journal_append("cancel_requested", job_id=job.job_id)
        if "finished" in journal_kinds:
            self._journal_finish(job)
        self._journal_cascade(cascade)
        return job

    # -- shutdown --------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the manager refuses new submissions."""
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new submissions from now on (running jobs continue)."""
        with self._cond:
            self._draining = True

    def drain(self, timeout: float | None = None) -> bool:
        """Refuse new work and wait for in-flight jobs; True when all done."""
        self.begin_drain()
        with self._cond:
            if not self._threads:
                # Single-stepped mode: nothing will ever run pending jobs,
                # so waiting for them is waiting for the timeout.
                return all(job.terminal for job in self._jobs.values())
            return self._cond.wait_for(
                lambda: all(job.terminal for job in self._jobs.values()), timeout
            )

    def close(self, timeout: float | None = 10.0) -> bool:
        """Drain (bounded), stop the workers, and flush/close the journal.

        Jobs still pending when the drain timeout elapses are cancelled
        cooperatively -- the worker threads are non-daemon, so a job left
        running would keep the whole process alive at interpreter exit.
        Returns whether the drain completed without cancelling anything.
        """
        drained = self.drain(timeout)
        if not drained:
            for job in self.jobs():
                if not job.terminal:
                    self.cancel(job.job_id)
            # Give the cancels a moment to land so the journal records the
            # terminal states before it closes.
            with self._cond:
                self._cond.wait_for(
                    lambda: all(job.terminal for job in self._jobs.values()), 10.0
                )
        with self._cond:
            self._stop = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._journal is not None:
            self._journal_quota()
            try:
                self._journal.close()
            except OSError as error:
                self._degrade_journal(error)
        return drained

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Queue/state/scheduling counters for the ``/healthz`` payload."""
        with self._cond:
            by_state = {state: 0 for state in JOB_STATES}
            by_priority = {
                cls: {"queued": 0, "running": 0} for cls in JOB_PRIORITIES
            }
            waiting_on_dependencies = 0
            retry_pending = 0
            dead_letter: list[str] = []
            for job in self._jobs.values():
                by_state[job.state] += 1
                if job.state in by_priority[job.priority]:
                    by_priority[job.priority][job.state] += 1
                if job.state == "queued" and job.waiting_on:
                    waiting_on_dependencies += 1
                if job.state == "queued" and job.retry_at is not None:
                    retry_pending += 1
                if job.dead:
                    dead_letter.append(job.job_id)
            dead_letter.sort()
            wait_s = {
                cls: {
                    "count": len(samples),
                    "p50": _percentile(samples, 0.50),
                    "p95": _percentile(samples, 0.95),
                }
                for cls, samples in self._wait_samples.items()
            }
            quota = None
            if self._quota is not None:
                quota = {
                    "rate": self._quota[0],
                    "burst": self._quota[1],
                    "clients": len(self._buckets),
                    "rejections": self._quota_rejections,
                }
            return {
                "workers": self.workers,
                "max_queued": self.max_queued,
                "max_history": self.max_history,
                "journal_keep": self.journal_keep,
                "draining": self._draining,
                "journal": str(self._journal.path) if self._journal else None,
                "journal_compactions": (
                    self._journal.compactions if self._journal else 0
                ),
                "spilled_results": (
                    self._journal.spilled_results if self._journal else 0
                ),
                "journal_bytes": (
                    self._journal.bytes_written if self._journal else 0
                ),
                "total": len(self._jobs),
                "by_state": by_state,
                "policy": self._scheduler.policy,
                "by_priority": by_priority,
                "waiting_on_dependencies": waiting_on_dependencies,
                "wait_s": wait_s,
                "scheduler": self._scheduler.info(),
                "quota": quota,
                "retries": {
                    "total": self._retries_total,
                    "pending": retry_pending,
                },
                "dead_letter": {
                    "count": len(dead_letter),
                    "job_ids": dead_letter[:20],
                },
                "journal_degraded": self._journal_degraded,
                "journal_errors": self._journal_errors,
                "journal_error": self._journal_error,
            }


def _dependency_error(parent: JobRecord) -> dict:
    """The typed error a cascade-cancelled dependent carries."""
    return {
        "code": "dependency_unsatisfied",
        "message": (
            f"dependency {parent.job_id} finished as {parent.state}"
        ),
        "status": 409,
        "details": {
            "dependency": parent.job_id,
            "dependency_state": parent.state,
        },
    }

"""The async job engine: typed operations as observable background jobs.

:class:`JobManager` wraps an :class:`~repro.service.service.AnalysisService`
(or anything with the same method-per-operation surface) and runs any of the
typed operations on a **bounded worker pool**, turning a blocking request
into a :class:`JobRecord` the caller can poll, stream, and cancel:

* states walk ``queued -> running -> succeeded | failed | cancelled``
  (:data:`JOB_STATES`); every transition appends a monotonic
  :class:`JobEvent`,
* progress events flow from the instrumented long paths (association
  scoring, sweep batches, simulation ticks) through the ambient sink in
  :mod:`repro.progress` -- the manager installs a per-job sink around the
  operation call, so concurrent jobs never see each other's progress,
* cancellation is cooperative: ``cancel()`` flips a flag that the progress
  sink checks, raising :class:`~repro.progress.OperationCancelled` out of
  the operation at the next progress point.  A still-queued job is cancelled
  before it ever starts,
* the lifecycle is journalled (:mod:`repro.jobs.store`), so a restarted
  server replays its history; jobs interrupted by the restart come back as
  ``failed`` with code ``interrupted``,
* submissions beyond the queue bound fail fast with a typed 429
  :class:`~repro.service.protocol.ServiceError` (``queue_full``), and a
  draining manager (graceful shutdown) refuses new work with a 503.

Determinism: a job runs the *same* service method the synchronous endpoint
runs, on the same warm engines and response cache, so its final ``result``
payload is byte-identical to the synchronous response for the same request
(the job determinism tests pin this for every operation).
"""

from __future__ import annotations

import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.jobs.store import JobJournal, load_spilled_result, read_journal
from repro.progress import OperationCancelled, report_to
from repro.service.protocol import (
    JOB_STATES,
    SCHEMA_VERSION,
    TERMINAL_JOB_STATES,
    ServiceError,
    parse_request,
)

#: The protocol owns the state tables; the jobs package re-exports them.
TERMINAL_STATES = TERMINAL_JOB_STATES


@dataclass(frozen=True)
class JobEvent:
    """One observable moment of a job: a state change or a progress step.

    ``seq`` is job-local, starts at 0, and increases by exactly 1 per event
    -- the monotonic spine an SSE client resumes from (``?after=seq``).
    """

    seq: int
    kind: str  # "state" | "progress"
    timestamp: float
    state: str | None = None
    phase: str | None = None
    done: int | None = None
    total: int | None = None

    def to_dict(self) -> dict:
        """The JSON form streamed to SSE subscribers."""
        payload: dict = {
            "seq": self.seq,
            "kind": self.kind,
            "timestamp": self.timestamp,
        }
        if self.kind == "state":
            payload["state"] = self.state
        else:
            payload["phase"] = self.phase
            payload["done"] = self.done
            payload["total"] = self.total
        return payload


class JobRecord:
    """One submitted job: identity, lifecycle, events, and outcome.

    Mutable, but only ever mutated by its :class:`JobManager` under the
    manager's condition lock; callers read consistent copies via
    :meth:`to_dict`.
    """

    __slots__ = (
        "job_id",
        "operation",
        "payload",
        "state",
        "created_at",
        "started_at",
        "finished_at",
        "result",
        "error",
        "events",
        "cancel_requested",
        "replayed",
    )

    def __init__(self, job_id: str, operation: str, payload: dict, created_at: float):
        self.job_id = job_id
        self.operation = operation
        self.payload = payload
        self.state = "queued"
        self.created_at = created_at
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.result: dict | None = None
        self.error: dict | None = None
        self.events: list[JobEvent] = []
        self.cancel_requested = False
        self.replayed = False

    @property
    def terminal(self) -> bool:
        """Whether the job has reached a state it never leaves."""
        return self.state in TERMINAL_STATES

    def to_dict(self, *, include_result: bool = True) -> dict:
        """The JSON form served by ``GET /v1/jobs/<id>``.

        ``include_result=False`` (the list endpoint) drops the potentially
        large ``result`` payload but keeps everything else.
        """
        progress = None
        for event in reversed(self.events):
            if event.kind == "progress":
                progress = event.to_dict()
                break
        payload: dict = {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "operation": self.operation,
            "request": self.payload,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cancel_requested": self.cancel_requested,
            "replayed": self.replayed,
            "event_count": len(self.events),
            "progress": progress,
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobManager:
    """Runs typed operations as background jobs on a bounded worker pool.

    Parameters
    ----------
    service:
        The operations backend; each job calls ``getattr(service,
        operation)(request)`` exactly like a synchronous frontend would.
    workers:
        Worker-pool size: how many jobs run concurrently.
    max_queued:
        Bound on jobs *waiting* for a worker.  Submissions past the bound
        fail with a typed 429 ``queue_full`` error -- backpressure instead of
        an unbounded queue on a shared server.
    journal_path:
        Optional JSON-lines journal (see :mod:`repro.jobs.store`).  Replayed
        at construction; ``None`` keeps history in memory only.
    max_history:
        Bound on *terminal* jobs kept in memory (oldest pruned first;
        queued/running jobs are never pruned).  Terminal records carry full
        result payloads, so an unbounded map would grow a long-lived server
        forever.  ``None`` disables pruning.
    journal_keep:
        Retention bound on *terminal* jobs in the on-disk journal
        (``cpsec serve --journal-keep``).  The journal is compacted -- old
        terminal jobs' lines and spilled results dropped, atomically -- at
        startup and again every ``journal_keep`` finishes, so steady-state
        journal size is bounded at roughly twice the retention window.
        ``None`` keeps everything (the pre-rotation behavior).  Oversized
        result payloads spill to ``<journal>.d/`` side files either way.
    """

    def __init__(
        self,
        service,
        *,
        workers: int = 2,
        max_queued: int = 32,
        journal_path=None,
        max_history: int | None = 256,
        journal_keep: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queued < 1:
            raise ValueError(f"max_queued must be positive, got {max_queued}")
        if max_history is not None and max_history < 1:
            raise ValueError(f"max_history must be positive, got {max_history}")
        if journal_keep is not None and journal_keep < 1:
            raise ValueError(f"journal_keep must be positive, got {journal_keep}")
        self._service = service
        self.workers = workers
        self.max_queued = max_queued
        self.max_history = max_history
        self.journal_keep = journal_keep
        self._finished_since_compact = 0
        self._jobs: dict[str, JobRecord] = {}
        self._cond = threading.Condition()
        self._draining = False
        self._journal: JobJournal | None = None
        if journal_path is not None:
            self._replay(journal_path)
            self._journal = JobJournal(journal_path)
            self._journal_interrupted()
            if journal_keep is not None:
                self._journal.compact(journal_keep, TERMINAL_STATES)
            with self._cond:
                self._prune_locked()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cpsec-job"
        )

    # -- journal replay --------------------------------------------------------

    def _replay(self, journal_path) -> None:
        """Rebuild job history from the journal, before accepting new work."""
        self._interrupted: list[JobRecord] = []
        self._journal_path = journal_path
        for entry in read_journal(journal_path):
            job_id = entry.get("job_id")
            kind = entry.get("kind")
            if kind == "submitted":
                payload = entry.get("request")
                operation = entry.get("operation")
                if not isinstance(job_id, str) or not isinstance(operation, str):
                    continue
                job = JobRecord(
                    job_id,
                    operation,
                    payload if isinstance(payload, dict) else {},
                    float(entry.get("created_at") or 0.0),
                )
                job.replayed = True
                self._jobs[job_id] = job
                continue
            job = self._jobs.get(job_id)
            if job is None:
                continue
            if kind == "started":
                job.state = "running"
                job.started_at = entry.get("started_at")
            elif kind == "cancel_requested":
                job.cancel_requested = True
            elif kind == "finished":
                state = entry.get("state")
                if state in TERMINAL_STATES:
                    job.state = state
                    job.finished_at = entry.get("finished_at")
                    error = entry.get("error")
                    # Inline result, or a spilled-result side file reference.
                    job.result = load_spilled_result(journal_path, entry)
                    job.error = error if isinstance(error, dict) else None
        for job in self._jobs.values():
            if not job.terminal:
                # The previous process died with this job queued/running; the
                # work is gone, so the honest terminal state is a failure.
                job.state = "failed"
                job.finished_at = None
                job.error = {
                    "code": "interrupted",
                    "message": "server restarted while the job was pending",
                }
                self._interrupted.append(job)
            # Replayed jobs get a single synthetic event so an SSE subscriber
            # sees the terminal state immediately instead of hanging.
            job.events = [
                JobEvent(
                    seq=0, kind="state", timestamp=time.time(), state=job.state
                )
            ]

    def _journal_interrupted(self) -> None:
        """Append ``finished`` lines for jobs the restart interrupted."""
        for job in self._interrupted:
            self._journal.append_finished(
                job_id=job.job_id,
                state=job.state,
                finished_at=job.finished_at,
                result=None,
                error=job.error,
            )
        self._interrupted = []

    # -- submission ------------------------------------------------------------

    def submit(self, operation: str, payload: dict | None = None) -> JobRecord:
        """Queue one typed operation as a background job.

        The payload is parsed into the typed request **now**, so a malformed
        submission fails fast with the protocol's usual typed error instead
        of surfacing minutes later as a failed job.
        """
        payload = dict(payload or {})
        request = parse_request(operation, payload)  # typed 4xx on bad input
        with self._cond:
            if self._draining:
                raise ServiceError(
                    "server is draining and refuses new job submissions",
                    code="shutting_down",
                    status=503,
                )
            queued = sum(1 for job in self._jobs.values() if job.state == "queued")
            if queued >= self.max_queued:
                raise ServiceError(
                    f"job queue is full ({queued} queued, bound {self.max_queued})",
                    code="queue_full",
                    status=429,
                    details={"max_queued": self.max_queued},
                )
            job = JobRecord(
                f"job-{uuid.uuid4().hex[:12]}", operation, payload, time.time()
            )
            self._jobs[job.job_id] = job
            self._append_event(job, "state", state="queued")
            self._prune_locked()
        if self._journal is not None:
            self._journal.append(
                "submitted",
                job_id=job.job_id,
                operation=operation,
                request=payload,
                created_at=job.created_at,
            )
        self._pool.submit(self._execute, job, request)
        return job

    # -- execution -------------------------------------------------------------

    def _execute(self, job: JobRecord, request) -> None:
        with self._cond:
            # cancel() finishes a still-queued job in the same critical
            # section that sets cancel_requested, so a non-queued state here
            # is the one and only cancel-before-start signal.
            if job.state != "queued":
                return
            job.state = "running"
            job.started_at = time.time()
            self._append_event(job, "state", state="running")
        if self._journal is not None:
            self._journal.append(
                "started", job_id=job.job_id, started_at=job.started_at
            )

        def sink(phase: str, done: int, total: int) -> None:
            self._report_progress(job, phase, done, total)

        try:
            with report_to(sink):
                response = getattr(self._service, job.operation)(request)
            result = response.to_dict()
        except OperationCancelled:
            with self._cond:
                self._finish_locked(job, "cancelled")
        except ServiceError as error:
            with self._cond:
                self._finish_locked(
                    job,
                    "failed",
                    error={
                        "code": error.code,
                        "message": error.message,
                        "status": error.status,
                        "details": error.details,
                    },
                )
        except Exception as error:  # noqa: BLE001 - worker crash boundary
            with self._cond:
                self._finish_locked(
                    job,
                    "failed",
                    error={
                        "code": "internal_error",
                        "message": f"{type(error).__name__}: {error}",
                        "status": 500,
                    },
                )
        else:
            with self._cond:
                self._finish_locked(job, "succeeded", result=result)
        self._journal_finish(job)

    def _report_progress(self, job: JobRecord, phase: str, done: int, total: int) -> None:
        with self._cond:
            if job.cancel_requested:
                raise OperationCancelled(job.job_id)
            self._append_event(job, "progress", phase=phase, done=done, total=total)

    def _append_event(self, job: JobRecord, kind: str, **fields) -> None:
        """Append one event and wake every waiter.  Caller holds the lock.

        Invariant: ``seq`` equals the event's list index (events are only
        ever appended, under this lock), which is what lets readers slice
        instead of scanning.
        """
        job.events.append(
            JobEvent(seq=len(job.events), kind=kind, timestamp=time.time(), **fields)
        )
        self._cond.notify_all()

    def _prune_locked(self) -> None:
        """Drop the oldest terminal jobs beyond the history bound.

        Caller holds the lock.  Dict insertion order is creation order, so
        iterating forwards prunes oldest-first; queued/running jobs are
        skipped (and do not count against the bound being restored -- the
        queue bound already limits those).
        """
        if self.max_history is None:
            return
        excess = len(self._jobs) - self.max_history
        if excess <= 0:
            return
        for job_id in [
            job_id for job_id, job in self._jobs.items() if job.terminal
        ]:
            if excess <= 0:
                break
            del self._jobs[job_id]
            excess -= 1

    def _finish_locked(
        self, job: JobRecord, state: str, *, result=None, error=None
    ) -> None:
        # Outcome fields land before the state flip: the HTTP handlers read
        # records without taking this lock, and a reader that observes a
        # terminal state must never see the pre-outcome result/error.
        job.finished_at = time.time()
        job.result = result
        job.error = error
        job.state = state
        self._append_event(job, "state", state=state)
        # Finishing may restore the history bound submit could not (only
        # terminal jobs are prunable).
        self._prune_locked()

    def _journal_finish(self, job: JobRecord) -> None:
        if self._journal is None or not job.terminal:
            return
        self._journal.append_finished(
            job_id=job.job_id,
            state=job.state,
            finished_at=job.finished_at,
            result=job.result,
            error=job.error,
        )
        if self.journal_keep is None:
            return
        with self._cond:
            self._finished_since_compact += 1
            if self._finished_since_compact < self.journal_keep:
                return
            self._finished_since_compact = 0
        # Outside the condition lock: compaction reads and rewrites the
        # whole file under the journal's own lock, and must not stall
        # submitters/streamers waiting on the manager condition.
        self._journal.compact(self.journal_keep, TERMINAL_STATES)

    # -- observation -----------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        """The job, or a typed 404."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"unknown job {job_id!r}",
                code="unknown_job",
                status=404,
            )
        return job

    def jobs(self) -> list[JobRecord]:
        """Every known job, oldest first."""
        with self._cond:
            return sorted(self._jobs.values(), key=lambda job: job.created_at)

    def events_since(
        self, job_id: str, after: int = -1, timeout: float | None = None
    ) -> tuple[list[JobEvent], bool]:
        """Events with ``seq > after``, blocking up to ``timeout`` for news.

        Returns ``(events, done)`` where ``done`` means the job is terminal
        *and* every event has been handed out -- the signal for an SSE stream
        to close.  A timeout with no news returns ``([], False)`` so the
        streamer can emit a keep-alive and wait again.
        """
        job = self.get(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                # seq == list index (see _append_event), so this is a slice,
                # not a scan -- O(new events) per wake even on long streams.
                events = job.events[max(after + 1, 0):]
                if events:
                    done = job.terminal and events[-1].seq == job.events[-1].seq
                    return events, done
                if job.terminal:
                    return [], True
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return [], False
                self._cond.wait(remaining)

    def wait(self, job_id: str, timeout: float | None = None) -> JobRecord:
        """Block until the job is terminal (or the timeout passes)."""
        job = self.get(job_id)
        with self._cond:
            self._cond.wait_for(lambda: job.terminal, timeout)
        return job

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; idempotent on terminal jobs.

        A queued job is cancelled immediately (the worker skips it); a
        running job is cancelled cooperatively at its next progress point.
        Operations that emit no progress (the sub-millisecond ones) simply
        finish.
        """
        job = self.get(job_id)
        journal_kinds: list[str] = []
        with self._cond:
            if not job.terminal and not job.cancel_requested:
                job.cancel_requested = True
                journal_kinds.append("cancel_requested")
                if job.state == "queued":
                    self._finish_locked(job, "cancelled")
                    journal_kinds.append("finished")
        if self._journal is not None:
            if "cancel_requested" in journal_kinds:
                self._journal.append("cancel_requested", job_id=job.job_id)
            if "finished" in journal_kinds:
                self._journal_finish(job)
        return job

    # -- shutdown --------------------------------------------------------------

    @property
    def draining(self) -> bool:
        """Whether the manager refuses new submissions."""
        return self._draining

    def begin_drain(self) -> None:
        """Refuse new submissions from now on (running jobs continue)."""
        with self._cond:
            self._draining = True

    def drain(self, timeout: float | None = None) -> bool:
        """Refuse new work and wait for in-flight jobs; True when all done."""
        self.begin_drain()
        with self._cond:
            return self._cond.wait_for(
                lambda: all(job.terminal for job in self._jobs.values()), timeout
            )

    def close(self, timeout: float | None = 10.0) -> bool:
        """Drain (bounded), stop the pool, and flush/close the journal.

        Jobs still running when the drain timeout elapses are cancelled
        cooperatively -- the pool's worker threads are non-daemon, so a job
        left running would keep the whole process alive at interpreter exit.
        Returns whether the drain completed without cancelling anything.
        """
        drained = self.drain(timeout)
        if not drained:
            for job in self.jobs():
                if not job.terminal:
                    self.cancel(job.job_id)
            # Give the cancels a moment to land so the journal records the
            # terminal states before it closes.
            with self._cond:
                self._cond.wait_for(
                    lambda: all(job.terminal for job in self._jobs.values()), 10.0
                )
        self._pool.shutdown(wait=True, cancel_futures=True)
        if self._journal is not None:
            self._journal.close()
        return drained

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        """Queue/state counters for the ``/healthz`` payload."""
        with self._cond:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            return {
                "workers": self.workers,
                "max_queued": self.max_queued,
                "max_history": self.max_history,
                "journal_keep": self.journal_keep,
                "draining": self._draining,
                "journal": str(self._journal.path) if self._journal else None,
                "journal_compactions": (
                    self._journal.compactions if self._journal else 0
                ),
                "spilled_results": (
                    self._journal.spilled_results if self._journal else 0
                ),
                "total": len(self._jobs),
                "by_state": by_state,
            }

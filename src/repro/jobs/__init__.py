"""Async job engine: typed operations as scheduled, observable jobs.

* :mod:`repro.jobs.manager` -- :class:`JobManager` (scheduled worker pool,
  typed :class:`JobRecord` lifecycle, monotonic :class:`JobEvent` streams,
  cooperative cancellation, dependency chains + the ``merge`` join),
* :mod:`repro.jobs.scheduler` -- the pure scheduling policy: priority
  classes with anti-starvation aging, per-workspace weighted fair queueing
  (stride/virtual-time), and per-client token-bucket quotas,
* :mod:`repro.jobs.clock` -- the injectable time seam that makes every
  scheduling decision provable with a deterministic fake clock,
* :mod:`repro.jobs.store` -- the append-only JSON-lines journal that makes
  job history survive ``cpsec serve`` restarts.

The HTTP server exposes the manager as ``POST /v1/jobs`` + SSE event
streams; :class:`~repro.service.client.ServiceClient` and ``cpsec jobs``
speak the same surface.  Progress flows from the instrumented long paths via
:mod:`repro.progress`.
"""

from repro.jobs.clock import SYSTEM_CLOCK, Clock, SystemClock
from repro.jobs.manager import (
    JOB_STATES,
    MERGE_OPERATION,
    TERMINAL_STATES,
    JobEvent,
    JobManager,
    JobRecord,
)
from repro.jobs.scheduler import (
    DEFAULT_FLOW,
    JOB_PRIORITIES,
    SCHEDULER_POLICIES,
    FairScheduler,
    TokenBucket,
    default_priority,
)
from repro.jobs.store import JobJournal, read_journal

__all__ = [
    "Clock",
    "DEFAULT_FLOW",
    "FairScheduler",
    "JOB_PRIORITIES",
    "JOB_STATES",
    "JobEvent",
    "JobJournal",
    "JobManager",
    "JobRecord",
    "MERGE_OPERATION",
    "SCHEDULER_POLICIES",
    "SYSTEM_CLOCK",
    "SystemClock",
    "TERMINAL_STATES",
    "TokenBucket",
    "default_priority",
    "read_journal",
]

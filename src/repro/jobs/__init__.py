"""Async job engine: typed operations as cancellable, observable jobs.

* :mod:`repro.jobs.manager` -- :class:`JobManager` (bounded worker pool,
  typed :class:`JobRecord` lifecycle, monotonic :class:`JobEvent` streams,
  cooperative cancellation),
* :mod:`repro.jobs.store` -- the append-only JSON-lines journal that makes
  job history survive ``cpsec serve`` restarts.

The HTTP server exposes the manager as ``POST /v1/jobs`` + SSE event
streams; :class:`~repro.service.client.ServiceClient` and ``cpsec jobs``
speak the same surface.  Progress flows from the instrumented long paths via
:mod:`repro.progress`.
"""

from repro.jobs.manager import (
    JOB_STATES,
    TERMINAL_STATES,
    JobEvent,
    JobManager,
    JobRecord,
)
from repro.jobs.store import JobJournal, read_journal

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobEvent",
    "JobManager",
    "JobRecord",
    "JobJournal",
    "read_journal",
]

"""Scheduling policy for the job engine: priorities, fair shares, quotas.

The PR 4 worker pool was plain FIFO, which means one analyst's paper-scale
sweep starves everyone else's interactive requests.  This module is the
policy layer that fixes that, kept deliberately **pure** -- no threads, no
clocks, no locks -- so every scheduling decision is unit-testable by
single-stepping :meth:`FairScheduler.pop_next`:

* **priority classes** -- ``interactive`` beats ``batch``
  (:data:`JOB_PRIORITIES`), with the default class inferred per operation
  (:func:`default_priority`: the long sweep operations are batch, everything
  else interactive).  Strict priority is tempered by **aging**: after
  ``starvation_limit`` consecutive interactive dispatches a ready batch job
  runs, so a flood of interactive traffic bounds -- rather than suspends --
  batch progress,
* **weighted fair queueing** across flows (one flow per workspace) via
  stride scheduling: each flow carries a virtual-time ``pass``; dispatching
  a job advances the flow's pass by ``1/weight``, and the flow with the
  smallest pass goes next.  A 1000-job sweep and a single interactive
  associate therefore share the pool by *weight*, not by arrival count, and
  a flow that went idle re-enters at the current virtual time instead of
  burning banked credit,
* **token-bucket quotas** (:class:`TokenBucket`) per client: ``rate``
  tokens/second refill up to ``burst``; an empty bucket yields the
  ``retry_after`` the manager surfaces as a typed 429.

The FIFO policy survives as ``FairScheduler(policy="fifo")`` -- the honest
baseline the fairness benchmark compares against.

Thread safety: the scheduler mutates only under its owning
:class:`~repro.jobs.manager.JobManager`'s condition lock.
"""

from __future__ import annotations

from collections import deque

from repro.service.protocol import JOB_PRIORITIES

#: Operations whose jobs default to the weaker class.  The long sweep paths
#: (what-if studies, simulation horizons) are what a batch submission looks
#: like; every other operation -- and the dependency-merge pseudo-operation,
#: whose parents already paid the batch cost -- defaults to interactive.
DEFAULT_BATCH_OPERATIONS = frozenset({"whatif", "simulate"})

#: Scheduling policies a manager can run.
SCHEDULER_POLICIES = ("fair", "fifo")

#: Flow key used when a submission names no workspace.
DEFAULT_FLOW = "default"


def default_priority(operation: str) -> str:
    """The priority class an operation gets when the submission names none."""
    return "batch" if operation in DEFAULT_BATCH_OPERATIONS else "interactive"


class _Flow:
    """One workspace's queues and virtual-time state."""

    __slots__ = ("key", "weight", "pass_value", "queues", "dispatched")

    def __init__(self, key: str, weight: float, pass_value: float) -> None:
        self.key = key
        self.weight = weight
        self.pass_value = pass_value
        self.queues: dict[str, deque] = {cls: deque() for cls in JOB_PRIORITIES}
        self.dispatched = 0

    @property
    def queued(self) -> int:
        return sum(len(queue) for queue in self.queues.values())


class FairScheduler:
    """Picks the next ready job: strict-but-aged priority, then fair share.

    Jobs handed to :meth:`add` must expose ``priority`` (one of
    :data:`JOB_PRIORITIES`), ``weight`` (positive float) and ``flow`` (the
    workspace key) attributes -- the manager's :class:`JobRecord` does.
    Dependency-blocked jobs are *not* added until their parents finish; the
    scheduler only ever sees ready work.
    """

    def __init__(self, *, policy: str = "fair", starvation_limit: int = 8) -> None:
        if policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"policy must be one of {SCHEDULER_POLICIES}, got {policy!r}"
            )
        if starvation_limit < 1:
            raise ValueError(
                f"starvation_limit must be positive, got {starvation_limit}"
            )
        self.policy = policy
        self.starvation_limit = starvation_limit
        self._flows: dict[str, _Flow] = {}
        self._fifo: deque = deque()
        self._virtual_time = 0.0
        self._interactive_streak = 0
        self.passes = 0
        self.dispatched = {cls: 0 for cls in JOB_PRIORITIES}
        self.aged_batch_dispatches = 0

    # -- queue maintenance -----------------------------------------------------

    def add(self, job) -> None:
        """Enqueue one ready job under its flow and priority class."""
        if self.policy == "fifo":
            self._fifo.append(job)
            return
        flow = self._flows.get(job.flow)
        if flow is None:
            # A new flow joins at the current virtual time: no banked credit.
            flow = self._flows[job.flow] = _Flow(
                job.flow, job.weight, self._virtual_time
            )
        elif flow.queued == 0:
            # An idle flow re-enters at the current virtual time, otherwise a
            # long-idle workspace would burst ahead of everyone on its stale
            # (small) pass value.
            flow.pass_value = max(flow.pass_value, self._virtual_time)
        # The flow's weight is whatever its most recent submission asked for.
        flow.weight = job.weight
        flow.queues[job.priority].append(job)

    def remove(self, job) -> bool:
        """Drop a queued job (cancellation); False when it is not queued."""
        if self.policy == "fifo":
            try:
                self._fifo.remove(job)
            except ValueError:
                return False
            return True
        flow = self._flows.get(job.flow)
        if flow is None:
            return False
        try:
            flow.queues[job.priority].remove(job)
        except ValueError:
            return False
        return True

    # -- dispatch --------------------------------------------------------------

    def _pick_class(self) -> str | None:
        """The priority class to serve this pass (aging included)."""
        interactive_ready = any(
            flow.queues["interactive"] for flow in self._flows.values()
        )
        batch_ready = any(flow.queues["batch"] for flow in self._flows.values())
        if interactive_ready and (
            not batch_ready or self._interactive_streak < self.starvation_limit
        ):
            return "interactive"
        if batch_ready:
            return "batch"
        return "interactive" if interactive_ready else None

    def pop_next(self):
        """The next job to run, or ``None`` when nothing is ready."""
        if self.policy == "fifo":
            if not self._fifo:
                return None
            self.passes += 1
            job = self._fifo.popleft()
            self.dispatched[job.priority] += 1
            return job
        cls = self._pick_class()
        if cls is None:
            return None
        self.passes += 1
        # Stride scheduling: the smallest pass value goes next; ties break on
        # the flow key so identical histories dispatch identically.
        flow = min(
            (f for f in self._flows.values() if f.queues[cls]),
            key=lambda f: (f.pass_value, f.key),
        )
        job = flow.queues[cls].popleft()
        self._virtual_time = max(self._virtual_time, flow.pass_value)
        flow.pass_value += 1.0 / flow.weight
        flow.dispatched += 1
        self.dispatched[cls] += 1
        if cls == "interactive":
            self._interactive_streak += 1
        else:
            if self._interactive_streak >= self.starvation_limit:
                self.aged_batch_dispatches += 1
            self._interactive_streak = 0
        return job

    # -- introspection ---------------------------------------------------------

    def depth(self) -> dict[str, int]:
        """Queued jobs per priority class."""
        if self.policy == "fifo":
            counts = {cls: 0 for cls in JOB_PRIORITIES}
            for job in self._fifo:
                counts[job.priority] += 1
            return counts
        return {
            cls: sum(len(flow.queues[cls]) for flow in self._flows.values())
            for cls in JOB_PRIORITIES
        }

    @property
    def queued(self) -> int:
        if self.policy == "fifo":
            return len(self._fifo)
        return sum(flow.queued for flow in self._flows.values())

    def info(self) -> dict:
        """The ``/healthz`` view of the scheduler."""
        payload = {
            "policy": self.policy,
            "starvation_limit": self.starvation_limit,
            "passes": self.passes,
            "dispatched": dict(self.dispatched),
            "aged_batch_dispatches": self.aged_batch_dispatches,
            "depth": self.depth(),
        }
        if self.policy == "fair":
            payload["flows"] = {
                flow.key: {
                    "weight": flow.weight,
                    "queued": flow.queued,
                    "dispatched": flow.dispatched,
                    # The stride scheduler's virtual-time position; exported
                    # as the cpsec_scheduler_flow_pass gauge on /metrics.
                    "pass": flow.pass_value,
                }
                for flow in self._flows.values()
            }
        return payload


class TokenBucket:
    """One client's submission quota: ``rate`` tokens/s refill up to ``burst``.

    Time comes in through the caller (the manager's injected clock), so the
    bucket itself is pure state -- refill math is provable with a fake clock.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError(
                f"quota needs rate > 0 and burst >= 1, got rate={rate}, burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = now

    def try_take(self, now: float) -> float:
        """Take one token.  Returns 0.0 on success, else seconds until one
        will be available (the typed 429's ``retry_after_s``)."""
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate

"""Controllers of the SCADA centrifuge: PID loops and the BPCS.

The BPCS (basic process control system) is "the main centrifuge controller
interfaced through MODBUS" in the paper's demonstration.  It runs two PID
loops -- rotor speed against the drive command and solution temperature
against the chiller duty -- and accepts set-point writes and mode changes
from the programming workstation over the message bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass
class PidController:
    """A textbook PID controller with output clamping and anti-windup."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    output_min: float = 0.0
    output_max: float = 1.0
    _integral: float = field(default=0.0, init=False, repr=False)
    _previous_error: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.output_min >= self.output_max:
            raise ValueError("output_min must be below output_max")

    def reset(self) -> None:
        """Clear the integral and derivative memory."""
        self._integral = 0.0
        self._previous_error = None

    def update(self, setpoint: float, measurement: float, dt: float) -> float:
        """Compute the control output for one sample interval."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        error = setpoint - measurement
        derivative = 0.0
        if self._previous_error is not None and self.kd:
            derivative = (error - self._previous_error) / dt
        self._previous_error = error

        candidate_integral = self._integral + error * dt
        output = self.kp * error + self.ki * candidate_integral + self.kd * derivative
        if self.output_min <= output <= self.output_max:
            self._integral = candidate_integral
        else:
            # Anti-windup: freeze the integral while the output is saturated.
            output = self.kp * error + self.ki * self._integral + self.kd * derivative
        return float(min(max(output, self.output_min), self.output_max))


class ControlMode(enum.Enum):
    """Operating mode commanded by the workstation."""

    IDLE = "idle"
    RUN = "run"
    SHUTDOWN = "shutdown"


@dataclass
class BpcsController:
    """The basic process control system of the centrifuge.

    The controller tracks a speed set point with the drive PID and a
    temperature set point with the cooling PID.  In ``IDLE`` and ``SHUTDOWN``
    the drive is forced to zero (cooling keeps running in ``IDLE``).
    """

    speed_setpoint_rpm: float = 0.0
    temperature_setpoint_c: float = 20.0
    mode: ControlMode = ControlMode.IDLE
    speed_pid: PidController = field(
        default_factory=lambda: PidController(kp=0.00035, ki=0.00025, kd=0.0)
    )
    cooling_pid: PidController = field(
        default_factory=lambda: PidController(kp=0.6, ki=0.05, kd=0.0)
    )
    max_speed_setpoint_rpm: float = 10_000.0
    compromised: bool = field(default=False, init=False)

    def set_speed_setpoint(self, value: float) -> None:
        """Accept a speed set-point write (clamped to the machine limit)."""
        self.speed_setpoint_rpm = float(min(max(value, 0.0), self.max_speed_setpoint_rpm))

    def set_temperature_setpoint(self, value: float) -> None:
        """Accept a temperature set-point write."""
        self.temperature_setpoint_c = float(value)

    def set_mode(self, mode: ControlMode) -> None:
        """Accept a mode change."""
        self.mode = mode
        if mode is not ControlMode.RUN:
            self.speed_pid.reset()

    def compute(
        self, speed_measurement_rpm: float, temperature_measurement_c: float, dt: float
    ) -> tuple[float, float]:
        """One control cycle: returns ``(drive_command, cooling_command)``."""
        if self.mode is ControlMode.RUN:
            drive = self.speed_pid.update(self.speed_setpoint_rpm, speed_measurement_rpm, dt)
        else:
            drive = 0.0
        if self.mode is ControlMode.SHUTDOWN:
            cooling = 0.0
        else:
            # The cooling loop acts to *lower* temperature, so the error sign flips.
            cooling = self.cooling_pid.update(
                temperature_measurement_c, self.temperature_setpoint_c, dt
            )
        return drive, cooling

"""The hook interface through which attacks act on the running simulation.

Attacks (package :mod:`repro.attacks`) are expressed as *interventions*: the
simulation offers them well-defined touch points -- activation window,
per-step access to the simulation, and a message tap -- instead of letting
them reach arbitrarily into component internals.  This keeps the simulation
faithful (an attacker can only act through interfaces that exist in the
modeled system: the network, the sensors, the devices it has compromised)
and keeps attack implementations small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cps.network import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.cps.scada import ScadaSimulation


@dataclass
class Intervention:
    """Base class for everything that tampers with a running simulation.

    Parameters
    ----------
    name:
        Human-readable attack name (appears in simulation reports).
    start_time_s:
        Simulation time at which the intervention becomes active.
    duration_s:
        How long it stays active; ``None`` means until the end of the run.
    """

    name: str = "intervention"
    start_time_s: float = 0.0
    duration_s: float | None = None
    activated: bool = field(default=False, init=False)

    def active(self, time_s: float) -> bool:
        """Whether the intervention is active at the given simulation time."""
        if time_s < self.start_time_s:
            return False
        if self.duration_s is None:
            return True
        return time_s <= self.start_time_s + self.duration_s

    # -- hooks called by the simulation (default: do nothing) ----------------

    def on_activate(self, simulation: "ScadaSimulation", time_s: float) -> None:
        """Called once, the first step the intervention is active."""

    def on_step(self, simulation: "ScadaSimulation", time_s: float) -> None:
        """Called every simulation step while active."""

    def on_deactivate(self, simulation: "ScadaSimulation", time_s: float) -> None:
        """Called once when the active window ends (if it ends)."""

    def on_message(self, message: Message, time_s: float) -> Message | None:
        """Message tap while active: return a replacement or ``None`` to drop.

        The default passes traffic through untouched.
        """
        return message

"""MODBUS-like message bus and the control firewall.

The demonstration system exchanges set points, measurements, and mode
commands between the programming workstation, the BPCS, and the SIS over an
industrial protocol (MODBUS in the paper).  The bus model is deliberately
simple -- addressed messages delivered in FIFO order once per control cycle --
but it exposes *taps*: hooks that see (and may modify, drop, or inject)
traffic, which is how adversary-in-the-middle, replay, and injection attacks
are realized without modifying the devices themselves.

The firewall filters messages crossing the corporate/control boundary using
an ordered rule list with a default-deny policy.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field, replace


class MessageKind(enum.Enum):
    """Classes of traffic on the control network."""

    SETPOINT_WRITE = "setpoint_write"
    MODE_COMMAND = "mode_command"
    MEASUREMENT = "measurement"
    STATUS = "status"
    SAFETY_COMMAND = "safety_command"
    ENGINEERING = "engineering"


@dataclass(frozen=True)
class Message:
    """One addressed message on the bus."""

    sender: str
    receiver: str
    kind: MessageKind
    payload: dict
    timestamp_s: float = 0.0
    sequence: int = 0

    def with_payload(self, **updates) -> "Message":
        """A copy of the message with some payload entries replaced."""
        payload = dict(self.payload)
        payload.update(updates)
        return replace(self, payload=payload)


#: A tap sees each message and returns a replacement, or ``None`` to drop it.
MessageTap = Callable[[Message], Message | None]


@dataclass(frozen=True)
class FirewallRule:
    """One allow rule: sender zone/device to receiver, optionally by kind."""

    sender: str
    receiver: str
    kinds: tuple[MessageKind, ...] = ()

    def permits(self, message: Message) -> bool:
        """Whether the rule allows the message."""
        if self.sender not in ("*", message.sender):
            return False
        if self.receiver not in ("*", message.receiver):
            return False
        return not self.kinds or message.kind in self.kinds


@dataclass
class Firewall:
    """Default-deny packet filter between network zones."""

    name: str = "control-firewall"
    rules: list[FirewallRule] = field(default_factory=list)
    protected: frozenset[str] = frozenset()
    bypassed: bool = False
    dropped_count: int = field(default=0, init=False)

    def allow(self, sender: str, receiver: str, *kinds: MessageKind) -> "Firewall":
        """Append an allow rule; returns self for chaining."""
        self.rules.append(FirewallRule(sender, receiver, tuple(kinds)))
        return self

    def filter(self, message: Message) -> Message | None:
        """Return the message if permitted, ``None`` if dropped.

        Only traffic addressed *to* a protected device is filtered; a
        compromised or misconfigured (``bypassed``) firewall passes everything,
        which is what the boundary-bridging attack models.
        """
        if self.bypassed:
            return message
        if self.protected and message.receiver not in self.protected:
            return message
        if any(rule.permits(message) for rule in self.rules):
            return message
        self.dropped_count += 1
        return None


class MessageBus:
    """FIFO message bus with delivery taps and per-device handlers."""

    def __init__(self, name: str = "control-network") -> None:
        self.name = name
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._queue: list[Message] = []
        self._taps: list[MessageTap] = []
        self._sequence = itertools.count()
        self.delivered: list[Message] = []
        self.dropped: list[Message] = []

    def register(self, device: str, handler: Callable[[Message], None]) -> None:
        """Register a device's message handler."""
        if device in self._handlers:
            raise ValueError(f"device already registered: {device!r}")
        self._handlers[device] = handler

    def add_tap(self, tap: MessageTap) -> None:
        """Install a tap that can observe, modify, or drop each message."""
        self._taps.append(tap)

    def remove_tap(self, tap: MessageTap) -> None:
        """Remove a previously installed tap."""
        self._taps.remove(tap)

    def send(
        self,
        sender: str,
        receiver: str,
        kind: MessageKind,
        payload: dict,
        timestamp_s: float = 0.0,
    ) -> Message:
        """Queue a message for delivery on the next bus cycle."""
        message = Message(
            sender=sender,
            receiver=receiver,
            kind=kind,
            payload=dict(payload),
            timestamp_s=timestamp_s,
            sequence=next(self._sequence),
        )
        self._queue.append(message)
        return message

    def pending(self) -> int:
        """Number of queued, undelivered messages."""
        return len(self._queue)

    def deliver(self) -> int:
        """Deliver all queued messages through the taps; returns deliveries."""
        queue, self._queue = self._queue, []
        count = 0
        for message in queue:
            final: Message | None = message
            for tap in self._taps:
                final = tap(final)
                if final is None:
                    break
            if final is None:
                self.dropped.append(message)
                continue
            handler = self._handlers.get(final.receiver)
            if handler is None:
                self.dropped.append(final)
                continue
            handler(final)
            self.delivered.append(final)
            count += 1
        return count

"""Cyber-physical substrate: the particle-separation centrifuge under control.

The paper's central claim is that IT-centric threat modeling "cannot map
threats to environmental consequences".  To reproduce the demonstration's
consequence arguments (Section 3: a compromised BPCS/SIS "manifesting in
destruction of the manufactured product or damage to the centrifuge itself,
which could cause accidents") we need the physical process itself:

* :mod:`repro.cps.plant` -- rotor and thermal dynamics of the centrifuge,
* :mod:`repro.cps.sensors` -- the precision temperature probe and tachometer,
* :mod:`repro.cps.control` -- PID loops and the BPCS supervisory controller,
* :mod:`repro.cps.sis` -- the safety instrumented system (redundant monitor),
* :mod:`repro.cps.network` -- a MODBUS-like message bus and the control firewall,
* :mod:`repro.cps.scada` -- the closed-loop SCADA simulation and its trace,
* :mod:`repro.cps.hazards` -- the paper's hazard conditions evaluated on traces,
* :mod:`repro.cps.intervention` -- the hook interface attacks use to tamper
  with messages, sensors, and components during simulation.
"""

from repro.cps.control import BpcsController, ControlMode, PidController
from repro.cps.hazards import HazardEvent, HazardKind, HazardMonitor, HazardReport
from repro.cps.intervention import Intervention
from repro.cps.network import Firewall, FirewallRule, Message, MessageBus, MessageKind
from repro.cps.plant import CentrifugePlant, PlantParameters, PlantState
from repro.cps.scada import OperatorSchedule, ScadaSimulation, SimulationTrace
from repro.cps.sensors import Sensor, Tachometer, TemperatureSensor
from repro.cps.sis import SafetyInstrumentedSystem, SisLimits

__all__ = [
    "CentrifugePlant",
    "PlantParameters",
    "PlantState",
    "Sensor",
    "TemperatureSensor",
    "Tachometer",
    "PidController",
    "BpcsController",
    "ControlMode",
    "SafetyInstrumentedSystem",
    "SisLimits",
    "Message",
    "MessageKind",
    "MessageBus",
    "Firewall",
    "FirewallRule",
    "ScadaSimulation",
    "SimulationTrace",
    "OperatorSchedule",
    "HazardMonitor",
    "HazardReport",
    "HazardEvent",
    "HazardKind",
    "Intervention",
]

"""Rotor and thermal dynamics of the particle-separation centrifuge.

Section 3 of the paper fixes the physical envelope: a precision variable
speed centrifuge with a maximum of 10,000 rpm regulated to within +/- 1 rpm of
the set point; separation is useless if the speed fluctuates beyond +/- 20 rpm
or if the temperature is too low, and the solution becomes unstable
(explosion / fire hazard) if the temperature is too high.

The plant model is a two-state lumped-parameter system:

* rotor speed ``omega`` [rpm]: first-order drive dynamics with viscous
  friction, driven by a normalized drive command in ``[0, 1]``,
* solution temperature ``T`` [deg C]: heated by rotor friction (quadratic in
  speed) and an ambient/process heat load, cooled by a chiller whose duty is
  the normalized cooling command in ``[0, 1]``.

This is deliberately simple -- the paper's argument needs a believable,
controllable plant with the stated hazard boundaries, not CFD.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np
from scipy.integrate import solve_ivp


@dataclass(frozen=True)
class PlantParameters:
    """Physical parameters of the centrifuge plant."""

    max_speed_rpm: float = 10_000.0
    drive_gain_rpm: float = 12_000.0
    speed_time_constant_s: float = 8.0
    friction_heating_coeff: float = 9.0
    heat_load_w: float = 0.6
    cooling_capacity: float = 12.0
    ambient_coupling: float = 0.02
    ambient_temperature_c: float = 22.0
    coolant_temperature_c: float = 4.0
    thermal_capacity: float = 30.0

    def __post_init__(self) -> None:
        if self.max_speed_rpm <= 0:
            raise ValueError("max_speed_rpm must be positive")
        if self.speed_time_constant_s <= 0:
            raise ValueError("speed_time_constant_s must be positive")
        if self.thermal_capacity <= 0:
            raise ValueError("thermal_capacity must be positive")


@dataclass(frozen=True)
class PlantState:
    """Instantaneous state of the plant."""

    speed_rpm: float = 0.0
    temperature_c: float = 22.0

    def as_array(self) -> np.ndarray:
        """State as a numpy vector ``[speed, temperature]``."""
        return np.array([self.speed_rpm, self.temperature_c], dtype=float)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "PlantState":
        """Build a state from a ``[speed, temperature]`` vector."""
        return cls(speed_rpm=float(values[0]), temperature_c=float(values[1]))


@dataclass
class CentrifugePlant:
    """The centrifuge plant with step-wise integration for closed-loop use."""

    parameters: PlantParameters = field(default_factory=PlantParameters)
    state: PlantState = field(default_factory=PlantState)

    def reset(self, state: PlantState | None = None) -> None:
        """Reset the plant to an initial state (ambient standstill by default)."""
        self.state = state or PlantState(
            speed_rpm=0.0, temperature_c=self.parameters.ambient_temperature_c
        )

    # -- dynamics -----------------------------------------------------------

    def derivatives(
        self,
        state: np.ndarray,
        drive_command: float,
        cooling_command: float,
        heat_disturbance_w: float = 0.0,
    ) -> np.ndarray:
        """Time derivatives of ``[speed, temperature]`` for given commands."""
        p = self.parameters
        drive = float(np.clip(drive_command, 0.0, 1.0))
        cooling = float(np.clip(cooling_command, 0.0, 1.0))
        speed, temperature = float(state[0]), float(state[1])

        target_speed = min(p.drive_gain_rpm * drive, p.max_speed_rpm)
        speed_dot = (target_speed - speed) / p.speed_time_constant_s

        speed_fraction = speed / p.max_speed_rpm
        friction_heat = p.friction_heating_coeff * speed_fraction**2
        cooling_heat = p.cooling_capacity * cooling * (temperature - p.coolant_temperature_c) / 40.0
        ambient_heat = p.ambient_coupling * (p.ambient_temperature_c - temperature)
        temperature_dot = (
            friction_heat + p.heat_load_w + heat_disturbance_w + ambient_heat - cooling_heat
        ) / p.thermal_capacity
        return np.array([speed_dot, temperature_dot], dtype=float)

    def step(
        self,
        dt: float,
        drive_command: float,
        cooling_command: float,
        heat_disturbance_w: float = 0.0,
    ) -> PlantState:
        """Advance the plant by ``dt`` seconds (classic RK4) and return the new state."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        y = self.state.as_array()
        k1 = self.derivatives(y, drive_command, cooling_command, heat_disturbance_w)
        k2 = self.derivatives(y + 0.5 * dt * k1, drive_command, cooling_command, heat_disturbance_w)
        k3 = self.derivatives(y + 0.5 * dt * k2, drive_command, cooling_command, heat_disturbance_w)
        k4 = self.derivatives(y + dt * k3, drive_command, cooling_command, heat_disturbance_w)
        y_next = y + (dt / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
        y_next[0] = float(np.clip(y_next[0], 0.0, self.parameters.max_speed_rpm))
        self.state = PlantState.from_array(y_next)
        return self.state

    # -- open-loop analysis --------------------------------------------------

    def simulate_open_loop(
        self,
        duration_s: float,
        drive_command: float,
        cooling_command: float,
        initial_state: PlantState | None = None,
        heat_disturbance_w: float = 0.0,
        samples: int = 200,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate the plant open loop with scipy and return ``(t, states)``.

        ``states`` has shape ``(samples, 2)`` with columns speed and
        temperature.  Used for model characterization and plant-level tests.
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        start = (initial_state or self.state).as_array()
        times = np.linspace(0.0, duration_s, samples)
        solution = solve_ivp(
            lambda _t, y: self.derivatives(y, drive_command, cooling_command, heat_disturbance_w),
            (0.0, duration_s),
            start,
            t_eval=times,
            rtol=1e-7,
            atol=1e-9,
        )
        states = solution.y.T
        states[:, 0] = np.clip(states[:, 0], 0.0, self.parameters.max_speed_rpm)
        return times, states

    def equilibrium_temperature(self, speed_rpm: float, cooling_command: float) -> float:
        """Steady-state solution temperature for a constant speed and cooling duty."""
        p = self.parameters
        speed_fraction = min(max(speed_rpm, 0.0), p.max_speed_rpm) / p.max_speed_rpm
        heat_in = p.friction_heating_coeff * speed_fraction**2 + p.heat_load_w
        cooling = float(np.clip(cooling_command, 0.0, 1.0))
        # heat_in + ambient_coupling*(T_amb - T) - cooling_capacity*cooling*(T - T_cool)/40 = 0
        a = p.ambient_coupling + p.cooling_capacity * cooling / 40.0
        b = (
            heat_in
            + p.ambient_coupling * p.ambient_temperature_c
            + p.cooling_capacity * cooling * p.coolant_temperature_c / 40.0
        )
        return b / a

    def with_parameters(self, **overrides) -> "CentrifugePlant":
        """A new plant with some parameters replaced (state preserved)."""
        return CentrifugePlant(
            parameters=replace(self.parameters, **overrides), state=self.state
        )

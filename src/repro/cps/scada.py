"""Closed-loop SCADA simulation of the particle-separation centrifuge.

This module wires the substrate together exactly as the paper's Fig. 1
architecture describes: the programming workstation writes set points and
mode commands over the bus, the BPCS regulates rotor speed and solution
temperature, the SIS redundantly monitors the same measurements and trips the
drive on violations, and the plant integrates the physics.  Attacks
participate only through :class:`~repro.cps.intervention.Intervention` hooks.

The output is a :class:`SimulationTrace` -- time series of every relevant
signal -- plus the hazard evaluation of that trace, which is what the
consequence-mapping layer (experiment E6) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cps.control import BpcsController, ControlMode
from repro.cps.hazards import HazardMonitor, HazardReport
from repro.cps.intervention import Intervention
from repro.cps.network import Firewall, Message, MessageBus, MessageKind
from repro.cps.plant import CentrifugePlant, PlantState
from repro.cps.sensors import Tachometer, TemperatureSensor
from repro.cps.sis import SafetyInstrumentedSystem
from repro.progress import progress_sink

#: Device names used on the bus; they match the system-model component names.
WORKSTATION = "Programming WS"
BPCS = "BPCS Platform"
SIS = "SIS Platform"
CORPORATE = "Corporate Network"


@dataclass(frozen=True)
class OperatorAction:
    """One scheduled operator action sent from the programming workstation."""

    time_s: float
    kind: MessageKind
    payload: dict

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("operator action time must be non-negative")


@dataclass
class OperatorSchedule:
    """The sequence of operator actions for a simulated batch."""

    actions: list[OperatorAction] = field(default_factory=list)

    def add_setpoint(self, time_s: float, register: str, value: float) -> "OperatorSchedule":
        """Schedule a set-point write; returns self for chaining."""
        self.actions.append(
            OperatorAction(time_s, MessageKind.SETPOINT_WRITE, {"register": register, "value": value})
        )
        return self

    def add_mode(self, time_s: float, mode: ControlMode) -> "OperatorSchedule":
        """Schedule a mode command; returns self for chaining."""
        self.actions.append(
            OperatorAction(time_s, MessageKind.MODE_COMMAND, {"mode": mode.value})
        )
        return self

    def due(self, start_s: float, end_s: float) -> list[OperatorAction]:
        """Actions scheduled in the half-open interval ``[start, end)``."""
        return [action for action in self.actions if start_s <= action.time_s < end_s]

    @classmethod
    def batch(
        cls,
        speed_rpm: float = 6_000.0,
        temperature_c: float = 20.0,
        start_time_s: float = 5.0,
    ) -> "OperatorSchedule":
        """The default separation batch: configure set points, then run."""
        schedule = cls()
        schedule.add_setpoint(start_time_s, "temperature_setpoint", temperature_c)
        schedule.add_setpoint(start_time_s, "speed_setpoint", speed_rpm)
        schedule.add_mode(start_time_s + 1.0, ControlMode.RUN)
        return schedule


@dataclass
class SimulationTrace:
    """Time series produced by a simulation run."""

    times_s: np.ndarray
    speeds_rpm: np.ndarray
    temperatures_c: np.ndarray
    speed_setpoints_rpm: np.ndarray
    temperature_setpoints_c: np.ndarray
    drive_commands: np.ndarray
    cooling_commands: np.ndarray
    sis_tripped: np.ndarray
    bpcs_speed_view_rpm: np.ndarray
    bpcs_temperature_view_c: np.ndarray

    def __len__(self) -> int:
        return len(self.times_s)

    def final_state(self) -> PlantState:
        """Plant state at the end of the run."""
        return PlantState(
            speed_rpm=float(self.speeds_rpm[-1]),
            temperature_c=float(self.temperatures_c[-1]),
        )

    def max_temperature(self) -> float:
        """Peak solution temperature over the run."""
        return float(np.max(self.temperatures_c))

    def max_speed(self) -> float:
        """Peak rotor speed over the run."""
        return float(np.max(self.speeds_rpm))

    def speed_tracking_error(self, after_s: float = 120.0) -> float:
        """RMS speed error after the settling window (regulation quality)."""
        mask = (self.times_s >= after_s) & (self.speed_setpoints_rpm > 0)
        if not np.any(mask):
            return 0.0
        errors = self.speeds_rpm[mask] - self.speed_setpoints_rpm[mask]
        return float(np.sqrt(np.mean(errors**2)))

    def hazards(self, monitor: HazardMonitor | None = None) -> HazardReport:
        """Evaluate the hazard conditions over the trace."""
        monitor = monitor or HazardMonitor()
        running = self.speed_setpoints_rpm > 0
        return monitor.evaluate(
            self.times_s,
            self.temperatures_c,
            self.speeds_rpm,
            self.speed_setpoints_rpm,
            running=running,
        )


class ScadaSimulation:
    """The closed-loop SCADA centrifuge simulation."""

    def __init__(
        self,
        plant: CentrifugePlant | None = None,
        controller: BpcsController | None = None,
        sis: SafetyInstrumentedSystem | None = None,
        schedule: OperatorSchedule | None = None,
        interventions: list[Intervention] | None = None,
        firewall: Firewall | None = None,
        seed: int = 3,
    ) -> None:
        self.plant = plant or CentrifugePlant()
        self.plant.reset()
        self.controller = controller or BpcsController()
        self.sis = sis or SafetyInstrumentedSystem()
        self.schedule = schedule or OperatorSchedule.batch()
        self.interventions = list(interventions or [])
        self.firewall = firewall or self._default_firewall()
        self.temperature_sensor = TemperatureSensor(seed=seed)
        self.tachometer = Tachometer(seed=seed + 1)
        self.bus = MessageBus()
        self.heat_disturbance_w = 0.0

        self._bpcs_view = {"speed": 0.0, "temperature": self.plant.state.temperature_c}
        self._sis_view = {"speed": 0.0, "temperature": self.plant.state.temperature_c}
        self._now = 0.0
        self._wire_bus()

    # -- construction helpers -------------------------------------------------

    def _default_firewall(self) -> Firewall:
        firewall = Firewall(protected=frozenset({BPCS, SIS, WORKSTATION}))
        firewall.allow(WORKSTATION, BPCS)
        firewall.allow(WORKSTATION, SIS)
        firewall.allow(BPCS, SIS)
        firewall.allow(BPCS, WORKSTATION, MessageKind.STATUS)
        firewall.allow(SIS, WORKSTATION, MessageKind.STATUS)
        firewall.allow("temperature-probe", "*")
        firewall.allow("tachometer", "*")
        return firewall

    def _wire_bus(self) -> None:
        self.bus.register(BPCS, self._bpcs_handler)
        self.bus.register(SIS, self._sis_handler)
        self.bus.register(WORKSTATION, lambda message: None)
        self.bus.add_tap(self._intervention_tap)
        self.bus.add_tap(self.firewall.filter)

    # -- message handlers ------------------------------------------------------

    def _bpcs_handler(self, message: Message) -> None:
        if message.kind is MessageKind.SETPOINT_WRITE:
            register = message.payload.get("register")
            value = float(message.payload.get("value", 0.0))
            if register == "speed_setpoint":
                self.controller.set_speed_setpoint(value)
            elif register == "temperature_setpoint":
                self.controller.set_temperature_setpoint(value)
        elif message.kind is MessageKind.MODE_COMMAND:
            self.controller.set_mode(ControlMode(message.payload["mode"]))
        elif message.kind is MessageKind.MEASUREMENT:
            self._bpcs_view[message.payload["variable"]] = float(message.payload["value"])
        elif message.kind is MessageKind.ENGINEERING:
            # Engineering writes model arbitrary reconfiguration of the BPCS
            # (the CWE-78 command-injection consequence): mark it compromised.
            self.controller.compromised = True

    def _sis_handler(self, message: Message) -> None:
        if message.kind is MessageKind.MEASUREMENT:
            self._sis_view[message.payload["variable"]] = float(message.payload["value"])
        elif message.kind is MessageKind.SAFETY_COMMAND:
            command = message.payload.get("command", "")
            if command == "disable":
                self.sis.disable()
            elif command == "enable":
                self.sis.enable()
            elif command == "reset":
                self.sis.reset()

    def _intervention_tap(self, message: Message) -> Message | None:
        current: Message | None = message
        for intervention in self.interventions:
            if current is None:
                return None
            if intervention.active(self._now):
                current = intervention.on_message(current, self._now)
        return current

    # -- main loop --------------------------------------------------------------

    def run(self, duration_s: float = 600.0, dt: float = 0.5) -> SimulationTrace:
        """Run the closed loop and return the full trace.

        With an ambient progress sink installed (:mod:`repro.progress` -- the
        job engine's streaming path), ``("simulate", tick, steps)`` is emitted
        roughly every 4% of the horizon; with no sink (every synchronous
        caller) the loop body only pays an ``is None`` test per tick.
        """
        if duration_s <= 0 or dt <= 0:
            raise ValueError("duration_s and dt must be positive")
        steps = int(round(duration_s / dt))
        records = {name: np.zeros(steps) for name in (
            "time", "speed", "temperature", "speed_setpoint", "temperature_setpoint",
            "drive", "cooling", "tripped", "bpcs_speed", "bpcs_temperature",
        )}
        sink = progress_sink()
        report_stride = max(1, steps // 25)

        previous_time = 0.0
        for step_index in range(steps):
            time_s = step_index * dt
            self._now = time_s
            self._dispatch_operator(previous_time, time_s + dt)
            self._dispatch_interventions(time_s)
            self._publish_measurements(time_s)
            self.bus.deliver()

            drive, cooling = self.controller.compute(
                self._bpcs_view["speed"], self._bpcs_view["temperature"], dt
            )
            self.sis.check(
                time_s,
                self._sis_view["temperature"],
                self._sis_view["speed"],
                self.controller.speed_setpoint_rpm,
            )
            drive *= self.sis.drive_permission()
            state = self.plant.step(dt, drive, cooling, self.heat_disturbance_w)

            records["time"][step_index] = time_s
            records["speed"][step_index] = state.speed_rpm
            records["temperature"][step_index] = state.temperature_c
            records["speed_setpoint"][step_index] = (
                self.controller.speed_setpoint_rpm
                if self.controller.mode is ControlMode.RUN
                else 0.0
            )
            records["temperature_setpoint"][step_index] = self.controller.temperature_setpoint_c
            records["drive"][step_index] = drive
            records["cooling"][step_index] = cooling
            records["tripped"][step_index] = float(self.sis.tripped)
            records["bpcs_speed"][step_index] = self._bpcs_view["speed"]
            records["bpcs_temperature"][step_index] = self._bpcs_view["temperature"]
            previous_time = time_s + dt
            if sink is not None and (
                (step_index + 1) % report_stride == 0 or step_index + 1 == steps
            ):
                sink("simulate", step_index + 1, steps)

        return SimulationTrace(
            times_s=records["time"],
            speeds_rpm=records["speed"],
            temperatures_c=records["temperature"],
            speed_setpoints_rpm=records["speed_setpoint"],
            temperature_setpoints_c=records["temperature_setpoint"],
            drive_commands=records["drive"],
            cooling_commands=records["cooling"],
            sis_tripped=records["tripped"].astype(bool),
            bpcs_speed_view_rpm=records["bpcs_speed"],
            bpcs_temperature_view_c=records["bpcs_temperature"],
        )

    # -- per-step helpers ---------------------------------------------------------

    def _dispatch_operator(self, start_s: float, end_s: float) -> None:
        for action in self.schedule.due(start_s, end_s):
            self.bus.send(WORKSTATION, BPCS, action.kind, action.payload, timestamp_s=self._now)

    def _dispatch_interventions(self, time_s: float) -> None:
        for intervention in self.interventions:
            is_active = intervention.active(time_s)
            if is_active and not intervention.activated:
                intervention.activated = True
                intervention.on_activate(self, time_s)
            if is_active:
                intervention.on_step(self, time_s)
            elif intervention.activated and intervention.duration_s is not None:
                if time_s > intervention.start_time_s + intervention.duration_s:
                    intervention.on_deactivate(self, time_s)
                    intervention.activated = False

    def _publish_measurements(self, time_s: float) -> None:
        temperature = self.temperature_sensor.measure(self.plant.state.temperature_c)
        speed = self.tachometer.measure(self.plant.state.speed_rpm)
        for receiver in (BPCS, SIS):
            self.bus.send(
                self.temperature_sensor.name, receiver, MessageKind.MEASUREMENT,
                {"variable": "temperature", "value": temperature}, timestamp_s=time_s,
            )
            self.bus.send(
                self.tachometer.name, receiver, MessageKind.MEASUREMENT,
                {"variable": "speed", "value": speed}, timestamp_s=time_s,
            )

"""Measurement devices of the SCADA centrifuge.

The paper specifies the instrumentation envelope: a passive temperature probe
accurate to +/- 0.2 deg C and speed regulation to within +/- 1 rpm (which
requires a tachometer at least that good).  Sensors add deterministic
pseudo-random noise, bias, and quantization, and expose a spoofing hook so the
attack layer can override readings without reaching into simulation internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Sensor:
    """A generic noisy, quantized scalar sensor.

    Parameters
    ----------
    name:
        Sensor identifier used in messages and traces.
    noise_std:
        Standard deviation of additive Gaussian noise.
    bias:
        Constant offset added to every reading.
    quantization:
        Reading resolution; ``0`` disables quantization.
    seed:
        Seed for the sensor's private random generator (deterministic runs).
    """

    name: str
    noise_std: float = 0.0
    bias: float = 0.0
    quantization: float = 0.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)
    _override: float | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.quantization < 0:
            raise ValueError("quantization must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def measure(self, true_value: float) -> float:
        """Return a reading of ``true_value`` (or the spoofed override)."""
        if self._override is not None:
            return self._override
        reading = true_value + self.bias
        if self.noise_std > 0:
            reading += float(self._rng.normal(0.0, self.noise_std))
        if self.quantization > 0:
            reading = round(reading / self.quantization) * self.quantization
        return reading

    # -- attack hooks --------------------------------------------------------

    def spoof(self, value: float) -> None:
        """Force every subsequent reading to ``value`` until cleared."""
        self._override = value

    def clear_spoof(self) -> None:
        """Remove a spoofed override."""
        self._override = None

    @property
    def spoofed(self) -> bool:
        """Whether the sensor currently returns a spoofed value."""
        return self._override is not None


class TemperatureSensor(Sensor):
    """The precision passive temperature probe (+/- 0.2 deg C)."""

    def __init__(self, name: str = "temperature-probe", seed: int = 11) -> None:
        super().__init__(
            name=name,
            noise_std=0.2 / 3.0,
            bias=0.0,
            quantization=0.01,
            seed=seed,
        )


class Tachometer(Sensor):
    """The rotor speed sensor (+/- 1 rpm regulation requires sub-rpm noise)."""

    def __init__(self, name: str = "tachometer", seed: int = 13) -> None:
        super().__init__(
            name=name,
            noise_std=0.3,
            bias=0.0,
            quantization=0.1,
            seed=seed,
        )

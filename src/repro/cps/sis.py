"""The safety instrumented system (SIS) of the centrifuge.

The paper's demonstration includes a "SIS platform: a redundant safety
monitor for the centrifuge controller, for example, temperature is too high
for commanded mode or speed is too high".  The SIS reads its own copies of
the measurements, compares them against trip limits, and, when a limit is
exceeded persistently, latches a trip that forces the rotor drive to zero.

The SIS can be *disabled* -- this is the hook the Triton-like scenario uses:
the paper explicitly cites Triton, "where malware was used to disable the
safety systems of a petrochemical plant".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SisLimits:
    """Trip limits of the safety monitor."""

    temperature_high_c: float = 28.0
    speed_high_rpm: float = 9_500.0
    speed_over_setpoint_rpm: float = 500.0
    confirmation_samples: int = 3

    def __post_init__(self) -> None:
        if self.confirmation_samples < 1:
            raise ValueError("confirmation_samples must be at least 1")


@dataclass
class SafetyInstrumentedSystem:
    """Redundant safety monitor with latched trip behaviour."""

    limits: SisLimits = field(default_factory=SisLimits)
    enabled: bool = True
    tripped: bool = field(default=False, init=False)
    trip_reason: str = field(default="", init=False)
    trip_time_s: float | None = field(default=None, init=False)
    _violation_streak: int = field(default=0, init=False, repr=False)

    def reset(self) -> None:
        """Clear any latched trip (requires local operator action in reality)."""
        self.tripped = False
        self.trip_reason = ""
        self.trip_time_s = None
        self._violation_streak = 0

    def disable(self) -> None:
        """Disable the safety function (the Triton-style attack action)."""
        self.enabled = False

    def enable(self) -> None:
        """Re-enable the safety function."""
        self.enabled = True

    def check(
        self,
        time_s: float,
        temperature_c: float,
        speed_rpm: float,
        commanded_speed_rpm: float,
    ) -> bool:
        """Evaluate the trip logic for one sample; returns the trip state.

        A violation must persist for ``confirmation_samples`` consecutive
        samples before the trip latches, to avoid spurious trips on sensor
        noise.
        """
        if self.tripped:
            return True
        if not self.enabled:
            return False
        reason = self._violation(temperature_c, speed_rpm, commanded_speed_rpm)
        if reason:
            self._violation_streak += 1
            if self._violation_streak >= self.limits.confirmation_samples:
                self.tripped = True
                self.trip_reason = reason
                self.trip_time_s = time_s
        else:
            self._violation_streak = 0
        return self.tripped

    def _violation(
        self, temperature_c: float, speed_rpm: float, commanded_speed_rpm: float
    ) -> str:
        if temperature_c > self.limits.temperature_high_c:
            return (
                f"temperature {temperature_c:.1f} C above trip limit "
                f"{self.limits.temperature_high_c:.1f} C"
            )
        if speed_rpm > self.limits.speed_high_rpm:
            return (
                f"speed {speed_rpm:.0f} rpm above trip limit "
                f"{self.limits.speed_high_rpm:.0f} rpm"
            )
        if speed_rpm > commanded_speed_rpm + self.limits.speed_over_setpoint_rpm:
            return (
                f"speed {speed_rpm:.0f} rpm exceeds commanded mode "
                f"{commanded_speed_rpm:.0f} rpm by more than "
                f"{self.limits.speed_over_setpoint_rpm:.0f} rpm"
            )
        return ""

    def drive_permission(self) -> float:
        """Multiplier applied to the drive command (0 when tripped)."""
        return 0.0 if self.tripped else 1.0

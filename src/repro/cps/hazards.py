"""Hazard definitions and trace-level hazard evaluation.

The paper defines the loss conditions of the demonstration process directly:

* "If the temperature is too low, the separation will not be productive and
  the result is a viscous product."        -> :attr:`HazardKind.PRODUCT_VISCOUS`
* "If the temperature is too high, the chemical composition of the solution
  in the centrifuge tube can become unstable and cause an explosion/fire."
                                            -> :attr:`HazardKind.THERMAL_RUNAWAY`
* "If the rotor speed fluctuates beyond +/- 20 rpm of the set point the
  resultant product is not useful."        -> :attr:`HazardKind.SPEED_DEVIATION`

Mapping associated attack vectors to these physical consequences is exactly
the capability the paper says existing IT-centric tools lack.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class HazardKind(enum.Enum):
    """The hazardous / loss conditions of the centrifuge process."""

    THERMAL_RUNAWAY = "thermal_runaway"
    PRODUCT_VISCOUS = "product_viscous"
    SPEED_DEVIATION = "speed_deviation"
    ROTOR_OVERSPEED = "rotor_overspeed"

    @property
    def is_safety_hazard(self) -> bool:
        """Whether the condition threatens people/equipment (vs. product loss)."""
        return self in (HazardKind.THERMAL_RUNAWAY, HazardKind.ROTOR_OVERSPEED)


@dataclass(frozen=True)
class HazardEvent:
    """One contiguous interval during which a hazard condition held."""

    kind: HazardKind
    start_time_s: float
    end_time_s: float
    peak_value: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.end_time_s < self.start_time_s:
            raise ValueError("hazard event ends before it starts")

    @property
    def duration_s(self) -> float:
        """Length of the hazardous interval."""
        return self.end_time_s - self.start_time_s


@dataclass
class HazardReport:
    """All hazard events found in a simulation trace."""

    events: list[HazardEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: HazardKind) -> list[HazardEvent]:
        """Events of one hazard kind."""
        return [event for event in self.events if event.kind == kind]

    def occurred(self, kind: HazardKind) -> bool:
        """Whether a hazard of the given kind occurred at all."""
        return any(event.kind == kind for event in self.events)

    @property
    def any_safety_hazard(self) -> bool:
        """Whether any safety (not just product-loss) hazard occurred."""
        return any(event.kind.is_safety_hazard for event in self.events)

    @property
    def product_lost(self) -> bool:
        """Whether the batch is lost (any hazard implies product loss)."""
        return bool(self.events)

    def summary(self) -> dict[str, int]:
        """Event counts per hazard kind."""
        counts = {kind.value: 0 for kind in HazardKind}
        for event in self.events:
            counts[event.kind.value] += 1
        return counts


@dataclass(frozen=True)
class HazardMonitor:
    """Evaluates a simulation trace against the process hazard boundaries.

    Parameters
    ----------
    temperature_high_c:
        Above this the solution can destabilize (explosion / fire).
    temperature_low_c:
        Below this the product is viscous and separation unproductive.
    speed_tolerance_rpm:
        The +/- band around the set point outside which product is not useful.
    overspeed_rpm:
        Mechanical rotor limit.
    settling_time_s:
        Speed-deviation is only evaluated this long after the most recent
        set-point change, so ordinary transients do not count as hazards.
    """

    temperature_high_c: float = 30.0
    temperature_low_c: float = 12.0
    speed_tolerance_rpm: float = 20.0
    overspeed_rpm: float = 10_000.0
    settling_time_s: float = 60.0

    def evaluate(
        self,
        times_s: np.ndarray,
        temperatures_c: np.ndarray,
        speeds_rpm: np.ndarray,
        speed_setpoints_rpm: np.ndarray,
        running: np.ndarray | None = None,
    ) -> HazardReport:
        """Evaluate all hazard conditions over a trace."""
        times_s = np.asarray(times_s, dtype=float)
        temperatures_c = np.asarray(temperatures_c, dtype=float)
        speeds_rpm = np.asarray(speeds_rpm, dtype=float)
        speed_setpoints_rpm = np.asarray(speed_setpoints_rpm, dtype=float)
        if running is None:
            running = speed_setpoints_rpm > 0.0
        running = np.asarray(running, dtype=bool)
        lengths = {len(times_s), len(temperatures_c), len(speeds_rpm),
                   len(speed_setpoints_rpm), len(running)}
        if len(lengths) != 1:
            raise ValueError("trace arrays must have equal length")

        report = HazardReport()
        report.events.extend(
            _intervals(
                times_s,
                temperatures_c > self.temperature_high_c,
                temperatures_c,
                HazardKind.THERMAL_RUNAWAY,
                "solution temperature above instability limit",
            )
        )
        report.events.extend(
            _intervals(
                times_s,
                running & (temperatures_c < self.temperature_low_c),
                -temperatures_c,
                HazardKind.PRODUCT_VISCOUS,
                "solution temperature below productive separation range",
            )
        )
        deviation = np.abs(speeds_rpm - speed_setpoints_rpm)
        settled = self._settled_mask(times_s, speed_setpoints_rpm)
        report.events.extend(
            _intervals(
                times_s,
                running & settled & (deviation > self.speed_tolerance_rpm),
                deviation,
                HazardKind.SPEED_DEVIATION,
                "rotor speed outside +/- tolerance of the set point",
            )
        )
        report.events.extend(
            _intervals(
                times_s,
                speeds_rpm > self.overspeed_rpm,
                speeds_rpm,
                HazardKind.ROTOR_OVERSPEED,
                "rotor speed above mechanical limit",
            )
        )
        report.events.sort(key=lambda event: event.start_time_s)
        return report

    def _settled_mask(
        self, times_s: np.ndarray, setpoints_rpm: np.ndarray
    ) -> np.ndarray:
        """True where the set point has been constant for the settling time."""
        settled = np.zeros(len(times_s), dtype=bool)
        last_change_time = times_s[0] if len(times_s) else 0.0
        for i in range(len(times_s)):
            if i > 0 and setpoints_rpm[i] != setpoints_rpm[i - 1]:
                last_change_time = times_s[i]
            settled[i] = (times_s[i] - last_change_time) >= self.settling_time_s
        return settled


def _intervals(
    times_s: np.ndarray,
    condition: np.ndarray,
    magnitude: np.ndarray,
    kind: HazardKind,
    description: str,
) -> list[HazardEvent]:
    """Turn a boolean condition series into contiguous hazard events."""
    events: list[HazardEvent] = []
    start_index: int | None = None
    for i, active in enumerate(condition):
        if active and start_index is None:
            start_index = i
        elif not active and start_index is not None:
            events.append(_event(times_s, magnitude, start_index, i - 1, kind, description))
            start_index = None
    if start_index is not None:
        events.append(
            _event(times_s, magnitude, start_index, len(condition) - 1, kind, description)
        )
    return events


def _event(
    times_s: np.ndarray,
    magnitude: np.ndarray,
    start: int,
    end: int,
    kind: HazardKind,
    description: str,
) -> HazardEvent:
    peak = float(np.max(np.abs(magnitude[start : end + 1])))
    return HazardEvent(
        kind=kind,
        start_time_s=float(times_s[start]),
        end_time_s=float(times_s[end]),
        peak_value=peak,
        description=description,
    )

"""Dependency-free Prometheus-style metrics: counters, gauges, histograms.

The serving stack needs latency/saturation/cache visibility per operation,
per workspace, and per worker -- and the container bakes in no client
library -- so this module is a small, honest reimplementation of the
Prometheus data model over the stdlib:

* a :class:`MetricsRegistry` owns metric *families* (one name + help +
  type + label names); ``family.labels(...)`` returns the mutable child
  for one label-value combination,
* counters only go up, gauges go anywhere, histograms are fixed-bucket
  (cumulative ``le`` buckets plus ``_sum``/``_count``, exactly the
  exposition shape ``histogram_quantile`` expects),
* everything is thread-safe: family creation takes the registry lock,
  child mutation takes a per-child lock (a leaf lock -- safe to bump
  while holding any engine/manager lock),
* :meth:`MetricsRegistry.render` emits the text exposition format and
  :meth:`MetricsRegistry.snapshot` emits a JSON-able form that
  :func:`render_snapshots` merges across pre-forked workers, labelling
  every series with its ``worker`` -- the fork-aware half of the design
  (each worker owns its registry; the scrape merges serialized
  snapshots, never shared memory),
* :meth:`MetricsRegistry.reset` zeroes every child for
  ``post_fork_reset()`` -- a worker must not report the parent's
  warm-up traffic.

No background threads, no files, no sockets: persistence and transport
belong to the HTTP layer (:mod:`repro.service.http`).
"""

from __future__ import annotations

import math
import re
import threading

#: Valid metric family names (prometheus data model).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Valid label names (no leading ``__``, which is reserved).
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets, in seconds: sub-millisecond warm cache hits up
#: through multi-second cold paper-scale requests.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Content type a conforming scraper expects for the text exposition.
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Exposition number formatting: integers bare, floats via repr."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class _Gauge:
    """A value that can go anywhere."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class _Histogram:
    """Fixed cumulative buckets plus a running sum and count."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # trailing slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            # First bucket whose upper bound covers the value; the +Inf
            # slot catches everything (cumulative counts are computed at
            # render time, so one increment per observation suffices).
            index = len(self.buckets)
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    index = position
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.buckets) + 1)
            self.sum = 0.0
            self.count = 0


class _Family:
    """One metric name: type, help, label names, and labelled children."""

    __slots__ = ("name", "kind", "help", "labelnames", "buckets", "_children", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = labelnames
        self.buckets = buckets
        self._children: dict[tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def labels(self, *values, **kwargs):
        """The child for one label-value combination (created on first use)."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.labelnames)
            except KeyError as error:
                raise ValueError(
                    f"{self.name} needs labels {self.labelnames}, got {sorted(kwargs)}"
                ) from error
            if len(kwargs) != len(self.labelnames):
                raise ValueError(
                    f"{self.name} needs labels {self.labelnames}, got {sorted(kwargs)}"
                )
        key = tuple(str(value) for value in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes {len(self.labelnames)} label values, got {len(key)}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if self.kind == "counter":
                        child = _Counter()
                    elif self.kind == "gauge":
                        child = _Gauge()
                    else:
                        child = _Histogram(self.buckets)
                    self._children[key] = child
        return child

    # Unlabelled families act as their own single child.

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """A process-local registry of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        labelnames,
        buckets=None,
    ) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labelnames = tuple(labelnames)
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing.kind != kind or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            family = _Family(name, kind, help_text, labelnames, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str, labelnames=()) -> _Family:
        return self._register(name, "counter", help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames=()) -> _Family:
        return self._register(name, "gauge", help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames=(),
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _Family:
        buckets = tuple(sorted(float(bound) for bound in buckets))
        if not buckets:
            raise ValueError("histograms need at least one bucket bound")
        return self._register(name, "histogram", help_text, labelnames, buckets)

    def reset(self) -> None:
        """Zero every child (``post_fork_reset``: families survive, data dies)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for _, child in family.children():
                child.reset()

    # -- serialization ---------------------------------------------------------

    def snapshot(self, worker: str = "0") -> dict:
        """A JSON-able copy of every series, tagged with its worker label.

        This is the multi-process side-channel format: each pre-forked
        worker serializes its registry to a file, and whichever worker
        answers ``GET /metrics`` merges every snapshot with
        :func:`render_snapshots`.
        """
        with self._lock:
            families = list(self._families.values())
        payload = []
        for family in families:
            series = []
            for key, child in family.children():
                if family.kind == "histogram":
                    with child._lock:
                        series.append(
                            {
                                "labels": list(key),
                                "counts": list(child.counts),
                                "sum": child.sum,
                                "count": child.count,
                            }
                        )
                else:
                    series.append({"labels": list(key), "value": child.value})
            entry = {
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "labelnames": list(family.labelnames),
                "series": series,
            }
            if family.buckets is not None:
                entry["buckets"] = list(family.buckets)
            payload.append(entry)
        return {"worker": str(worker), "families": payload}

    def render(self, worker: str = "0") -> str:
        """This registry alone as text exposition (single-process serving)."""
        return render_snapshots([self.snapshot(worker)])


def _series_labels(
    labelnames: list[str], values: list[str], worker: str, extra: str = ""
) -> str:
    pairs = [
        f'{name}="{escape_label_value(str(value))}"'
        for name, value in zip(labelnames, values)
    ]
    pairs.append(f'worker="{escape_label_value(worker)}"')
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}"


def render_snapshots(snapshots: list[dict]) -> str:
    """Merge worker snapshots into one text exposition document.

    Families with the same name are unified under one ``# HELP``/``# TYPE``
    header (first snapshot wins on metadata); every series carries its
    snapshot's ``worker`` label, so per-fleet totals are a ``sum by`` away
    and per-worker skew stays visible.  Output ordering is deterministic:
    families by name, series by label values then worker.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        worker = str(snapshot.get("worker", "0"))
        for family in snapshot.get("families", []):
            name = family["name"]
            entry = merged.setdefault(
                name,
                {
                    "type": family.get("type", "gauge"),
                    "help": family.get("help", ""),
                    "labelnames": list(family.get("labelnames", [])),
                    "buckets": family.get("buckets"),
                    "series": [],
                },
            )
            for series in family.get("series", []):
                entry["series"].append((list(series.get("labels", [])), worker, series))
    lines: list[str] = []
    for name in sorted(merged):
        entry = merged[name]
        lines.append(f"# HELP {name} {escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for labels, worker, series in sorted(
            entry["series"], key=lambda item: (item[0], item[1])
        ):
            if entry["type"] == "histogram":
                buckets = entry["buckets"] or []
                counts = series.get("counts") or []
                cumulative = 0
                for bound, count in zip(buckets, counts):
                    cumulative += count
                    labelstr = _series_labels(
                        entry["labelnames"], labels, worker,
                        extra=f'le="{format_value(bound)}"',
                    )
                    lines.append(f"{name}_bucket{labelstr} {cumulative}")
                cumulative += counts[len(buckets)] if len(counts) > len(buckets) else 0
                inf_labels = _series_labels(
                    entry["labelnames"], labels, worker, extra='le="+Inf"'
                )
                lines.append(f"{name}_bucket{inf_labels} {cumulative}")
                plain = _series_labels(entry["labelnames"], labels, worker)
                lines.append(f"{name}_sum{plain} {format_value(series.get('sum', 0.0))}")
                lines.append(f"{name}_count{plain} {series.get('count', 0)}")
            else:
                labelstr = _series_labels(entry["labelnames"], labels, worker)
                lines.append(f"{name}{labelstr} {format_value(series.get('value', 0.0))}")
    return "\n".join(lines) + "\n" if lines else ""

"""A small, strict parser for the Prometheus text exposition format.

Three consumers share it: the exposition-format tests (assert ``# HELP``/
``# TYPE`` discipline, label escaping, cumulative histogram buckets),
``cpsec stats`` (pretty-print a scrape), and the CI smoke jobs (fail the
build on an unparseable ``/metrics`` body or zero request counts).

The parser accepts exactly what :mod:`repro.obs.metrics` renders -- the
common subset every Prometheus scraper understands -- and raises
:class:`ExpositionParseError` with a line number on anything else, so a
formatting regression fails loudly instead of scraping as garbage.
"""

from __future__ import annotations

import re

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)


class ExpositionParseError(ValueError):
    """Raised on any line the exposition grammar does not allow."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(f"line {line_number}: {reason}: {line!r}")
        self.line_number = line_number
        self.line = line
        self.reason = reason


class Sample:
    """One parsed sample line."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str], value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value


class Family:
    """One parsed metric family: metadata plus its samples."""

    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, type_: str, help_: str) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.samples: list[Sample] = []


def _unescape_label(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_value(raw: str, line_number: int, line: str) -> float:
    if raw == "+Inf":
        return float("inf")
    if raw == "-Inf":
        return float("-inf")
    if raw == "NaN":
        return float("nan")
    try:
        return float(raw)
    except ValueError as error:
        raise ExpositionParseError(line_number, line, f"bad value: {error}") from None


def _parse_labels(raw: str, line_number: int, line: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR_RE.match(raw, position)
        if match is None:
            raise ExpositionParseError(line_number, line, "malformed label pair")
        name = match.group("name")
        if name in labels:
            raise ExpositionParseError(line_number, line, f"duplicate label {name!r}")
        labels[name] = _unescape_label(match.group("value"))
        position = match.end()
    return labels


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse one exposition document into families keyed by name.

    Enforced discipline, beyond the grammar itself:

    * every sample belongs to a family announced by ``# TYPE`` (histogram
      samples match under their ``_bucket``/``_sum``/``_count`` suffixes),
    * ``# TYPE`` appears at most once per family, with a known type,
    * histogram buckets are cumulative (non-decreasing with ``le``) and
      end in an ``le="+Inf"`` bucket equal to the series ``_count``,
    * counter and histogram-count values are finite and non-negative.
    """
    families: dict[str, Family] = {}
    helps: dict[str, str] = {}
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            if not parts or not parts[0]:
                raise ExpositionParseError(line_number, line, "HELP without a name")
            helps[parts[0]] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise ExpositionParseError(line_number, line, "malformed TYPE line")
            name, type_ = parts
            if type_ not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ExpositionParseError(line_number, line, f"unknown type {type_!r}")
            if name in families:
                raise ExpositionParseError(line_number, line, f"duplicate TYPE for {name!r}")
            families[name] = Family(name, type_, helps.get(name, ""))
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionParseError(line_number, line, "unparseable sample")
        sample_name = match.group("name")
        family = families.get(sample_name)
        if family is None:
            for suffix in ("_bucket", "_sum", "_count"):
                if sample_name.endswith(suffix):
                    candidate = families.get(sample_name[: -len(suffix)])
                    if candidate is not None and candidate.type == "histogram":
                        family = candidate
                        break
        if family is None:
            raise ExpositionParseError(
                line_number, line, "sample before its # TYPE line"
            )
        labels = _parse_labels(match.group("labels") or "", line_number, line)
        value = _parse_value(match.group("value"), line_number, line)
        if family.type in ("counter", "histogram") and not value >= 0:
            raise ExpositionParseError(
                line_number, line, f"{family.type} value must be >= 0"
            )
        family.samples.append(Sample(sample_name, labels, value))
    _check_histograms(families)
    return families


def _check_histograms(families: dict[str, Family]) -> None:
    for family in families.values():
        if family.type != "histogram":
            continue
        series: dict[tuple, dict] = {}
        for sample in family.samples:
            key = tuple(
                sorted(
                    (k, v) for k, v in sample.labels.items() if k != "le"
                )
            )
            entry = series.setdefault(key, {"buckets": [], "count": None})
            if sample.name.endswith("_bucket"):
                entry["buckets"].append(
                    (float(_le_bound(sample.labels.get("le", ""))), sample.value)
                )
            elif sample.name.endswith("_count"):
                entry["count"] = sample.value
        for key, entry in series.items():
            buckets = sorted(entry["buckets"])
            previous = 0.0
            for bound, value in buckets:
                if value < previous:
                    raise ExpositionParseError(
                        0, family.name, f"non-cumulative buckets for {key}"
                    )
                previous = value
            if not buckets or buckets[-1][0] != float("inf"):
                raise ExpositionParseError(
                    0, family.name, f"missing +Inf bucket for {key}"
                )
            if entry["count"] is not None and buckets[-1][1] != entry["count"]:
                raise ExpositionParseError(
                    0, family.name, f"+Inf bucket != _count for {key}"
                )


def _le_bound(raw: str) -> float:
    if raw == "+Inf":
        return float("inf")
    return float(raw)


def sum_samples(
    families: dict[str, Family], name: str, **label_filter: str
) -> float:
    """Sum a family's sample values across label combinations.

    The fleet-total helper: ``sum_samples(parsed, "cpsec_requests_total")``
    adds every worker's counter; keyword filters restrict to matching
    labels (``operation="associate"``).
    """
    family = families.get(name)
    if family is None:
        return 0.0
    total = 0.0
    for sample in family.samples:
        if sample.name != name:
            continue  # skip _bucket/_sum/_count of a histogram family
        if all(sample.labels.get(k) == v for k, v in label_filter.items()):
            total += sample.value
    return total

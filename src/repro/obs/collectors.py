"""Scrape-time collectors: live service/jobs state as metric families.

The event-driven counters (request counts, latencies, cache hits, job
lifecycle) live in the service's :class:`~repro.obs.metrics.MetricsRegistry`
and are bumped where the events happen.  Everything that is *state* rather
than events -- cache occupancy, queue depths, per-flow virtual-time passes,
journal totals -- is read here at scrape time from the same objects
``/healthz`` reports, so the two surfaces can never disagree: ``/healthz``
keeps its byte-compatible JSON shape, ``/metrics`` exposes the identical
numbers in exposition form, and both read one source of truth.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def response_cache_info(cache) -> dict:
    """The ``/healthz`` ``response_cache`` block (shared with ``/metrics``)."""
    return {
        "enabled": cache is not None,
        "entries": len(cache) if cache is not None else 0,
        "evictions": cache.evictions if cache is not None else 0,
        "max_entries": cache.max_entries if cache is not None else 0,
    }


def collect_families(service, jobs=None, worker: str = "0") -> list[dict]:
    """Gauge/counter families describing the service's current state.

    Returned in :meth:`MetricsRegistry.snapshot` family form so the HTTP
    layer can append them to the live registry's snapshot and render (or
    merge across workers) with one code path.
    """
    registry = MetricsRegistry()
    _collect_service(registry, service)
    if jobs is not None:
        _collect_jobs(registry, jobs)
    return registry.snapshot(worker)["families"]


def _collect_service(registry: MetricsRegistry, service) -> None:
    health = service.health()

    uptime = registry.gauge("cpsec_uptime_seconds", "Seconds since service start.")
    uptime.set(health.get("uptime_s", 0.0))

    cache = registry.gauge(
        "cpsec_response_cache_entries", "Whole-response cache entries currently held."
    )
    cache_info = health.get("response_cache", {})
    cache.set(cache_info.get("entries", 0))
    evictions = registry.counter(
        "cpsec_response_cache_evictions_total",
        "Whole-response cache entries dropped by the LRU bound.",
    )
    evictions.inc(cache_info.get("evictions", 0))

    reg_info = health.get("workspace_registry", {})
    registered = registry.gauge(
        "cpsec_workspaces_registered", "Workspaces registered with the service."
    )
    registered.set(reg_info.get("registered", 0))
    warm = registry.gauge(
        "cpsec_workspaces_warm", "Registered workspaces currently loaded."
    )
    warm.set(reg_info.get("warm", 0))
    ws_evictions = registry.counter(
        "cpsec_workspace_evictions_total",
        "Warm workspaces unloaded by the warm-workspace LRU bound.",
    )
    ws_evictions.inc(reg_info.get("evictions", 0))

    hits = registry.counter(
        "cpsec_workspace_hits_total",
        "Requests routed to a registered workspace.",
        ("workspace",),
    )
    loads = registry.counter(
        "cpsec_workspace_loads_total",
        "Artifact loads of a registered workspace.",
        ("workspace",),
    )
    for name, info in sorted(health.get("workspaces", {}).items()):
        hits.labels(name).inc(info.get("hits", 0))
        loads.labels(name).inc(info.get("loads", 0))

    stats_counter = registry.counter(
        "cpsec_engine_stats_total",
        "Engine cache/reuse/pruning counters (one consistent snapshot per "
        "engine; includes shards_skipped and candidates_pruned).",
        ("engine", "scale", "counter"),
    )
    cache_entries = registry.gauge(
        "cpsec_engine_cache_entries",
        "Entries currently held in one engine result cache.",
        ("engine", "scale", "cache"),
    )
    for index, engine in enumerate(health.get("engines", [])):
        scale = str(engine.get("scale"))
        for counter_name, value in (engine.get("stats") or {}).items():
            stats_counter.labels(str(index), scale, counter_name).inc(value)
        info = engine.get("cache_info") or {}
        for kind in ("attribute", "text", "vulnerability"):
            cache_entries.labels(str(index), scale, kind).set(
                info.get(f"{kind}_entries", 0)
            )


def _collect_jobs(registry: MetricsRegistry, jobs) -> None:
    stats = jobs.stats()

    by_state = registry.gauge(
        "cpsec_jobs", "Jobs known to the manager, by state.", ("state",)
    )
    for state, count in (stats.get("by_state") or {}).items():
        by_state.labels(state).set(count)

    waiting = registry.gauge(
        "cpsec_jobs_waiting_on_dependencies",
        "Queued jobs blocked on unfinished dependency jobs.",
    )
    waiting.set(stats.get("waiting_on_dependencies", 0))

    draining = registry.gauge(
        "cpsec_jobs_draining", "1 while the manager refuses new submissions."
    )
    draining.set(1 if stats.get("draining") else 0)

    compactions = registry.counter(
        "cpsec_journal_compactions_total", "Journal compaction passes run."
    )
    compactions.inc(stats.get("journal_compactions", 0))
    spilled = registry.counter(
        "cpsec_journal_spilled_results_total",
        "Oversized job results spilled to side files.",
    )
    spilled.inc(stats.get("spilled_results", 0))
    journal_bytes = registry.counter(
        "cpsec_journal_bytes_written_total",
        "Bytes appended to the job journal by this process.",
    )
    journal_bytes.inc(stats.get("journal_bytes", 0))

    retries = stats.get("retries") or {}
    retry_pending = registry.gauge(
        "cpsec_jobs_retry_pending",
        "Failed jobs currently waiting out a retry backoff.",
    )
    retry_pending.set(retries.get("pending", 0))

    dead = registry.gauge(
        "cpsec_jobs_dead_letter",
        "Jobs that exhausted their retry budget and stayed failed.",
    )
    dead.set((stats.get("dead_letter") or {}).get("count", 0))

    degraded = registry.gauge(
        "cpsec_journal_degraded",
        "1 while journal writes are disabled after a persistent I/O error.",
    )
    degraded.set(1 if stats.get("journal_degraded") else 0)

    quota = stats.get("quota")
    if quota is not None:
        # Rejection *events* are counted live by the manager
        # (cpsec_quota_rejections_total); only bucket occupancy is state.
        clients = registry.gauge(
            "cpsec_quota_clients", "Clients with an active quota bucket."
        )
        clients.set(quota.get("clients", 0))

    scheduler = stats.get("scheduler") or {}
    depth = registry.gauge(
        "cpsec_scheduler_depth", "Queued jobs per priority class.", ("priority",)
    )
    for priority, count in (scheduler.get("depth") or {}).items():
        depth.labels(priority).set(count)
    dispatched = registry.counter(
        "cpsec_scheduler_dispatched_total",
        "Jobs dispatched per priority class.",
        ("priority",),
    )
    for priority, count in (scheduler.get("dispatched") or {}).items():
        dispatched.labels(priority).inc(count)
    aged = registry.counter(
        "cpsec_scheduler_aged_batch_dispatches_total",
        "Batch jobs dispatched by starvation aging past a full interactive streak.",
    )
    aged.inc(scheduler.get("aged_batch_dispatches", 0))
    passes = registry.counter(
        "cpsec_scheduler_passes_total", "Scheduler dispatch decisions taken."
    )
    passes.inc(scheduler.get("passes", 0))

    flows = scheduler.get("flows") or {}
    flow_pass = registry.gauge(
        "cpsec_scheduler_flow_pass",
        "Per-flow virtual-time pass value of the weighted fair queue.",
        ("flow",),
    )
    flow_queued = registry.gauge(
        "cpsec_scheduler_flow_queued", "Jobs queued per flow.", ("flow",)
    )
    flow_weight = registry.gauge(
        "cpsec_scheduler_flow_weight", "Fair-share weight per flow.", ("flow",)
    )
    flow_dispatched = registry.counter(
        "cpsec_scheduler_flow_dispatched_total",
        "Jobs dispatched per flow.",
        ("flow",),
    )
    for flow, info in sorted(flows.items()):
        flow_pass.labels(flow).set(info.get("pass", 0.0))
        flow_queued.labels(flow).set(info.get("queued", 0))
        flow_weight.labels(flow).set(info.get("weight", 0.0))
        flow_dispatched.labels(flow).inc(info.get("dispatched", 0))

"""Ambient request tracing: trace ids, named spans, slow-request lines.

The same contextvar seam as :mod:`repro.progress`: the HTTP handler (or a
test) installs a :class:`Trace` around one request with :func:`trace`, and
the layers underneath annotate it without ever threading a trace argument
through the service API:

* :func:`current_trace_id` is how the response envelope, the job record,
  and the journal pick up the id of the request that caused them,
* :func:`span` times one named stage (``parse``, ``cache_lookup``,
  ``engine_associate``, ``render``); with no active trace it returns a
  shared no-op context manager, so the instrumented hot path costs one
  contextvar read when tracing is off,
* :func:`slow_request_record` shapes the structured JSON log line the
  server emits when a request overruns ``--slow-request-ms``.

Trace ids are caller-controllable (the ``X-Cpsec-Trace-Id`` request header
propagates end to end) but validated: anything that is not a short token
of URL-safe characters is replaced, never echoed into logs or headers.
"""

from __future__ import annotations

import re
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar

#: HTTP header that carries the trace id in both directions.
TRACE_HEADER = "X-Cpsec-Trace-Id"

#: Accepted inbound trace ids: URL-safe tokens, bounded so a hostile header
#: cannot bloat journals or log lines.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,128}$")

_TRACE: ContextVar["Trace | None"] = ContextVar("cpsec_trace", default=None)


class Span:
    """One timed stage of a traced request."""

    __slots__ = ("name", "started_s", "duration_s")

    def __init__(self, name: str, started_s: float) -> None:
        self.name = name
        self.started_s = started_s
        self.duration_s: float | None = None


class Trace:
    """One request's identity and recorded spans."""

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.spans: list[Span] = []


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def valid_trace_id(candidate) -> str | None:
    """``candidate`` if it is a usable trace id, else ``None``."""
    if isinstance(candidate, str) and _TRACE_ID_RE.match(candidate):
        return candidate
    return None


def current_trace() -> Trace | None:
    """The ambient trace, or ``None`` outside any traced request."""
    return _TRACE.get()


def current_trace_id() -> str | None:
    """The ambient trace id, or ``None`` outside any traced request."""
    active = _TRACE.get()
    return active.trace_id if active is not None else None


@contextmanager
def trace(trace_id: str | None = None):
    """Install a trace for the duration of one request.

    ``trace_id`` is honored when valid (the propagation path: an inbound
    header, or a job record re-entering its submitting request's trace);
    otherwise a fresh id is generated.  Yields the :class:`Trace` so the
    caller can read recorded spans afterwards.
    """
    active = Trace(valid_trace_id(trace_id) or new_trace_id())
    token = _TRACE.set(active)
    try:
        yield active
    finally:
        _TRACE.reset(token)


class _NullSpan:
    """Shared no-op context manager for spans outside any trace."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    __slots__ = ("_trace", "_span")

    def __init__(self, active: Trace, name: str) -> None:
        self._trace = active
        self._span = Span(name, time.perf_counter())

    def __enter__(self):
        return self._span

    def __exit__(self, *exc_info):
        self._span.duration_s = time.perf_counter() - self._span.started_s
        self._trace.spans.append(self._span)
        return False


def span(name: str):
    """Time one named stage of the ambient trace (no-op without one)."""
    active = _TRACE.get()
    if active is None:
        return _NULL_SPAN
    return _ActiveSpan(active, name)


def slow_request_record(
    *,
    trace_id: str,
    operation: str,
    duration_s: float,
    threshold_ms: float,
    status: int,
    spans: list[Span],
) -> dict:
    """The structured payload of one slow-request log line.

    Kept as a dict builder (the HTTP layer JSON-encodes and writes it) so
    tests can assert the shape without parsing stderr.
    """
    return {
        "event": "slow_request",
        "trace_id": trace_id,
        "operation": operation,
        "duration_ms": round(duration_s * 1000.0, 3),
        "threshold_ms": threshold_ms,
        "status": status,
        "spans": [
            {
                "name": recorded.name,
                "duration_ms": round((recorded.duration_s or 0.0) * 1000.0, 3),
            }
            for recorded in spans
        ],
    }

"""End-to-end observability for the serving stack.

Three seams, all stdlib-only:

* :mod:`repro.obs.metrics` -- Prometheus-style counters/gauges/histograms
  with label support, text exposition rendering, and fork-aware snapshot
  merging for pre-forked serving,
* :mod:`repro.obs.trace` -- contextvar-based request tracing: trace ids
  (propagated via the ``X-Cpsec-Trace-Id`` header, job records, and the
  journal), named spans around hot stages, slow-request log records,
* :mod:`repro.obs.textparse` -- a strict exposition parser shared by
  ``cpsec stats``, the tests, and the CI smoke scrape.

Scrape-time collectors over live service/jobs state live in
:mod:`repro.obs.collectors`.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    EXPOSITION_CONTENT_TYPE,
    MetricsRegistry,
    render_snapshots,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Span,
    Trace,
    current_trace,
    current_trace_id,
    new_trace_id,
    slow_request_record,
    span,
    trace,
    valid_trace_id,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "EXPOSITION_CONTENT_TYPE",
    "MetricsRegistry",
    "render_snapshots",
    "TRACE_HEADER",
    "Span",
    "Trace",
    "current_trace",
    "current_trace_id",
    "new_trace_id",
    "slow_request_record",
    "span",
    "trace",
    "valid_trace_id",
]

"""Command-line interface (the CYBOK-CLI stand-in).

The authors ship their search engine as a command-line tool [12]; ``cpsec``
exposes the reproduction's pipeline the same way::

    cpsec export --output centrifuge.graphml
    cpsec associate --model centrifuge.graphml --scale 0.1
    cpsec table1 --scale 1.0
    cpsec whatif --scale 0.1
    cpsec simulate --scenario triton-like-sis-bypass
    cpsec validate --model centrifuge.graphml
    cpsec serve --workspace repro.cpsecws --port 8765

Every subcommand is a **thin adapter** over the typed operations API in
:mod:`repro.service`: it builds a request dataclass, hands it to a backend
-- an in-process :class:`~repro.service.service.AnalysisService` by default,
or a :class:`~repro.service.client.ServiceClient` against a running
``cpsec serve`` instance when ``--url`` is given -- and renders the typed
response.  The two backends return byte-identical response JSON for the same
request (the service equivalence tests pin this), so ``--url`` changes where
the work happens, never what is printed.

All commands are offline and deterministic; ``--scale`` controls the size of
the synthetic corpus (1.0 reproduces paper-scale populations).

Search commands accept two artifact options and a parallelism knob:

* ``--workspace PATH`` -- the first run builds the corpus and engine, then
  saves the whole prepared bundle in one file; later runs load it and skip
  corpus synthesis *and* the index rebuild (``cpsec serve`` requires one),
* ``--snapshot PATH`` -- the lighter PR-1 artifact: only the tokenized
  indexes are persisted and the corpus is still regenerated,
* ``--workers N`` -- fans per-component association scoring across a thread
  pool.

Results are identical with or without any of these; an artifact that does
not match the requested corpus is rebuilt (and overwritten) rather than
trusted.  Operational errors -- an unreadable model file, an unreachable
``--url``, an unloadable workspace for ``serve`` -- exit with code 2 and a
one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import __version__
from repro.analysis.report import (
    render_consequences,
    render_posture_summary,
    render_table,
    render_table1_rows,
    render_whatif,
)
from repro.graph.graphml import read_graphml
from repro.service.client import ServiceClient
from repro.service.http import start_server
from repro.service.protocol import (
    AssociateRequest,
    ChainsRequest,
    ConsequencesRequest,
    ExportRequest,
    RecommendRequest,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
)
from repro.service.service import AnalysisService
from repro.workspace import Workspace


class CliError(Exception):
    """An operational CLI failure: printed as one line, exit code 2."""


def _backend(args: argparse.Namespace):
    """The operations backend: in-process service, or a client for ``--url``."""
    url = getattr(args, "url", None)
    if url:
        if getattr(args, "workspace", None) or getattr(args, "snapshot", None):
            print(
                "--workspace/--snapshot are ignored with --url "
                "(artifacts live on the server)",
                file=sys.stderr,
            )
        return ServiceClient(url)
    # No scale ceiling in-process: the request-size guard exists to protect a
    # shared server, not to limit what a local user may synthesize.
    return AnalysisService(
        workspace=getattr(args, "workspace", None),
        snapshot=getattr(args, "snapshot", None),
        max_scale=None,
    )


def _model_payload(args: argparse.Namespace) -> dict | None:
    """The request's model payload: a GraphML file's dict form, or None."""
    path = getattr(args, "model", None)
    if not path:
        return None
    try:
        return read_graphml(path).to_dict()
    except (OSError, ValueError, SyntaxError) as error:
        raise CliError(f"cannot read model {path}: {error}") from error


def _cmd_export(args: argparse.Namespace) -> int:
    response = _backend(args).export(ExportRequest(model=_model_payload(args)))
    try:
        Path(args.output).write_text(response.graphml, encoding="utf-8")
    except OSError as error:
        raise CliError(f"cannot write {args.output}: {error}") from error
    print(f"wrote {response.component_count} components to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    response = _backend(args).validate(ValidateRequest(model=_model_payload(args)))
    if not response.findings:
        print("model is clean")
        return 0
    for finding in response.findings:
        print(finding)
    return 0


def _cmd_associate(args: argparse.Namespace) -> int:
    response = _backend(args).associate(
        AssociateRequest(
            model=_model_payload(args),
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    print(render_posture_summary(response.posture, response.severity_histogram))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    response = _backend(args).table1(
        Table1Request(
            model=_model_payload(args),
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    print(render_table1_rows(response.attribute_table))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    response = _backend(args).whatif(
        WhatIfRequest(
            model=_model_payload(args),
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    print(render_whatif(response.comparison))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    response = _backend(args).simulate(
        SimulateRequest(scenario=args.scenario, duration_s=args.duration)
    )
    print(f"scenario: {response.scenario}")
    print(f"peak temperature: {response.peak_temperature_c:.1f} C")
    print(f"peak speed: {response.peak_speed_rpm:.0f} rpm")
    print(f"SIS tripped: {response.sis_tripped} ({response.sis_trip_reason})")
    rows = [
        (
            event["kind"],
            f"{event['start_time_s']:.0f}",
            f"{event['duration_s']:.0f}",
            f"{event['peak_value']:.1f}",
        )
        for event in response.hazard_events
    ]
    if rows:
        print(render_table(("Hazard", "Start [s]", "Duration [s]", "Peak"), rows))
    else:
        print("no hazard conditions reached")
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    response = _backend(args).chains(
        ChainsRequest(
            model=_model_payload(args),
            target=args.target,
            max_length=args.max_length,
            limit=args.limit,
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    if response.total_chains == 0:
        print(f"no exploit chains reach {args.target!r}")
        return 1
    for chain in response.chains:
        print(chain.describe())
    # Rebuild the summary in its canonical key order: a dict that travelled
    # through sorted-key JSON must print identically to a local one.
    summary = {
        key: response.summary[key]
        for key in ("count", "best_score", "shortest", "entry_points")
        if key in response.summary
    }
    print(f"summary: {summary}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    response = _backend(args).topology(TopologyRequest(model=_model_payload(args)))
    report = response.report
    rows = [
        (
            component.name,
            component.degree,
            f"{component.betweenness:.3f}",
            "yes" if component.is_articulation_point else "-",
            "-" if component.exposure_distance is None else component.exposure_distance,
            component.reachable_components,
        )
        for component in report.ranking_by_betweenness()
    ]
    print(render_table(
        ("Component", "Degree", "Betweenness", "Articulation", "Hops from entry", "Reaches"),
        rows,
    ))
    print(f"attack surface: {', '.join(report.attack_surface) or 'none'}")
    print(f"boundary components: {', '.join(report.boundary_components) or 'none'}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    response = _backend(args).recommend(
        RecommendRequest(
            model=_model_payload(args),
            per_component=args.per_component,
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    if not response.recommendations:
        print("no recommendations derived from the association")
        return 1
    for recommendation in response.recommendations:
        print(recommendation.describe())
        print(f"        what-if to evaluate: {recommendation.whatif_change}")
    return 0


def _cmd_consequences(args: argparse.Namespace) -> int:
    response = _backend(args).consequences(
        ConsequencesRequest(
            record=args.record,
            component=args.component,
            duration_s=args.duration,
        )
    )
    if not response.assessments:
        print(f"no executable scenario covers {args.record}")
        return 1
    print(render_consequences(response.assessments))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    path = Path(args.workspace)
    if not path.exists():
        raise CliError(
            f"workspace artifact not found: {path} "
            f"(build one with `cpsec associate --scale 1.0 --workspace {path}`)"
        )
    try:
        workspace = Workspace.load(path)
    except (ValueError, OSError) as error:
        raise CliError(f"cannot load workspace artifact {path}: {error}") from error
    service = AnalysisService(workspace=workspace, save_artifacts=False)
    # Fit the recorded engine now so the first request hits a warm service
    # instead of paying the TF-IDF fit inside its own latency budget.
    workspace.shared_engine()
    server = start_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    host, port = server.server_address[:2]
    scale = (workspace.params or {}).get("scale")
    print(
        f"serving analysis service on http://{host}:{port} "
        f"(workspace {path}, scale {scale})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``cpsec`` command."""
    parser = argparse.ArgumentParser(
        prog="cpsec",
        description="Model-based cyber-physical systems security analysis.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_url_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url",
            default=None,
            help="base URL of a running `cpsec serve` instance (default: run in-process)",
        )

    def add_model_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", default=None, help="GraphML model path (default: built-in centrifuge)")

    def add_search_options(sub: argparse.ArgumentParser) -> None:
        add_model_option(sub)
        add_url_option(sub)
        sub.add_argument("--scale", type=float, default=0.1, help="synthetic corpus scale (1.0 = paper scale)")
        sub.add_argument("--scorer", default="coverage", choices=("coverage", "cosine", "jaccard"))
        sub.add_argument("--snapshot", default=None, help="index snapshot path (created on first run, loaded afterwards)")
        sub.add_argument("--workspace", default=None, help="one-file workspace artifact path (created on first run; later runs skip corpus synthesis and index builds)")
        sub.add_argument("--workers", type=int, default=1, help="thread-pool fan-out for association scoring (results are identical for any value)")

    export = subparsers.add_parser("export", help="export the centrifuge model to GraphML")
    export.add_argument("--output", default="centrifuge.graphml")
    add_model_option(export)
    add_url_option(export)
    export.set_defaults(func=_cmd_export)

    validate = subparsers.add_parser("validate", help="validate a system model")
    add_model_option(validate)
    add_url_option(validate)
    validate.set_defaults(func=_cmd_validate)

    associate = subparsers.add_parser("associate", help="associate attack vectors with a model")
    add_search_options(associate)
    associate.set_defaults(func=_cmd_associate)

    table1 = subparsers.add_parser("table1", help="reproduce the paper's Table 1")
    add_search_options(table1)
    table1.set_defaults(func=_cmd_table1)

    whatif = subparsers.add_parser("whatif", help="compare the baseline and hardened-workstation architectures")
    add_search_options(whatif)
    whatif.set_defaults(func=_cmd_whatif)

    chains = subparsers.add_parser("chains", help="enumerate exploit chains to a target component")
    add_search_options(chains)
    chains.add_argument("--target", default="BPCS Platform")
    chains.add_argument("--max-length", type=int, default=6)
    chains.add_argument("--limit", type=int, default=10)
    chains.set_defaults(func=_cmd_chains)

    topology = subparsers.add_parser("topology", help="topological security profile of a model")
    add_model_option(topology)
    add_url_option(topology)
    topology.set_defaults(func=_cmd_topology)

    recommend_parser = subparsers.add_parser("recommend", help="derive design-time mitigation recommendations")
    add_search_options(recommend_parser)
    recommend_parser.add_argument("--per-component", type=int, default=3)
    recommend_parser.set_defaults(func=_cmd_recommend)

    simulate = subparsers.add_parser("simulate", help="run the SCADA simulation, optionally under attack")
    simulate.add_argument("--scenario", default="nominal")
    simulate.add_argument("--duration", type=float, default=420.0)
    add_url_option(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    consequences = subparsers.add_parser("consequences", help="map one attack-vector record to physical consequences")
    consequences.add_argument("--record", default="CWE-78")
    consequences.add_argument("--component", default="BPCS Platform")
    consequences.add_argument("--duration", type=float, default=420.0)
    add_url_option(consequences)
    consequences.set_defaults(func=_cmd_consequences)

    serve = subparsers.add_parser("serve", help="serve the analysis operations over HTTP from one warm engine")
    serve.add_argument("--workspace", required=True, help="workspace artifact to serve (see `--workspace` on search commands)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--verbose", action="store_true", help="log every request to stderr")
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``cpsec`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as error:
        print(f"cpsec: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(error.message, file=sys.stderr)
        for key, value in error.details.items():
            if isinstance(value, list) and value:
                print(f"{key.replace('_', ' ')}:", file=sys.stderr)
                for item in value:
                    print(f"  {item}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

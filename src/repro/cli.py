"""Command-line interface (the CYBOK-CLI stand-in).

The authors ship their search engine as a command-line tool [12]; ``cpsec``
exposes the reproduction's pipeline the same way::

    cpsec export --output centrifuge.graphml
    cpsec associate --model centrifuge.graphml --scale 0.1
    cpsec table1 --scale 1.0
    cpsec whatif --scale 0.1
    cpsec simulate --scenario triton-like-sis-bypass
    cpsec validate --model centrifuge.graphml
    cpsec serve --workspace paper=repro.cpsecws --workspace smoke=smoke.cpsecws
    cpsec jobs submit associate --request '{"scale": 1.0}' --watch --url http://127.0.0.1:8765
    cpsec jobs status --url http://127.0.0.1:8765

``serve`` accepts repeated ``--workspace NAME=PATH`` flags and serves every
named workspace warm behind one endpoint; requests and jobs route with their
optional ``workspace`` field (``cpsec jobs submit --workspace-name``).
Long-running operations run as background **jobs** (``cpsec jobs
submit|status|watch|cancel``) with progress streamed over SSE; the server
journals job history (``--job-journal``) and drains gracefully on
SIGINT/SIGTERM.

Every subcommand is a **thin adapter** over the typed operations API in
:mod:`repro.service`: it builds a request dataclass, hands it to a backend
-- an in-process :class:`~repro.service.service.AnalysisService` by default,
or a :class:`~repro.service.client.ServiceClient` against a running
``cpsec serve`` instance when ``--url`` is given -- and renders the typed
response.  The two backends return byte-identical response JSON for the same
request (the service equivalence tests pin this), so ``--url`` changes where
the work happens, never what is printed.

All commands are offline and deterministic; ``--scale`` controls the size of
the synthetic corpus (1.0 reproduces paper-scale populations).

Search commands accept two artifact options and a parallelism knob:

* ``--workspace PATH`` -- the first run builds the corpus and engine, then
  saves the whole prepared bundle in one file; later runs load it and skip
  corpus synthesis *and* the index rebuild (``cpsec serve`` requires one),
* ``--snapshot PATH`` -- the lighter PR-1 artifact: only the tokenized
  indexes are persisted and the corpus is still regenerated,
* ``--workers N`` -- fans per-component association scoring across a thread
  pool.

Results are identical with or without any of these; an artifact that does
not match the requested corpus is rebuilt (and overwritten) rather than
trusted.  Operational errors -- an unreadable model file, an unreachable
``--url``, an unloadable workspace for ``serve`` -- exit with code 2 and a
one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import urllib.error
import urllib.request
from pathlib import Path

from repro import __version__
from repro.analysis.report import (
    render_consequences,
    render_posture_summary,
    render_table,
    render_table1_rows,
    render_whatif,
)
from repro.graph.graphml import read_graphml
from repro.jobs import MERGE_OPERATION, JobManager
from repro.obs.textparse import ExpositionParseError, parse_exposition
from repro.obs.trace import new_trace_id
from repro.service.client import ServiceClient
from repro.service.http import start_server
from repro.service.protocol import (
    JOB_PRIORITIES,
    OPERATIONS,
    AssociateRequest,
    ChainsRequest,
    CompactRequest,
    ConsequencesRequest,
    ExportRequest,
    ExtendRequest,
    RecommendRequest,
    ServiceError,
    SimulateRequest,
    Table1Request,
    TopologyRequest,
    ValidateRequest,
    WhatIfRequest,
    WhatIfResponse,
)
from repro.service.service import AnalysisService


class CliError(Exception):
    """An operational CLI failure: printed as one line, exit code 2."""


def _backend(args: argparse.Namespace):
    """The operations backend: in-process service, or a client for ``--url``."""
    url = getattr(args, "url", None)
    if url:
        if getattr(args, "workspace", None) or getattr(args, "snapshot", None):
            print(
                "--workspace/--snapshot are ignored with --url "
                "(artifacts live on the server)",
                file=sys.stderr,
            )
        return ServiceClient(url)
    # No scale ceiling in-process: the request-size guard exists to protect a
    # shared server, not to limit what a local user may synthesize.
    return AnalysisService(
        workspace=getattr(args, "workspace", None),
        snapshot=getattr(args, "snapshot", None),
        max_scale=None,
    )


def _model_payload(args: argparse.Namespace) -> dict | None:
    """The request's model payload: a GraphML file's dict form, or None."""
    path = getattr(args, "model", None)
    if not path:
        return None
    try:
        return read_graphml(path).to_dict()
    except (OSError, ValueError, SyntaxError) as error:
        raise CliError(f"cannot read model {path}: {error}") from error


def _cmd_export(args: argparse.Namespace) -> int:
    response = _backend(args).export(ExportRequest(model=_model_payload(args)))
    try:
        Path(args.output).write_text(response.graphml, encoding="utf-8")
    except OSError as error:
        raise CliError(f"cannot write {args.output}: {error}") from error
    print(f"wrote {response.component_count} components to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    response = _backend(args).validate(ValidateRequest(model=_model_payload(args)))
    if not response.findings:
        print("model is clean")
        return 0
    for finding in response.findings:
        print(finding)
    return 0


def _cmd_associate(args: argparse.Namespace) -> int:
    response = _backend(args).associate(
        AssociateRequest(
            model=_model_payload(args),
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    print(render_posture_summary(response.posture, response.severity_histogram))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    response = _backend(args).table1(
        Table1Request(
            model=_model_payload(args),
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    print(render_table1_rows(response.attribute_table))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    if args.sweep:
        return _whatif_sweep(args)
    if getattr(args, "async_sweep", False):
        raise CliError("--async needs --sweep FILE (it parallelizes a sweep)")
    response = _backend(args).whatif(
        WhatIfRequest(
            model=_model_payload(args),
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    print(render_whatif(response.comparison))
    return 0


def _read_sweep_variants(path: str) -> dict:
    """Parse a sweep file: ``{"variants": {name: registry-name-or-model}}``."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise CliError(f"cannot read sweep file {path}: {error}") from error
    variants = payload.get("variants") if isinstance(payload, dict) else None
    if not isinstance(variants, dict) or not variants:
        raise CliError(
            'sweep file must be {"variants": {name: registry-name-or-model, ...}}'
        )
    for name, spec in variants.items():
        if not isinstance(spec, (str, dict)):
            raise CliError(
                f"variant {name!r} must be a registry name or a model payload"
            )
    return variants


def _whatif_sweep(args: argparse.Namespace) -> int:
    """Run one what-if comparison per named variant.

    The synchronous path calls the ``whatif`` operation once per variant;
    ``--async`` (with ``--url``) fans the variants out as batch jobs plus a
    ``merge`` join, producing byte-identical per-variant payloads (the
    dependency-chain tests pin this equivalence).
    """
    variants = _read_sweep_variants(args.sweep)
    model = _model_payload(args)
    requests = {
        name: WhatIfRequest(
            model=model,
            variant=spec,
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
        for name, spec in variants.items()
    }
    if getattr(args, "async_sweep", False):
        if not args.url:
            raise CliError(
                "--async sweeps need --url pointing at a running `cpsec serve`"
            )
        client = ServiceClient(args.url)
        labels: dict[str, str] = {}
        for name in sorted(requests):
            job = client.submit("whatif", requests[name], priority="batch")
            labels[job["job_id"]] = name
        merge = client.submit(
            MERGE_OPERATION, {"labels": labels}, depends_on=list(labels)
        )
        record = client.wait(merge["job_id"])
        if record["state"] != "succeeded":
            error = record.get("error") or {}
            raise CliError(
                f"sweep merge {record['state']}: "
                f"{error.get('code')}: {error.get('message')}"
            )
        results = record["result"]["results"]
    else:
        backend = _backend(args)
        results = {
            name: backend.whatif(requests[name]).to_dict()
            for name in sorted(requests)
        }
    for name in sorted(results):
        comparison = WhatIfResponse.from_dict(results[name]).comparison
        print(f"== {name} ==")
        print(render_whatif(comparison))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    response = _backend(args).simulate(
        SimulateRequest(scenario=args.scenario, duration_s=args.duration)
    )
    print(f"scenario: {response.scenario}")
    print(f"peak temperature: {response.peak_temperature_c:.1f} C")
    print(f"peak speed: {response.peak_speed_rpm:.0f} rpm")
    print(f"SIS tripped: {response.sis_tripped} ({response.sis_trip_reason})")
    rows = [
        (
            event["kind"],
            f"{event['start_time_s']:.0f}",
            f"{event['duration_s']:.0f}",
            f"{event['peak_value']:.1f}",
        )
        for event in response.hazard_events
    ]
    if rows:
        print(render_table(("Hazard", "Start [s]", "Duration [s]", "Peak"), rows))
    else:
        print("no hazard conditions reached")
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    response = _backend(args).chains(
        ChainsRequest(
            model=_model_payload(args),
            target=args.target,
            max_length=args.max_length,
            limit=args.limit,
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    if response.total_chains == 0:
        print(f"no exploit chains reach {args.target!r}")
        return 1
    for chain in response.chains:
        print(chain.describe())
    # Rebuild the summary in its canonical key order: a dict that travelled
    # through sorted-key JSON must print identically to a local one.
    summary = {
        key: response.summary[key]
        for key in ("count", "best_score", "shortest", "entry_points")
        if key in response.summary
    }
    print(f"summary: {summary}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    response = _backend(args).topology(TopologyRequest(model=_model_payload(args)))
    report = response.report
    rows = [
        (
            component.name,
            component.degree,
            f"{component.betweenness:.3f}",
            "yes" if component.is_articulation_point else "-",
            "-" if component.exposure_distance is None else component.exposure_distance,
            component.reachable_components,
        )
        for component in report.ranking_by_betweenness()
    ]
    print(render_table(
        ("Component", "Degree", "Betweenness", "Articulation", "Hops from entry", "Reaches"),
        rows,
    ))
    print(f"attack surface: {', '.join(report.attack_surface) or 'none'}")
    print(f"boundary components: {', '.join(report.boundary_components) or 'none'}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    response = _backend(args).recommend(
        RecommendRequest(
            model=_model_payload(args),
            per_component=args.per_component,
            scale=args.scale,
            scorer=args.scorer,
            workers=args.workers,
        )
    )
    if not response.recommendations:
        print("no recommendations derived from the association")
        return 1
    for recommendation in response.recommendations:
        print(recommendation.describe())
        print(f"        what-if to evaluate: {recommendation.whatif_change}")
    return 0


def _cmd_consequences(args: argparse.Namespace) -> int:
    response = _backend(args).consequences(
        ConsequencesRequest(
            record=args.record,
            component=args.component,
            duration_s=args.duration,
        )
    )
    if not response.assessments:
        print(f"no executable scenario covers {args.record}")
        return 1
    print(render_consequences(response.assessments))
    return 0


def _cmd_workspace_extend(args: argparse.Namespace) -> int:
    """Append new records to a workspace artifact without a rebuild."""
    try:
        payload = json.loads(Path(args.records).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise CliError(f"cannot read records {args.records}: {error}") from error
    if not isinstance(payload, dict):
        raise CliError("records file must be a JSON object (CorpusStore.to_dict form)")
    if args.url:
        if args.workspace:
            print(
                "--workspace is ignored with --url (artifacts live on the "
                "server; use --workspace-name to pick one)",
                file=sys.stderr,
            )
        backend = ServiceClient(args.url)
        request = ExtendRequest(records=payload, workspace=args.workspace_name)
    else:
        if not args.workspace:
            raise CliError(
                "cpsec workspace extend needs --workspace PATH "
                "(or --url pointing at a running `cpsec serve`)"
            )
        backend = AnalysisService(workspace=args.workspace, max_scale=None)
        request = ExtendRequest(records=payload)
    response = backend.extend(request)
    added = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(response.added.items())
        if count
    )
    target = response.path or response.workspace or "workspace"
    print(f"extended {target}: {added or 'nothing'}")
    print(
        "totals: "
        + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(response.total_documents.items())
        )
    )
    if response.appended_bytes:
        print(f"appended {response.appended_bytes} bytes (no rewrite)")
    return 0


def _cmd_workspace_compact(args: argparse.Namespace) -> int:
    """Fold a workspace artifact's delta frames into one base frame."""
    if args.url:
        if args.workspace:
            print(
                "--workspace is ignored with --url (artifacts live on the "
                "server; use --workspace-name to pick one)",
                file=sys.stderr,
            )
        backend = ServiceClient(args.url)
        request = CompactRequest(workspace=args.workspace_name)
    else:
        if not args.workspace:
            raise CliError(
                "cpsec workspace compact needs --workspace PATH "
                "(or --url pointing at a running `cpsec serve`)"
            )
        backend = AnalysisService(workspace=args.workspace, max_scale=None)
        request = CompactRequest()
    response = backend.compact(request)
    target = response.path or response.workspace or "workspace"
    saved = response.bytes_before - response.bytes_after
    print(
        f"compacted {target}: folded {response.frames_folded} delta "
        f"frame{'s' if response.frames_folded != 1 else ''}, "
        f"{response.bytes_before} -> {response.bytes_after} bytes "
        f"({saved:+d} reclaimed)"
    )
    print(
        "totals: "
        + ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(response.total_documents.items())
        )
    )
    return 0


def _parse_workspace_specs(specs: list[str]) -> list[tuple[str, Path]]:
    """Parse repeatable ``[NAME=]PATH`` workspace flags into (name, path).

    A bare path is registered under the name ``default``; the first entry
    (whatever its name) becomes the server's default routing target.
    """
    entries: list[tuple[str, Path]] = []
    seen: set[str] = set()
    for spec in specs:
        name, sep, path_str = spec.partition("=")
        if not sep:
            name, path_str = "default", spec
        name = name.strip()
        if not name:
            raise CliError(f"invalid workspace spec {spec!r} (use NAME=PATH)")
        if name in seen:
            raise CliError(f"duplicate workspace name {name!r}")
        seen.add(name)
        path = Path(path_str)
        if not path.exists():
            raise CliError(
                f"workspace artifact not found: {path} "
                f"(build one with `cpsec associate --scale 1.0 --workspace {path}`)"
            )
        entries.append((name, path))
    return entries


def _parse_quota(spec: str | None) -> tuple[float, float] | None:
    """Parse ``--quota RATE[:BURST]`` into the manager's quota tuple."""
    if spec is None:
        return None
    rate_str, sep, burst_str = spec.partition(":")
    try:
        rate = float(rate_str)
        burst = float(burst_str) if sep else max(1.0, rate)
    except ValueError as error:
        raise CliError(
            f"invalid --quota {spec!r} (use RATE or RATE:BURST, "
            f"e.g. --quota 2 or --quota 0.5:10)"
        ) from error
    if rate <= 0 or burst < 1:
        raise CliError(
            f"--quota needs RATE > 0 and BURST >= 1, got {spec!r}"
        )
    return (rate, burst)


def _build_jobs(args: argparse.Namespace, service, journal_path) -> JobManager:
    """One job engine over the shared service (per process, never pre-fork:
    the manager's worker threads would not survive a fork)."""
    return JobManager(
        service,
        workers=args.job_workers,
        max_queued=args.job_queue,
        journal_path=journal_path,
        journal_keep=args.journal_keep if args.journal_keep > 0 else None,
        policy=args.job_policy,
        quota=_parse_quota(args.quota),
        # Job lifecycle counters land in the same registry /metrics serves.
        metrics=service.metrics,
    )


def _run_server_loop(server, jobs, drain_timeout: float, *, quiet: bool = False) -> bool:
    """Serve until SIGINT/SIGTERM, then drain; returns whether jobs drained.

    Graceful shutdown: the signal stops the accept loop, refuses new job
    submissions, drains running jobs (bounded), and flushes the journal --
    instead of dying mid-request.  Shared by the single-process ``serve``
    path and every pre-forked worker (workers run it ``quiet``; the parent
    supervisor owns the console).
    """
    stop = threading.Event()

    def _request_shutdown(signum, frame) -> None:  # pragma: no cover - signal
        stop.set()

    previous_handlers = {
        signum: signal.signal(signum, _request_shutdown)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        stop.wait()
        # The handlers stay installed through the drain: a second signal
        # while jobs are being cancelled/journalled must not kill the
        # process mid-flush and void the graceful-shutdown guarantee.
        if not quiet:
            print(
                "shutting down: refusing new submissions, draining running jobs",
                flush=True,
            )
        jobs.begin_drain()
        server.shutdown()
        drained = jobs.close(timeout=drain_timeout)
        server.server_close()
        thread.join(timeout=5)
        if thread.is_alive():
            # The accept-loop thread wedged past shutdown(); the daemon flag
            # lets the process exit anyway, but leaving silently would hide
            # the hang from whoever reads the logs.
            print(
                json.dumps(
                    {
                        "event": "server_thread_stuck",
                        "trace_id": new_trace_id(),
                        "timeout_s": 5,
                    },
                    sort_keys=True,
                ),
                file=sys.stderr,
                flush=True,
            )
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    return drained


def _serve_worker(slot: int, sock, service, args, journal_path, metrics_dir) -> None:
    """Body of one pre-forked request worker (runs in the child process).

    The child inherits the parent's warm service -- fitted models and
    mmap-backed posting buffers shared read-only across workers -- resets
    the mutable state it must not inherit (including the metrics registry:
    counters restart at zero per worker), builds its *own* job engine over
    a per-worker journal (thread pools do not survive a fork), and serves
    the listener socket inherited from the parent until SIGTERM drains it.
    Its metrics registry is serialized into ``metrics_dir`` after every
    request so a ``/metrics`` scrape on any sibling covers the whole fleet.
    """
    service.post_fork_reset()
    jobs = _build_jobs(
        args, service, f"{journal_path}.w{slot}" if journal_path else None
    )
    server = start_server(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        jobs=jobs,
        listen_socket=sock,
        slow_request_ms=args.slow_request_ms,
        request_timeout_ms=args.request_timeout_ms,
        max_inflight=args.max_inflight,
        metrics_dir=metrics_dir,
        worker_label=str(slot),
    )
    # Publish a zeroed snapshot immediately: a scrape right after startup
    # must already see every worker, not only those that served a request.
    server.export_metrics_snapshot()
    _run_server_loop(server, jobs, args.drain_timeout, quiet=True)


def _serve_preforked(args: argparse.Namespace, service, described, journal_path) -> int:
    """Parent side of ``cpsec serve --workers N``: bind, fork, supervise.

    The parent binds one shared listening socket (so ``--port 0`` resolves
    before any fork and every worker serves the same port), forks N workers
    that each accept from it -- the kernel load-balances accepts -- and then
    only supervises: a worker that dies is restarted from the still-warm
    parent image; SIGINT/SIGTERM forwards to every worker and waits for
    their graceful drains.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind((args.host, args.port))
    except OSError as error:
        sock.close()
        raise CliError(f"cannot bind {args.host}:{args.port}: {error}") from error
    sock.listen(128)
    host, port = sock.getsockname()[:2]
    print(
        f"serving analysis service on http://{host}:{port} "
        f"[{', '.join(described)}] ({args.workers} workers)",
        flush=True,
    )
    # Shared side-channel for cross-worker /metrics aggregation: every
    # worker drops `worker-<slot>.json` snapshots here; whichever worker
    # answers a scrape merges all of them with a `worker` label.
    metrics_dir = tempfile.mkdtemp(prefix="cpsec-metrics-")
    children: dict[int, int] = {}
    draining = False

    def spawn(slot: int) -> None:
        pid = os.fork()
        if pid == 0:
            # Child: serve until drained, then exit *here* -- never unwind
            # back into the parent's CLI/supervisor stack.
            code = 0
            try:
                _serve_worker(slot, sock, service, args, journal_path, metrics_dir)
            except BaseException:  # pragma: no cover - crash diagnostics
                import traceback

                traceback.print_exc()
                code = 1
            finally:
                sys.stdout.flush()
                sys.stderr.flush()
                os._exit(code)
        children[pid] = slot
        print(f"worker {pid} started (slot {slot})", flush=True)
        if draining:  # pragma: no cover - signal timing
            # Shutdown raced the restart; the fresh worker drains too.
            os.kill(pid, signal.SIGTERM)

    for slot in range(args.workers):
        spawn(slot)

    def _begin_drain(signum, frame) -> None:  # pragma: no cover - signal
        nonlocal draining
        draining = True
        for pid in list(children):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass

    previous_handlers = {
        signum: signal.signal(signum, _begin_drain)
        for signum in (signal.SIGINT, signal.SIGTERM)
    }
    try:
        while children:
            try:
                # EINTR is retried by the runtime *after* running the signal
                # handler, so a drain signal is acted on before this resumes.
                pid, status = os.waitpid(-1, 0)
            except ChildProcessError:  # pragma: no cover - defensive
                break
            slot = children.pop(pid, None)
            if slot is None:  # pragma: no cover - foreign child
                continue
            if draining:
                continue
            code = os.waitstatus_to_exitcode(status)
            print(
                f"worker {pid} exited ({code}); restarting slot {slot}",
                flush=True,
            )
            spawn(slot)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        sock.close()
        shutil.rmtree(metrics_dir, ignore_errors=True)
    print("shutdown complete (all workers drained, journals flushed)", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    entries = _parse_workspace_specs(args.workspace)
    if args.workers < 1:
        raise CliError(f"--workers must be >= 1, got {args.workers}")
    multiprocess = args.workers > 1
    service = AnalysisService(
        workspaces={name: path for name, path in entries},
        default_workspace=entries[0][0],
        save_artifacts=False,
        # With several worker processes, load workspaces memory-mapped so
        # the posting buffers live in OS page cache shared by every worker
        # instead of N private heap copies.
        workspace_mmap=multiprocess,
    )
    described = []
    for name, path in entries:
        # Load and fit every registered engine now so the first request per
        # workspace hits a warm service instead of paying the TF-IDF fit
        # inside its own latency budget (with --workers N, the fit also
        # happens once, pre-fork, instead of once per worker).
        try:
            workspace = service.warm_workspace(name)
        except ServiceError as error:
            raise CliError(
                f"cannot load workspace artifact {path}: {error.message}"
            ) from error
        scale = (workspace.params or {}).get("scale")
        described.append(f"{name}={path} (scale {scale})")
    journal_path = None
    if args.job_journal != "none":
        journal_path = args.job_journal or f"{entries[0][1]}.jobs.jsonl"
    if multiprocess:
        return _serve_preforked(args, service, described, journal_path)
    jobs = _build_jobs(args, service, journal_path)
    server = start_server(
        service,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        jobs=jobs,
        slow_request_ms=args.slow_request_ms,
        request_timeout_ms=args.request_timeout_ms,
        max_inflight=args.max_inflight,
    )
    host, port = server.server_address[:2]
    print(
        f"serving analysis service on http://{host}:{port} "
        f"[{', '.join(described)}]",
        flush=True,
    )
    drained = _run_server_loop(server, jobs, args.drain_timeout)
    if drained:
        print("shutdown complete (jobs drained, journal flushed)", flush=True)
    else:
        print(
            f"shutdown complete (drain timeout {args.drain_timeout:g}s elapsed; "
            "remaining jobs were cancelled, journal flushed)",
            flush=True,
        )
    return 0


def _jobs_client(args: argparse.Namespace) -> ServiceClient:
    if not args.url:
        raise CliError(
            "cpsec jobs requires --url pointing at a running `cpsec serve`"
        )
    return ServiceClient(args.url)


def _watch_job(client: ServiceClient, job_id: str) -> int:
    """Stream a job's events to stdout until it ends; exit 1 on failure."""
    try:
        for event in client.stream_events(job_id):
            if event["kind"] == "progress":
                print(
                    f"  [{event['seq']}] {event['phase']}: "
                    f"{event['done']}/{event['total']}"
                )
            else:
                print(f"  [{event['seq']}] state: {event['state']}")
    except (OSError, http.client.HTTPException) as error:
        # A server restart or network drop mid-stream must stay a one-line
        # operational error, not a traceback (the job itself is unaffected;
        # `cpsec jobs watch <id>` resumes it).
        raise CliError(
            f"lost the event stream for {job_id}: {error} "
            f"(re-run `cpsec jobs watch {job_id}` to resume)"
        ) from error
    record = client.job(job_id)
    if record["state"] == "succeeded":
        print(f"{job_id} succeeded")
        return 0
    error = record.get("error") or {}
    suffix = f": {error.get('code')}: {error.get('message')}" if error else ""
    print(f"{job_id} {record['state']}{suffix}")
    return 1 if record["state"] == "failed" else 0


def _cmd_jobs_submit(args: argparse.Namespace) -> int:
    client = _jobs_client(args)
    try:
        payload = json.loads(args.request) if args.request else {}
    except json.JSONDecodeError as error:
        raise CliError(f"--request is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise CliError("--request must be a JSON object")
    if args.workspace_name:
        payload["workspace"] = args.workspace_name
    job = client.submit(
        args.operation,
        payload,
        priority=args.priority,
        weight=args.weight,
        depends_on=args.depends_on,
        client_id=args.client,
        max_retries=args.max_retries,
        backoff_s=args.backoff,
    )
    print(f"submitted {job['job_id']} ({job['operation']}, state {job['state']})")
    if args.watch:
        return _watch_job(client, job["job_id"])
    return 0


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    client = _jobs_client(args)
    records = [client.job(args.job_id)] if args.job_id else client.jobs()
    if not records:
        print("no jobs")
        return 0
    for record in records:
        line = f"{record['job_id']} {record['operation']} {record['state']}"
        progress = record.get("progress")
        if progress:
            line += f" ({progress['phase']} {progress['done']}/{progress['total']})"
        print(line)
        error = record.get("error")
        if error:
            print(f"  error: {error.get('code')}: {error.get('message')}")
    return 0


def _cmd_jobs_watch(args: argparse.Namespace) -> int:
    return _watch_job(_jobs_client(args), args.job_id)


def _cmd_jobs_cancel(args: argparse.Namespace) -> int:
    record = _jobs_client(args).cancel(args.job_id)
    state = record["state"]
    if state == "running" and record.get("cancel_requested"):
        print(f"{record['job_id']} cancel requested (still running; "
              "it stops at its next progress point)")
    else:
        print(f"{record['job_id']} {state}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Scrape a running server's ``/metrics`` and summarize it.

    ``--raw`` dumps the exposition text verbatim (for piping into other
    tooling); the default view parses it -- through the same strict parser
    the tests and CI use, so an unrenderable exposition fails here too --
    and prints one ``name{labels} value`` line per sample, grouped by
    family.  With ``cpsec serve --workers N`` each series carries its
    ``worker`` label, so per-worker skew is visible at a glance.
    """
    url = f"{args.url.rstrip('/')}/metrics"
    try:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            text = response.read().decode("utf-8")
    except (urllib.error.URLError, OSError) as error:
        raise CliError(f"cannot scrape {url}: {error}") from error
    try:
        families = parse_exposition(text)
    except ExpositionParseError as error:
        raise CliError(f"unparseable exposition from {url}: {error}") from error
    if args.raw:
        sys.stdout.write(text)
        return 0
    for name in sorted(families):
        family = families[name]
        samples = family.samples
        if args.filter and args.filter not in name:
            continue
        print(f"# {name} ({family.type}) -- {family.help}")
        for sample in samples:
            rendered = ",".join(
                f'{key}="{value}"' for key, value in sorted(sample.labels.items())
            )
            label_part = f"{{{rendered}}}" if rendered else ""
            value = sample.value
            text_value = (
                str(int(value)) if float(value).is_integer() else f"{value:.6g}"
            )
            print(f"  {sample.name}{label_part} {text_value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``cpsec`` command."""
    parser = argparse.ArgumentParser(
        prog="cpsec",
        description="Model-based cyber-physical systems security analysis.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_url_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--url",
            default=None,
            help="base URL of a running `cpsec serve` instance (default: run in-process)",
        )

    def add_model_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", default=None, help="GraphML model path (default: built-in centrifuge)")

    def add_search_options(sub: argparse.ArgumentParser) -> None:
        add_model_option(sub)
        add_url_option(sub)
        sub.add_argument("--scale", type=float, default=0.1, help="synthetic corpus scale (1.0 = paper scale)")
        sub.add_argument("--scorer", default="coverage", choices=("coverage", "cosine", "jaccard"))
        sub.add_argument("--snapshot", default=None, help="index snapshot path (created on first run, loaded afterwards)")
        sub.add_argument("--workspace", default=None, help="one-file workspace artifact path (created on first run; later runs skip corpus synthesis and index builds)")
        sub.add_argument("--workers", type=int, default=1, help="thread-pool fan-out for association scoring (results are identical for any value)")

    export = subparsers.add_parser("export", help="export the centrifuge model to GraphML")
    export.add_argument("--output", default="centrifuge.graphml")
    add_model_option(export)
    add_url_option(export)
    export.set_defaults(func=_cmd_export)

    validate = subparsers.add_parser("validate", help="validate a system model")
    add_model_option(validate)
    add_url_option(validate)
    validate.set_defaults(func=_cmd_validate)

    associate = subparsers.add_parser("associate", help="associate attack vectors with a model")
    add_search_options(associate)
    associate.set_defaults(func=_cmd_associate)

    table1 = subparsers.add_parser("table1", help="reproduce the paper's Table 1")
    add_search_options(table1)
    table1.set_defaults(func=_cmd_table1)

    whatif = subparsers.add_parser("whatif", help="compare the baseline and hardened-workstation architectures")
    add_search_options(whatif)
    whatif.add_argument(
        "--sweep", default=None, metavar="FILE",
        help='sweep file: {"variants": {name: registry-name-or-model, ...}}; '
             "runs one comparison per named variant",
    )
    whatif.add_argument(
        "--async", dest="async_sweep", action="store_true",
        help="run the sweep as batch jobs plus a dependency merge on a "
             "`cpsec serve` instance (needs --url); results are byte-identical "
             "to the synchronous sweep",
    )
    whatif.set_defaults(func=_cmd_whatif)

    chains = subparsers.add_parser("chains", help="enumerate exploit chains to a target component")
    add_search_options(chains)
    chains.add_argument("--target", default="BPCS Platform")
    chains.add_argument("--max-length", type=int, default=6)
    chains.add_argument("--limit", type=int, default=10)
    chains.set_defaults(func=_cmd_chains)

    topology = subparsers.add_parser("topology", help="topological security profile of a model")
    add_model_option(topology)
    add_url_option(topology)
    topology.set_defaults(func=_cmd_topology)

    recommend_parser = subparsers.add_parser("recommend", help="derive design-time mitigation recommendations")
    add_search_options(recommend_parser)
    recommend_parser.add_argument("--per-component", type=int, default=3)
    recommend_parser.set_defaults(func=_cmd_recommend)

    simulate = subparsers.add_parser("simulate", help="run the SCADA simulation, optionally under attack")
    simulate.add_argument("--scenario", default="nominal")
    simulate.add_argument("--duration", type=float, default=420.0)
    add_url_option(simulate)
    simulate.set_defaults(func=_cmd_simulate)

    consequences = subparsers.add_parser("consequences", help="map one attack-vector record to physical consequences")
    consequences.add_argument("--record", default="CWE-78")
    consequences.add_argument("--component", default="BPCS Platform")
    consequences.add_argument("--duration", type=float, default=420.0)
    add_url_option(consequences)
    consequences.set_defaults(func=_cmd_consequences)

    workspace_parser = subparsers.add_parser(
        "workspace", help="manage one-file workspace artifacts"
    )
    workspace_sub = workspace_parser.add_subparsers(
        dest="workspace_command", required=True
    )
    ws_extend = workspace_sub.add_parser(
        "extend",
        help="append new records to a workspace artifact as a delta frame "
             "(no rebuild, no rewrite)",
    )
    ws_extend.add_argument(
        "--workspace", default=None,
        help="workspace artifact path to extend in place",
    )
    ws_extend.add_argument(
        "--records", required=True, metavar="FILE",
        help="JSON file of new records (CorpusStore.to_dict form; see "
             "repro.corpus.synthesis.build_extension_corpus for a generator)",
    )
    ws_extend.add_argument(
        "--url", default=None,
        help="extend a workspace served by a running `cpsec serve` instead",
    )
    ws_extend.add_argument(
        "--workspace-name", default=None,
        help="named server workspace to extend (with --url; default: the "
             "server's default workspace)",
    )
    ws_extend.set_defaults(func=_cmd_workspace_extend)

    ws_compact = workspace_sub.add_parser(
        "compact",
        help="fold accumulated delta frames back into contiguous base "
             "sections (single mmap-able frame; atomic rewrite)",
    )
    ws_compact.add_argument(
        "--workspace", default=None,
        help="workspace artifact path to compact in place",
    )
    ws_compact.add_argument(
        "--url", default=None,
        help="compact a workspace served by a running `cpsec serve` instead",
    )
    ws_compact.add_argument(
        "--workspace-name", default=None,
        help="named server workspace to compact (with --url; default: the "
             "server's default workspace)",
    )
    ws_compact.set_defaults(func=_cmd_workspace_compact)

    serve = subparsers.add_parser("serve", help="serve the analysis operations over HTTP from warm engines")
    serve.add_argument(
        "--workspace",
        action="append",
        required=True,
        metavar="[NAME=]PATH",
        help="workspace artifact to serve; repeat to serve several named "
             "workspaces (e.g. --workspace paper=a.cpsecws --workspace smoke=b.cpsecws); "
             "a bare path is registered as 'default'; the first entry serves "
             "requests that name no workspace",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument("--workers", type=int, default=1,
                       help="pre-forked request worker processes sharing one "
                            "listening socket and one mmap-backed artifact; "
                            "crashed workers are restarted, SIGTERM drains all "
                            "(default 1: single-process threaded serving)")
    serve.add_argument("--verbose", action="store_true", help="log every request to stderr")
    serve.add_argument("--job-workers", type=int, default=2, help="background jobs run concurrently (default 2)")
    serve.add_argument("--job-queue", type=int, default=32, help="queued-job bound; past it submissions get a typed 429 (default 32)")
    serve.add_argument("--job-journal", default=None, metavar="PATH",
                       help="JSON-lines job journal (default: <first workspace>.jobs.jsonl; 'none' disables persistence)")
    serve.add_argument("--journal-keep", type=int, default=256, metavar="N",
                       help="terminal jobs retained in the journal; older ones are "
                            "compacted away, oversized results spill to side files "
                            "(default 256; 0 keeps everything)")
    serve.add_argument("--drain-timeout", type=float, default=10.0,
                       help="seconds to wait for running jobs on shutdown (default 10)")
    serve.add_argument("--job-policy", default="fair", choices=("fair", "fifo"),
                       help="job scheduling policy: 'fair' (priorities + per-workspace "
                            "weighted fair queueing) or 'fifo' (arrival order; default fair)")
    serve.add_argument("--quota", default=None, metavar="RATE[:BURST]",
                       help="per-client job submission quota as a token bucket: RATE "
                            "tokens/second refilling up to BURST (default RATE rounded "
                            "up to 1); exhausted clients get a typed 429 with "
                            "retry_after_s (default: no quota)")
    serve.add_argument("--slow-request-ms", type=float, default=None, metavar="MS",
                       help="log one structured JSON line to stderr (trace id, "
                            "operation, span timings) for every request slower "
                            "than MS milliseconds (default: off)")
    serve.add_argument("--request-timeout-ms", type=float, default=None, metavar="MS",
                       help="server-side deadline per synchronous request: work "
                            "still running past MS milliseconds is cancelled at "
                            "its next progress point with a typed 504 "
                            "deadline_exceeded (default: no deadline; clients "
                            "can tighten per request via X-Cpsec-Deadline-Ms)")
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N",
                       help="bound concurrently-executing POST requests; past "
                            "it requests are shed with a typed 503 overloaded "
                            "carrying retry_after_s (GETs -- /healthz, /metrics "
                            "-- are exempt; default: unbounded)")
    serve.set_defaults(func=_cmd_serve)

    stats = subparsers.add_parser(
        "stats",
        help="scrape and summarize /metrics of a running `cpsec serve`",
    )
    stats.add_argument("--url", required=True,
                       help="base URL of a running `cpsec serve` instance")
    stats.add_argument("--raw", action="store_true",
                       help="print the exposition text verbatim instead of the summary")
    stats.add_argument("--filter", default=None, metavar="SUBSTRING",
                       help="only show families whose name contains SUBSTRING")
    stats.set_defaults(func=_cmd_stats)

    jobs_parser = subparsers.add_parser("jobs", help="submit and observe background jobs on a running `cpsec serve`")
    jobs_sub = jobs_parser.add_subparsers(dest="jobs_command", required=True)

    def add_jobs_url(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--url", required=True, help="base URL of a running `cpsec serve` instance")

    jobs_submit = jobs_sub.add_parser("submit", help="submit one operation as a background job")
    jobs_submit.add_argument("operation", choices=sorted([*OPERATIONS, MERGE_OPERATION]))
    jobs_submit.add_argument("--request", default=None, metavar="JSON",
                             help='request payload as JSON (e.g. \'{"scale": 1.0, "scorer": "jaccard"}\')')
    jobs_submit.add_argument("--workspace-name", default=None,
                             help="route the job to a named server workspace")
    jobs_submit.add_argument("--priority", default=None, choices=JOB_PRIORITIES,
                             help="priority class (default: inferred per operation -- "
                                  "whatif/simulate are batch, everything else interactive)")
    jobs_submit.add_argument("--weight", type=float, default=None,
                             help="fair-share weight of the submitting workspace "
                                  "(0 < weight <= 1000, default 1)")
    jobs_submit.add_argument("--depends-on", action="append", default=None,
                             metavar="JOB_ID",
                             help="job that must succeed before this one runs; repeatable "
                                  "(a failed/cancelled dependency cancels this job)")
    jobs_submit.add_argument("--client", default=None, metavar="ID",
                             help="quota identity (with `cpsec serve --quota`; "
                                  "default: the shared 'anonymous' bucket)")
    jobs_submit.add_argument("--max-retries", type=int, default=None, metavar="N",
                             help="re-queue the job up to N times after a "
                                  "transient (5xx) failure, with jittered "
                                  "exponential backoff (0 <= N <= 20, default 0)")
    jobs_submit.add_argument("--backoff", type=float, default=None, metavar="S",
                             help="base backoff in seconds between retry "
                                  "attempts; doubles per attempt with +/-50%% "
                                  "jitter, capped at 300s (default 0.5)")
    jobs_submit.add_argument("--watch", action="store_true", help="stream events until the job ends")
    add_jobs_url(jobs_submit)
    jobs_submit.set_defaults(func=_cmd_jobs_submit)

    jobs_status = jobs_sub.add_parser("status", help="one job's state, or every job")
    jobs_status.add_argument("job_id", nargs="?", default=None)
    add_jobs_url(jobs_status)
    jobs_status.set_defaults(func=_cmd_jobs_status)

    jobs_watch = jobs_sub.add_parser("watch", help="stream a job's progress events (SSE)")
    jobs_watch.add_argument("job_id")
    add_jobs_url(jobs_watch)
    jobs_watch.set_defaults(func=_cmd_jobs_watch)

    jobs_cancel = jobs_sub.add_parser("cancel", help="cancel a queued or running job")
    jobs_cancel.add_argument("job_id")
    add_jobs_url(jobs_cancel)
    jobs_cancel.set_defaults(func=_cmd_jobs_cancel)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``cpsec`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as error:
        print(f"cpsec: {error}", file=sys.stderr)
        return 2
    except ServiceError as error:
        print(error.message, file=sys.stderr)
        for key, value in error.details.items():
            if isinstance(value, list) and value:
                print(f"{key.replace('_', ' ')}:", file=sys.stderr)
                for item in value:
                    print(f"  {item}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

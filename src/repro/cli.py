"""Command-line interface (the CYBOK-CLI stand-in).

The authors ship their search engine as a command-line tool [12]; ``cpsec``
exposes the reproduction's pipeline the same way::

    cpsec export --output centrifuge.graphml
    cpsec associate --model centrifuge.graphml --scale 0.1
    cpsec table1 --scale 1.0
    cpsec whatif --scale 0.1
    cpsec simulate --scenario triton-like-sis-bypass
    cpsec validate --model centrifuge.graphml

All commands are offline and deterministic; ``--scale`` controls the size of
the synthetic corpus (1.0 reproduces paper-scale populations).

Search commands accept two artifact options and a parallelism knob:

* ``--workspace PATH`` -- the first run builds the corpus and engine, then
  saves the whole prepared bundle (corpus JSON + index snapshots + engine
  configuration) in one file; later runs load it and skip corpus synthesis
  *and* the index rebuild, which makes a paper-scale cold start sub-second,
* ``--snapshot PATH`` -- the lighter PR-1 artifact: only the tokenized
  indexes are persisted and the corpus is still regenerated,
* ``--workers N`` -- fans per-component association scoring across a thread
  pool.

Results are identical with or without any of these; an artifact that does
not match the requested corpus is rebuilt (and overwritten) rather than
trusted.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.recommendations import recommend
from repro.analysis.report import (
    render_consequences,
    render_posture_report,
    render_table,
    render_table1,
    render_whatif,
)
from repro.analysis.topology import analyze_topology
from repro.analysis.whatif import WhatIfStudy
from repro.search.chains import chain_summary, find_exploit_chains
from repro.attacks.consequence import ConsequenceMapper
from repro.attacks.scenarios import SCENARIO_LIBRARY
from repro.casestudies.centrifuge import build_centrifuge_model, hardened_workstation_variant
from repro.corpus.synthesis import build_corpus
from repro.cps.scada import ScadaSimulation
from repro.graph.graphml import read_graphml, write_graphml
from repro.graph.validation import validate_model
from repro.search.engine import SearchEngine
from repro.workspace import Workspace


def _load_model(path: str | None):
    if path:
        return read_graphml(path)
    return build_centrifuge_model()


def _workspace_engine(scale: float, scorer: str, workspace: str) -> SearchEngine:
    """Load (or build and save) a one-file workspace artifact."""
    path = Path(workspace)
    if path.exists():
        try:
            loaded = Workspace.load(path)
            if loaded.matches(scale=scale):
                return loaded.engine(scorer=scorer)
            print(
                "ignoring workspace artifact built with different parameters",
                file=sys.stderr,
            )
        except (ValueError, OSError) as error:
            # Any malformed, mismatched, or unreadable artifact falls back to
            # a rebuild (which overwrites the bad file below).
            print(f"ignoring stale workspace artifact: {error}", file=sys.stderr)
    built = Workspace.build(scale=scale, scorer=scorer)
    try:
        built.save(path)
    except OSError as error:
        print(f"could not write workspace artifact: {error}", file=sys.stderr)
    # Returns the engine the workspace was just built from -- nothing is
    # tokenized or fitted twice.
    return built.engine(scorer=scorer)


def _engine(
    scale: float,
    scorer: str = "coverage",
    snapshot: str | None = None,
    workspace: str | None = None,
) -> SearchEngine:
    if workspace:
        if snapshot:
            print(
                "--snapshot is ignored when --workspace is given "
                "(the workspace bundles the index)",
                file=sys.stderr,
            )
        return _workspace_engine(scale, scorer, workspace)
    corpus = build_corpus(scale=scale)
    if snapshot:
        path = Path(snapshot)
        if path.exists():
            try:
                return SearchEngine.from_index_snapshot(corpus, path, scorer=scorer)
            except (ValueError, OSError) as error:
                # Any malformed, mismatched, or unreadable snapshot falls back
                # to a rebuild (which overwrites the bad file below).
                print(f"ignoring stale index snapshot: {error}", file=sys.stderr)
        engine = SearchEngine(corpus, scorer=scorer)
        try:
            engine.save_index_snapshot(path)
        except OSError as error:
            print(f"could not write index snapshot: {error}", file=sys.stderr)
        return engine
    return SearchEngine(corpus, scorer=scorer)


def _cmd_export(args: argparse.Namespace) -> int:
    model = build_centrifuge_model()
    write_graphml(model, args.output)
    print(f"wrote {len(model)} components to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    findings = validate_model(model)
    if not findings:
        print("model is clean")
        return 0
    for finding in findings:
        print(finding)
    return 0


def _cmd_associate(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    engine = _engine(args.scale, args.scorer, args.snapshot, args.workspace)
    association = engine.associate(model, workers=args.workers)
    print(render_posture_report(association))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    engine = _engine(args.scale, args.scorer, args.snapshot, args.workspace)
    association = engine.associate(model, workers=args.workers)
    print(render_table1(association))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    baseline = _load_model(args.model)
    variant = hardened_workstation_variant(baseline)
    study = WhatIfStudy(
        _engine(args.scale, args.scorer, args.snapshot, args.workspace),
        workers=args.workers,
    )
    comparison = study.compare(baseline, variant)
    print(render_whatif(comparison))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.scenario == "nominal":
        interventions = []
    else:
        scenario = SCENARIO_LIBRARY.get(args.scenario)
        if scenario is None:
            print(f"unknown scenario {args.scenario!r}; known scenarios:", file=sys.stderr)
            for name in SCENARIO_LIBRARY:
                print(f"  {name}", file=sys.stderr)
            return 2
        interventions = scenario.interventions()
    simulation = ScadaSimulation(interventions=interventions)
    trace = simulation.run(duration_s=args.duration, dt=0.5)
    report = trace.hazards()
    print(f"scenario: {args.scenario}")
    print(f"peak temperature: {trace.max_temperature():.1f} C")
    print(f"peak speed: {trace.max_speed():.0f} rpm")
    print(f"SIS tripped: {simulation.sis.tripped} ({simulation.sis.trip_reason})")
    rows = [
        (event.kind.value, f"{event.start_time_s:.0f}", f"{event.duration_s:.0f}",
         f"{event.peak_value:.1f}")
        for event in report.events
    ]
    if rows:
        print(render_table(("Hazard", "Start [s]", "Duration [s]", "Peak"), rows))
    else:
        print("no hazard conditions reached")
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    engine = _engine(args.scale, args.scorer, args.snapshot, args.workspace)
    association = engine.associate(model, workers=args.workers)
    chains = find_exploit_chains(association, args.target, max_length=args.max_length)
    if not chains:
        print(f"no exploit chains reach {args.target!r}")
        return 1
    for chain in chains[: args.limit]:
        print(chain.describe())
    print(f"summary: {chain_summary(chains)}")
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    report = analyze_topology(model)
    rows = [
        (
            component.name,
            component.degree,
            f"{component.betweenness:.3f}",
            "yes" if component.is_articulation_point else "-",
            "-" if component.exposure_distance is None else component.exposure_distance,
            component.reachable_components,
        )
        for component in report.ranking_by_betweenness()
    ]
    print(render_table(
        ("Component", "Degree", "Betweenness", "Articulation", "Hops from entry", "Reaches"),
        rows,
    ))
    print(f"attack surface: {', '.join(report.attack_surface) or 'none'}")
    print(f"boundary components: {', '.join(report.boundary_components) or 'none'}")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    model = _load_model(args.model)
    engine = _engine(args.scale, args.scorer, args.snapshot, args.workspace)
    association = engine.associate(model, workers=args.workers)
    recommendations = recommend(association, engine.corpus, per_component=args.per_component)
    if not recommendations:
        print("no recommendations derived from the association")
        return 1
    for recommendation in recommendations:
        print(recommendation.describe())
        print(f"        what-if to evaluate: {recommendation.whatif_change}")
    return 0


def _cmd_consequences(args: argparse.Namespace) -> int:
    mapper = ConsequenceMapper(duration_s=args.duration)
    assessments = mapper.assess(args.record, args.component)
    if not assessments:
        print(f"no executable scenario covers {args.record}")
        return 1
    print(render_consequences(assessments))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``cpsec`` command."""
    parser = argparse.ArgumentParser(
        prog="cpsec",
        description="Model-based cyber-physical systems security analysis.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    export = subparsers.add_parser("export", help="export the centrifuge model to GraphML")
    export.add_argument("--output", default="centrifuge.graphml")
    export.set_defaults(func=_cmd_export)

    validate = subparsers.add_parser("validate", help="validate a system model")
    validate.add_argument("--model", default=None, help="GraphML model path (default: built-in centrifuge)")
    validate.set_defaults(func=_cmd_validate)

    def add_search_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--model", default=None, help="GraphML model path (default: built-in centrifuge)")
        sub.add_argument("--scale", type=float, default=0.1, help="synthetic corpus scale (1.0 = paper scale)")
        sub.add_argument("--scorer", default="coverage", choices=("coverage", "cosine", "jaccard"))
        sub.add_argument("--snapshot", default=None, help="index snapshot path (created on first run, loaded afterwards)")
        sub.add_argument("--workspace", default=None, help="one-file workspace artifact path (created on first run; later runs skip corpus synthesis and index builds)")
        sub.add_argument("--workers", type=int, default=1, help="thread-pool fan-out for association scoring (results are identical for any value)")

    associate = subparsers.add_parser("associate", help="associate attack vectors with a model")
    add_search_options(associate)
    associate.set_defaults(func=_cmd_associate)

    table1 = subparsers.add_parser("table1", help="reproduce the paper's Table 1")
    add_search_options(table1)
    table1.set_defaults(func=_cmd_table1)

    whatif = subparsers.add_parser("whatif", help="compare the baseline and hardened-workstation architectures")
    add_search_options(whatif)
    whatif.set_defaults(func=_cmd_whatif)

    chains = subparsers.add_parser("chains", help="enumerate exploit chains to a target component")
    add_search_options(chains)
    chains.add_argument("--target", default="BPCS Platform")
    chains.add_argument("--max-length", type=int, default=6)
    chains.add_argument("--limit", type=int, default=10)
    chains.set_defaults(func=_cmd_chains)

    topology = subparsers.add_parser("topology", help="topological security profile of a model")
    topology.add_argument("--model", default=None, help="GraphML model path (default: built-in centrifuge)")
    topology.set_defaults(func=_cmd_topology)

    recommend_parser = subparsers.add_parser("recommend", help="derive design-time mitigation recommendations")
    add_search_options(recommend_parser)
    recommend_parser.add_argument("--per-component", type=int, default=3)
    recommend_parser.set_defaults(func=_cmd_recommend)

    simulate = subparsers.add_parser("simulate", help="run the SCADA simulation, optionally under attack")
    simulate.add_argument("--scenario", default="nominal")
    simulate.add_argument("--duration", type=float, default=420.0)
    simulate.set_defaults(func=_cmd_simulate)

    consequences = subparsers.add_parser("consequences", help="map one attack-vector record to physical consequences")
    consequences.add_argument("--record", default="CWE-78")
    consequences.add_argument("--component", default="BPCS Platform")
    consequences.add_argument("--duration", type=float, default=420.0)
    consequences.set_defaults(func=_cmd_consequences)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``cpsec`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""cpsec: model-based cyber-physical systems security analysis.

A reproduction of the toolchain described in Bakirtzis et al.,
"Fundamental Challenges of Cyber-Physical Systems Security Modeling"
(DSN 2020): system models exported to a general architectural graph,
attack-vector data (CAPEC / CWE / CVE) associated with model attributes
through text matching, analyst-facing posture / what-if analysis, and --
closing the gap the paper identifies -- executable mapping of associated
attack vectors to physical consequences on a simulated SCADA centrifuge.

Typical use::

    from repro import build_corpus, build_centrifuge_model, SearchEngine

    corpus = build_corpus(scale=0.05)
    model = build_centrifuge_model()
    association = SearchEngine(corpus).associate(model)
    print(association.attribute_table())

Subpackages
-----------
``repro.graph``
    System-model graph, SysML front end, GraphML IO, refinement, validation.
``repro.corpus``
    CAPEC/CWE/CVE schemas, CVSS v3.1, curated seed data, synthetic generator.
``repro.search``
    Tokenization, indexing, TF-IDF, the association engine, filters, chains.
``repro.analysis``
    Posture metrics, what-if studies, report rendering (headless dashboard).
``repro.cps``
    Centrifuge plant, controllers, SIS, bus/firewall, closed-loop simulation.
``repro.attacks``
    Attack interventions, named scenarios, consequence mapping.
``repro.service``
    Typed operations API: the long-lived analysis service, the stdlib HTTP
    server behind ``cpsec serve``, and the matching client (imported
    directly as :mod:`repro.service` to keep the core import light).
``repro.baselines``
    STRIDE and attack-tree baselines plus coverage comparison.
``repro.casestudies``
    The paper's SCADA centrifuge model and a UAV model.
"""

from repro.analysis import PostureMetrics, WhatIfStudy, compute_posture, render_table1
from repro.attacks import ConsequenceMapper, TritonLikeScenario
from repro.casestudies import (
    build_centrifuge_model,
    build_centrifuge_sysml,
    build_uav_model,
    hardened_workstation_variant,
)
from repro.corpus import CorpusStore, build_corpus, seed_corpus
from repro.cps import HazardMonitor, ScadaSimulation
from repro.graph import SystemGraph, read_graphml, write_graphml
from repro.search import FilterPipeline, SearchEngine, find_exploit_chains
from repro.workspace import Workspace

__version__ = "1.7.0"

__all__ = [
    "__version__",
    "SystemGraph",
    "read_graphml",
    "write_graphml",
    "CorpusStore",
    "seed_corpus",
    "build_corpus",
    "SearchEngine",
    "FilterPipeline",
    "find_exploit_chains",
    "Workspace",
    "PostureMetrics",
    "compute_posture",
    "WhatIfStudy",
    "render_table1",
    "ScadaSimulation",
    "HazardMonitor",
    "ConsequenceMapper",
    "TritonLikeScenario",
    "build_centrifuge_model",
    "build_centrifuge_sysml",
    "build_uav_model",
    "hardened_workstation_variant",
]

"""Atomic file-write helpers shared by every artifact writer.

Corpus stores, index snapshots, workspace artifacts, and benchmark result
files are all written through :func:`atomic_write_bytes`: the payload goes to
a temporary file in the destination directory first and is moved into place
with :func:`os.replace`, which is atomic on POSIX and Windows.  An
interrupted run can therefore never leave a half-written artifact behind --
readers see either the previous complete file or the new complete file.
"""

from __future__ import annotations

import os
from pathlib import Path


def _create_temp_beside(path: Path) -> tuple[int, str]:
    """Open an exclusive temp file next to ``path`` with umask-default mode.

    The 0o666 creation mode lets the kernel apply the process umask, so the
    final artifact gets the same permissions a plain ``open()``-and-write
    would have produced -- without mkstemp's 0600 or any umask round trip
    (which would momentarily zero the process umask for every thread).
    """
    directory = path.parent if str(path.parent) else Path(".")
    while True:
        temp_name = str(
            directory / f"{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        )
        try:
            return (
                os.open(temp_name, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666),
                temp_name,
            )
        except FileExistsError:  # pragma: no cover - 32-bit random collision
            continue


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Write ``payload`` to ``path`` atomically; returns the path.

    The temporary file is created next to the destination (same filesystem,
    so the final rename cannot degrade to a copy) and is removed on any
    failure between creation and rename.
    """
    path = Path(path)
    descriptor, temp_name = _create_temp_beside(path)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Write ``text`` to ``path`` atomically; returns the path."""
    return atomic_write_bytes(path, text.encode(encoding))

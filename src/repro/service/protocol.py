"""Typed operations protocol for the analysis service.

Every analyst-facing operation of the toolchain -- associate, table1,
whatif, chains, topology, recommend, simulate, consequences, validate,
export -- is described here as a pair of frozen dataclasses: a request and a
response.  Both sides are JSON-serializable (``to_dict`` / ``from_dict``
round-trip exactly) and versioned with ``schema_version``, so the same
protocol drives

* the in-process :class:`repro.service.service.AnalysisService`,
* the stdlib HTTP server in :mod:`repro.service.http`, and
* the :class:`repro.service.client.ServiceClient`

with bit-identical response JSON on every path (the service equivalence
tests pin this).  :func:`canonical_json` is the one serialization every
transport uses -- sorted keys, compact separators -- which is what makes
byte-level comparisons meaningful.

System models travel as :meth:`repro.graph.model.SystemGraph.to_dict`
payloads (or as a registry name like ``"centrifuge"``); analysis artifacts
travel as the dict forms of their dataclasses (``PostureMetrics``,
``WhatIfComparison``, ``TopologyReport``, ...), so a client can rebuild the
typed objects and reuse every renderer the library ships.

**Tracing** rides the transport, not the payload: every HTTP response
carries the request's trace id in the :data:`TRACE_HEADER`
(``X-Cpsec-Trace-Id``) response header -- keeping 200 bodies byte-identical
to the in-process path -- while *error* bodies additionally carry a
top-level ``trace_id`` key (``from_dict`` ignores unknown keys, so old
clients parse new errors unchanged).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from repro.analysis.metrics import PostureMetrics
from repro.obs.trace import TRACE_HEADER  # noqa: F401 - part of the wire protocol
from repro.analysis.recommendations import Recommendation
from repro.analysis.topology import TopologyReport
from repro.analysis.whatif import WhatIfComparison
from repro.attacks.consequence import ConsequenceAssessment
from repro.graph.validation import ValidationFinding
from repro.search.chains import ExploitChain

#: Version of the request/response schema; bump on incompatible changes.
SCHEMA_VERSION = 1

#: Background-job lifecycle states, in order (see :mod:`repro.jobs`).  Part
#: of the wire protocol: clients decide "is this job over" from these.
JOB_STATES = ("queued", "running", "succeeded", "failed", "cancelled")

#: Job states a job never leaves.  The single source of truth shared by the
#: manager, the SSE streamer, and every client.
TERMINAL_JOB_STATES = frozenset({"succeeded", "failed", "cancelled"})

#: Job priority classes, strongest first.  Part of the wire protocol: a
#: submission's optional ``priority`` field must be one of these (the
#: scheduler in :mod:`repro.jobs.scheduler` enforces and acts on them).
JOB_PRIORITIES = ("interactive", "batch")

#: HTTP request header carrying the caller's deadline budget in
#: milliseconds.  The server takes the tighter of this and its own
#: ``--request-timeout-ms``, checks it cooperatively at the progress-sink
#: points inside engine/simulation loops, and answers a typed 504
#: ``deadline_exceeded`` when the budget runs out.
DEADLINE_HEADER = "X-Cpsec-Deadline-Ms"

#: Error codes a client may safely retry for *idempotent* operations: the
#: request either never reached the service or failed for reasons the next
#: attempt can outlive.  ``deadline_exceeded`` is deliberately absent -- a
#: blown budget will blow again.
RETRYABLE_ERROR_CODES = frozenset(
    {"unreachable", "overloaded", "internal_error", "workspace_load_failed"}
)


def canonical_json(payload: dict) -> str:
    """The one JSON serialization used by every transport.

    Sorted keys and compact separators make the output a function of the
    payload alone, so the in-process and HTTP paths can be compared byte for
    byte.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ServiceError(Exception):
    """A typed operation failure that maps onto an HTTP status.

    Raised by :class:`AnalysisService` methods for request-level problems
    (unknown scenario, malformed model, unsupported schema version) and
    re-raised by :class:`ServiceClient` from error response bodies, so the
    caller sees the same exception whichever transport it used.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "invalid_request",
        status: int = 400,
        details: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.code = code
        self.status = status
        self.details = details or {}

    def to_dict(self) -> dict:
        """The error response body."""
        return {
            "schema_version": SCHEMA_VERSION,
            "error": {
                "code": self.code,
                "message": self.message,
                "details": self.details,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict, status: int = 400) -> "ServiceError":
        """Rebuild from an error response body."""
        error = payload.get("error") or {}
        return cls(
            error.get("message", "service error"),
            code=error.get("code", "error"),
            status=status,
            details=error.get("details") or {},
        )


def _check_envelope(cls: type, payload: dict) -> None:
    """Shared validation for every message ``from_dict``."""
    if not isinstance(payload, dict):
        raise ServiceError(
            f"{cls.__name__} payload must be a JSON object, "
            f"got {type(payload).__name__}",
            code="malformed_payload",
        )
    version = payload.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise ServiceError(
            f"unsupported schema version {version!r}; expected {SCHEMA_VERSION}",
            code="unsupported_schema_version",
        )
    known = {field.name for field in fields(cls)} | {"schema_version"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ServiceError(
            f"unknown {cls.__name__} fields: {', '.join(unknown)}",
            code="unknown_fields",
        )


@dataclass(frozen=True)
class _FlatMessage:
    """Base for messages whose fields are all JSON-native values.

    Subclasses with nested typed fields override ``to_dict``/``from_dict``;
    flat ones inherit the generic implementation, which also rejects unknown
    fields and mismatched schema versions.
    """

    def to_dict(self) -> dict:
        payload = {"schema_version": SCHEMA_VERSION}
        for field in fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload

    @classmethod
    def from_dict(cls, payload: dict):
        _check_envelope(cls, payload)
        kwargs = {
            field.name: payload[field.name]
            for field in fields(cls)
            if field.name in payload
        }
        try:
            return cls(**kwargs)
        except TypeError as error:
            # A required field was absent: surface the protocol's typed
            # error, not a bare constructor TypeError.
            raise ServiceError(
                f"malformed {cls.__name__} payload: {error}",
                code="malformed_payload",
            ) from error


# -- requests -----------------------------------------------------------------
#
# ``model`` (and ``variant``) accept a registry name (``"centrifuge"``,
# ``"uav"``), a ``SystemGraph.to_dict`` payload, or ``None`` for the default
# model.  ``scale``/``scorer``/``workers`` select and drive the engine.
# ``workspace`` optionally names one of the server's registered workspaces
# (see ``cpsec serve --workspace name=path``); ``None`` keeps the server's
# default routing.  Operations that never touch an engine still validate the
# name, so a typo cannot be silently ignored.


@dataclass(frozen=True)
class AssociateRequest(_FlatMessage):
    """Associate attack vectors with a system model."""

    model: str | dict | None = None
    scale: float = 0.1
    scorer: str = "coverage"
    workers: int = 1
    workspace: str | None = None


@dataclass(frozen=True)
class Table1Request(_FlatMessage):
    """Reproduce the paper's Table 1 (per-attribute association counts)."""

    model: str | dict | None = None
    scale: float = 0.1
    scorer: str = "coverage"
    workers: int = 1
    workspace: str | None = None


@dataclass(frozen=True)
class WhatIfRequest(_FlatMessage):
    """Compare a variant architecture against a baseline.

    ``variant=None`` applies the built-in hardened-workstation variant to the
    baseline model server-side.
    """

    model: str | dict | None = None
    variant: str | dict | None = None
    scale: float = 0.1
    scorer: str = "coverage"
    workers: int = 1
    workspace: str | None = None


@dataclass(frozen=True)
class ChainsRequest(_FlatMessage):
    """Enumerate exploit chains from entry points to a target component."""

    model: str | dict | None = None
    target: str = "BPCS Platform"
    max_length: int = 6
    limit: int = 10
    scale: float = 0.1
    scorer: str = "coverage"
    workers: int = 1
    workspace: str | None = None


@dataclass(frozen=True)
class TopologyRequest(_FlatMessage):
    """Topological security profile of a model (no corpus needed)."""

    model: str | dict | None = None
    workspace: str | None = None


@dataclass(frozen=True)
class RecommendRequest(_FlatMessage):
    """Derive design-time mitigation recommendations."""

    model: str | dict | None = None
    per_component: int = 3
    scale: float = 0.1
    scorer: str = "coverage"
    workers: int = 1
    workspace: str | None = None


@dataclass(frozen=True)
class SimulateRequest(_FlatMessage):
    """Run the SCADA simulation, optionally under a named attack scenario."""

    scenario: str = "nominal"
    duration_s: float = 420.0
    dt: float = 0.5
    workspace: str | None = None


@dataclass(frozen=True)
class ConsequencesRequest(_FlatMessage):
    """Map one attack-vector record to physical consequences."""

    record: str = "CWE-78"
    component: str = "BPCS Platform"
    duration_s: float = 420.0
    workspace: str | None = None


@dataclass(frozen=True)
class ValidateRequest(_FlatMessage):
    """Validate a system model for structural and fidelity smells."""

    model: str | dict | None = None
    workspace: str | None = None


@dataclass(frozen=True)
class ExportRequest(_FlatMessage):
    """Export a system model to GraphML text."""

    model: str | dict | None = None
    workspace: str | None = None


@dataclass(frozen=True)
class ExtendRequest(_FlatMessage):
    """Incrementally ingest new records into a served workspace.

    ``records`` is a :meth:`repro.corpus.store.CorpusStore.to_dict` payload
    carrying only the *new* records.  The named workspace (or the server's
    default) has the records appended to its artifact as a delta frame --
    no rebuild, no full rewrite -- and serves the extended corpus from the
    next request on.  Unlike every other operation, ``extend`` mutates
    server state: it is never response-cached, and repeating it fails with
    a duplicate-identifier error rather than silently double-ingesting.
    """

    records: dict | None = None
    workspace: str | None = None


@dataclass(frozen=True)
class CompactRequest(_FlatMessage):
    """Fold a served workspace's delta frames into one base frame.

    The named workspace (or the server's default) has its artifact rewritten
    in place -- atomically, so concurrent readers keep serving the old bytes
    -- as a single page-aligned base frame carrying the fully replayed state.
    Results are bit-identical before and after; what changes is artifact
    hygiene: a compacted artifact is the single-frame form the ``mmap`` load
    path wants, and torn tails left by crashed extends are healed.  Like
    ``extend`` it mutates server state and is never response-cached, but
    unlike ``extend`` repeating it is harmless (the second compact folds
    zero frames).
    """

    workspace: str | None = None


# -- responses ----------------------------------------------------------------


@dataclass(frozen=True)
class AssociateResponse:
    """Posture metrics and severity profile of an association."""

    posture: PostureMetrics
    severity_histogram: dict

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "posture": self.posture.to_dict(),
            "severity_histogram": dict(self.severity_histogram),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AssociateResponse":
        _check_envelope(cls, payload)
        return cls(
            posture=PostureMetrics.from_dict(payload["posture"]),
            severity_histogram=dict(payload["severity_histogram"]),
        )


@dataclass(frozen=True)
class Table1Response(_FlatMessage):
    """Every attribute's association counts (Table 1 rows, in model order)."""

    attribute_table: list

    @classmethod
    def from_dict(cls, payload: dict) -> "Table1Response":
        _check_envelope(cls, payload)
        return cls(attribute_table=[dict(row) for row in payload["attribute_table"]])


@dataclass(frozen=True)
class WhatIfResponse:
    """A posture comparison between the baseline and the variant."""

    comparison: WhatIfComparison

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "comparison": self.comparison.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WhatIfResponse":
        _check_envelope(cls, payload)
        return cls(comparison=WhatIfComparison.from_dict(payload["comparison"]))


@dataclass(frozen=True)
class ChainsResponse:
    """Exploit chains to the target (best-first, truncated to the limit)."""

    target: str
    chains: tuple
    summary: dict
    total_chains: int

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "target": self.target,
            "chains": [chain.to_dict() for chain in self.chains],
            "summary": dict(self.summary),
            "total_chains": self.total_chains,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChainsResponse":
        _check_envelope(cls, payload)
        return cls(
            target=payload["target"],
            chains=tuple(ExploitChain.from_dict(item) for item in payload["chains"]),
            summary=dict(payload["summary"]),
            total_chains=payload["total_chains"],
        )


@dataclass(frozen=True)
class TopologyResponse:
    """The topological security profile of the model."""

    report: TopologyReport

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "report": self.report.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TopologyResponse":
        _check_envelope(cls, payload)
        return cls(report=TopologyReport.from_dict(payload["report"]))


@dataclass(frozen=True)
class RecommendResponse:
    """Prioritized design-time recommendations."""

    recommendations: tuple

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "recommendations": [item.to_dict() for item in self.recommendations],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RecommendResponse":
        _check_envelope(cls, payload)
        return cls(
            recommendations=tuple(
                Recommendation.from_dict(item) for item in payload["recommendations"]
            )
        )


@dataclass(frozen=True)
class SimulateResponse(_FlatMessage):
    """Outcome of one closed-loop simulation run.

    ``hazard_events`` rows carry ``kind``, ``start_time_s``, ``duration_s``,
    and ``peak_value``.
    """

    scenario: str
    peak_temperature_c: float
    peak_speed_rpm: float
    sis_tripped: bool
    sis_trip_reason: str
    hazard_events: list

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulateResponse":
        _check_envelope(cls, payload)
        return cls(
            scenario=payload["scenario"],
            peak_temperature_c=payload["peak_temperature_c"],
            peak_speed_rpm=payload["peak_speed_rpm"],
            sis_tripped=payload["sis_tripped"],
            sis_trip_reason=payload["sis_trip_reason"],
            hazard_events=[dict(row) for row in payload["hazard_events"]],
        )


@dataclass(frozen=True)
class ConsequencesResponse:
    """Consequence assessments for one record on one component."""

    assessments: tuple

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "assessments": [item.to_dict() for item in self.assessments],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ConsequencesResponse":
        _check_envelope(cls, payload)
        return cls(
            assessments=tuple(
                ConsequenceAssessment.from_dict(item)
                for item in payload["assessments"]
            )
        )


@dataclass(frozen=True)
class ValidateResponse:
    """Findings of the model validator (empty means clean)."""

    findings: tuple

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidateResponse":
        _check_envelope(cls, payload)
        return cls(
            findings=tuple(
                ValidationFinding.from_dict(item) for item in payload["findings"]
            )
        )


@dataclass(frozen=True)
class ExportResponse(_FlatMessage):
    """A model exported as GraphML text (the caller decides where it lands)."""

    graphml: str
    component_count: int


@dataclass(frozen=True)
class ExtendResponse(_FlatMessage):
    """Outcome of one incremental workspace extension.

    ``added`` maps record kind to the number of records ingested;
    ``total_documents`` is the per-kind corpus size afterwards;
    ``corpus_fingerprint`` is the workspace's new chained fingerprint;
    ``appended_bytes`` is the delta-frame size appended to the artifact
    (0 for an in-memory workspace with no backing file).
    """

    added: dict
    total_documents: dict
    corpus_fingerprint: str
    appended_bytes: int
    workspace: str | None = None
    path: str | None = None


@dataclass(frozen=True)
class CompactResponse(_FlatMessage):
    """Outcome of one workspace compaction.

    ``frames_folded`` is the number of delta frames the rewrite absorbed
    (0 when the artifact was already a single base frame);
    ``bytes_before`` / ``bytes_after`` are the artifact sizes around the
    rewrite; ``corpus_fingerprint`` is unchanged by compaction and echoed
    for verification; ``total_documents`` is the per-kind corpus size.
    """

    frames_folded: int
    bytes_before: int
    bytes_after: int
    corpus_fingerprint: str
    total_documents: dict
    workspace: str | None = None
    path: str | None = None


#: Operation name -> (request type, response type).  The single source of
#: truth shared by the service, the HTTP server's routing table, the client,
#: and the README's schema table.
OPERATIONS: dict[str, tuple[type, type]] = {
    "associate": (AssociateRequest, AssociateResponse),
    "table1": (Table1Request, Table1Response),
    "whatif": (WhatIfRequest, WhatIfResponse),
    "chains": (ChainsRequest, ChainsResponse),
    "topology": (TopologyRequest, TopologyResponse),
    "recommend": (RecommendRequest, RecommendResponse),
    "simulate": (SimulateRequest, SimulateResponse),
    "consequences": (ConsequencesRequest, ConsequencesResponse),
    "validate": (ValidateRequest, ValidateResponse),
    "export": (ExportRequest, ExportResponse),
    "extend": (ExtendRequest, ExtendResponse),
    "compact": (CompactRequest, CompactResponse),
}

#: Operations that mutate server state.  Everything else is a pure function
#: of its request over an immutable corpus (and therefore response-cacheable
#: and safely repeatable); these are not.
MUTATING_OPERATIONS = frozenset({"extend", "compact"})


def parse_request(operation: str, payload: dict):
    """Parse a raw JSON payload into the typed request for ``operation``."""
    try:
        request_type, _ = OPERATIONS[operation]
    except KeyError:
        raise ServiceError(
            f"unknown operation {operation!r}",
            code="unknown_operation",
            status=404,
            details={"known_operations": sorted(OPERATIONS)},
        ) from None
    return request_type.from_dict(payload)

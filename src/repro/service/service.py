"""The long-lived analysis service: one warm engine, many analysts.

The ROADMAP's "serve the engine" item lands here.  An
:class:`AnalysisService` owns one warm :class:`~repro.workspace.Workspace`
per corpus scale (plus, optionally, a one-file workspace artifact and/or an
index snapshot on disk), a model registry, and the consequence-simulation
machinery, and exposes every CLI operation as a method taking a typed
request and returning a typed response (see
:mod:`repro.service.protocol`).

Three frontends drive the same object:

* the CLI constructs one in-process per invocation (thin adapters in
  :mod:`repro.cli`),
* the stdlib HTTP server (:mod:`repro.service.http`) shares one instance
  across its request threads,
* library users call it directly for programmatic batch analysis.

Thread safety: engine construction is serialized per corpus scale (a
``_ScaleSlot`` lock per scale, so concurrent first requests build once),
engines themselves use the lock-protected LRU caches and
:class:`~repro.search.engine.EngineStats` built in earlier PRs, and every
operation is a pure function of its request once the engine is warm -- N
threads hammering one service return byte-identical responses to serial
runs (the concurrency tests pin this).
"""

from __future__ import annotations

import copy
import functools
import hashlib
import sys
import threading
import time
from dataclasses import fields
from pathlib import Path

from repro import __version__, faults
from repro.analysis.metrics import compute_posture, severity_histogram
from repro.analysis.recommendations import recommend
from repro.analysis.topology import analyze_topology
from repro.analysis.whatif import WhatIfStudy
from repro.attacks.consequence import ConsequenceMapper
from repro.attacks.scenarios import SCENARIO_LIBRARY
from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    hardened_workstation_variant,
)
from repro.casestudies.uav import build_uav_model
from repro.corpus.cvss import clear_caches as cvss_clear_caches
from repro.corpus.store import CorpusStore
from repro.cps.scada import ScadaSimulation
from repro.graph.graphml import to_graphml_string
from repro.graph.model import SystemGraph
from repro.graph.validation import validate_model
from repro.obs.collectors import response_cache_info
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import span
from repro.search.cache import LruCache
from repro.search.chains import chain_summary, find_exploit_chains
from repro.search.engine import SCORERS, SearchEngine
from repro.service.protocol import (
    OPERATIONS,
    SCHEMA_VERSION,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    CompactRequest,
    CompactResponse,
    ConsequencesRequest,
    ConsequencesResponse,
    ExportRequest,
    ExportResponse,
    ExtendRequest,
    ExtendResponse,
    RecommendRequest,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    SimulateResponse,
    Table1Request,
    Table1Response,
    TopologyRequest,
    TopologyResponse,
    ValidateRequest,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
)
from repro.workspace import Workspace

#: Named models a request can refer to instead of shipping a model payload.
MODEL_REGISTRY = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}

#: The model used when a request does not name or carry one.
DEFAULT_MODEL = "centrifuge"

#: How many off-artifact corpus scales a service keeps warm at once.  Each
#: slot holds a full corpus + engine, so the bound is what keeps a long-lived
#: server's memory finite when clients ask for many distinct scales; the
#: least-recently-used slot is dropped (a re-request simply rebuilds it).
MAX_SCALE_SLOTS = 4

#: How many registered workspaces a service keeps *loaded* at once.  Only
#: path-backed registry entries are evictable (an in-memory workspace object
#: has nowhere to be reloaded from); the least-recently-used loaded entry is
#: unloaded and transparently reloaded from its artifact on the next request.
MAX_WARM_WORKSPACES = 8


def _cached_operation(method):
    """Serve repeated identical requests from the bounded response cache.

    Every operation is deterministic over the immutable corpus, so the
    canonical request JSON fully determines the response; caching whole
    responses turns a warm request into a copy instead of a posture
    recomputation over thousands of matches.  The cache keeps a pristine
    copy and every caller gets its own: the response dataclasses are frozen
    but carry dict/list fields, and a mutation by one caller must never
    poison what later identical requests (or the HTTP serializer) see.
    Errors are never cached -- an exception propagates before the put.
    """

    name = method.__name__
    fault_point = f"op.{name}"

    @functools.wraps(method)
    def wrapper(self, request):
        # Chaos seam: one module-global boolean check when disarmed, so the
        # instrumented path stays byte-identical and benchmark-neutral.
        faults.trip(fault_point)
        cache = self._response_cache
        if self.metrics is None:
            # Uninstrumented path: byte-identical behavior, zero metric cost
            # (the observability overhead benchmark's baseline).
            if cache is None:
                return method(self, request)
            digest = hashlib.sha256(
                canonical_json(request.to_dict()).encode("utf-8")
            ).hexdigest()
            key = (name, digest)
            cached = cache.get(key)
            if cached is not None:
                return copy.deepcopy(cached)
            response = method(self, request)
            cache.put(key, copy.deepcopy(response))
            return response
        started = time.perf_counter()
        requests_total, latency, cache_hits, cache_misses = (
            self._op_metric_children(name)
        )
        requests_total.inc()
        if cache is None:
            with span(f"engine_{name}"):
                response = method(self, request)
            latency.observe(time.perf_counter() - started)
            return response
        # Hash the canonical request JSON: inline model payloads can be
        # megabytes, and keeping them alive as cache keys would let 1024
        # entries pin gigabytes.  A digest keeps every key constant-size.
        with span("cache_lookup"):
            digest = hashlib.sha256(
                canonical_json(request.to_dict()).encode("utf-8")
            ).hexdigest()
            key = (name, digest)
            cached = cache.get(key)
        if cached is not None:
            cache_hits.inc()
            response = copy.deepcopy(cached)
            latency.observe(time.perf_counter() - started)
            return response
        cache_misses.inc()
        with span(f"engine_{name}"):
            response = method(self, request)
        cache.put(key, copy.deepcopy(response))
        latency.observe(time.perf_counter() - started)
        return response

    return wrapper


class _ScaleSlot:
    """One corpus scale's lazily built workspace, with its own build lock."""

    __slots__ = ("lock", "workspace")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.workspace: Workspace | None = None


class _WorkspaceEntry:
    """One named workspace of the registry.

    ``path`` is ``None`` for entries registered as in-memory
    :class:`Workspace` objects -- those stay pinned (there is no artifact to
    reload them from), while path-backed entries load lazily and participate
    in the warm-workspace LRU.
    """

    __slots__ = ("name", "path", "workspace", "hits", "loads", "lock")

    def __init__(
        self, name: str, path: Path | None, workspace: Workspace | None
    ) -> None:
        self.name = name
        self.path = path
        self.workspace = workspace
        self.hits = 0
        self.loads = 0
        #: Serializes *this entry's* artifact load only -- holding the global
        #: registry lock across a multi-hundred-ms disk load would stall
        #: routing for every other workspace.
        self.lock = threading.Lock()


class AnalysisService:
    """Typed operations over one warm engine per corpus scale.

    Parameters
    ----------
    workspace:
        A :class:`Workspace`, or the path of a one-file workspace artifact.
        A path is loaded lazily on the first request whose scale it might
        serve; a missing, stale, or corrupt artifact is rebuilt at the
        requested scale and (when ``save_artifacts`` is true) saved back --
        the same degrade-to-rebuild semantics the CLI always had.
    snapshot:
        Optional index-snapshot path (the lighter PR-1 artifact), used when
        no workspace serves the requested scale.
    save_artifacts:
        When true (the CLI default), rebuilt workspaces/snapshots are written
        back to their configured paths.  A long-lived server passes false so
        a single odd-scale request cannot overwrite the warm artifact it was
        started from.
    max_response_cache_entries:
        LRU bound on the whole-response cache.  Every operation is a pure
        function of its request over an immutable corpus, so identical
        requests are answered with a copy of the cached response; this is
        what makes a *warm* request tens of milliseconds of posture
        recomputation cheaper than a merely engine-warm one.  ``None`` means
        unbounded, ``0`` disables response caching (speed changes, bytes
        never do -- the equivalence tests run both ways).
    max_scale:
        Upper bound on the corpus scale a request may ask for -- a shared
        HTTP server's protection against one request synthesizing an
        arbitrarily large corpus.  The CLI's in-process backend passes
        ``None`` (no bound beyond positivity), preserving local freedom.
    workspaces:
        Optional **workspace registry**: ``{name: Workspace-or-path}``.  A
        request naming a registered workspace (its optional ``workspace``
        field) is routed to that workspace's warm engine pool; naming an
        unregistered one is a typed 404.  Path-backed entries load lazily
        and are LRU-bounded by ``max_warm_workspaces`` (eviction counters
        surface in :meth:`health`).
    default_workspace:
        Name of the registry entry that serves requests carrying no
        ``workspace`` field (``cpsec serve`` points this at its first
        ``--workspace``).  A default-routed request whose scale the entry
        does not serve falls back to the legacy artifact/slot path instead
        of erroring, preserving single-workspace server semantics.
    max_warm_workspaces:
        LRU bound on concurrently *loaded* path-backed registry entries.
    workspace_mmap:
        Load path-backed workspaces and artifacts memory-mapped
        (``Workspace.load(path, mmap=True)``): posting buffers become
        zero-copy views over the mapped pages, cold load stops scaling with
        corpus size, and pre-forked worker processes serving the same
        artifact share one OS page cache instead of N private heap copies.
        Results are bit-identical either way.
    enable_metrics:
        When true (default) the service owns a
        :class:`~repro.obs.metrics.MetricsRegistry` at :attr:`metrics` and
        every operation records a request counter, a latency histogram, and
        response-cache hit/miss counters (the ``/metrics`` endpoint renders
        them).  ``False`` is the uninstrumented baseline the observability
        overhead benchmark compares against.
    """

    def __init__(
        self,
        *,
        workspace: Workspace | str | Path | None = None,
        snapshot: str | Path | None = None,
        save_artifacts: bool = True,
        max_response_cache_entries: int | None = 1024,
        max_scale: float | None = 4.0,
        workspaces: dict[str, Workspace | str | Path] | None = None,
        default_workspace: str | None = None,
        max_warm_workspaces: int = MAX_WARM_WORKSPACES,
        workspace_mmap: bool = False,
        enable_metrics: bool = True,
    ) -> None:
        self._artifact_path: Path | None = None
        self._artifact: Workspace | None = None
        self._artifact_lock = threading.Lock()
        #: Load path-backed workspaces with ``Workspace.load(mmap=True)``:
        #: posting buffers become zero-copy views over the mapped artifact,
        #: so pre-forked worker processes share one OS page cache.
        self._workspace_mmap = workspace_mmap
        if isinstance(workspace, Workspace):
            self._artifact = workspace
        elif workspace is not None:
            self._artifact_path = Path(workspace)
        self._snapshot_path = Path(snapshot) if snapshot else None
        if self._snapshot_path is not None and (
            self._artifact is not None or self._artifact_path is not None
        ):
            self._warn(
                "--snapshot is ignored when --workspace is given "
                "(the workspace bundles the index)"
            )
            self._snapshot_path = None
        self._save_artifacts = save_artifacts
        self._max_scale = max_scale
        self._slots: dict[float, _ScaleSlot] = {}
        self._slots_lock = threading.Lock()
        self._response_cache = (
            None
            if max_response_cache_entries == 0
            else LruCache(max_response_cache_entries)
        )
        if max_warm_workspaces < 1:
            raise ValueError(
                f"max_warm_workspaces must be positive, got {max_warm_workspaces}"
            )
        self._max_warm_workspaces = max_warm_workspaces
        self._workspace_entries: dict[str, _WorkspaceEntry] = {}
        self._workspace_lru: dict[str, None] = {}
        self._workspace_evictions = 0
        self._registry_lock = threading.Lock()
        for name, source in (workspaces or {}).items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"workspace names must be non-empty strings, got {name!r}")
            if isinstance(source, Workspace):
                entry = _WorkspaceEntry(name, None, source)
            else:
                entry = _WorkspaceEntry(name, Path(source), None)
            self._workspace_entries[name] = entry
        if default_workspace is not None and default_workspace not in self._workspace_entries:
            raise ValueError(
                f"default workspace {default_workspace!r} is not registered"
            )
        self._default_workspace = default_workspace
        self._started_at = time.monotonic()
        #: Event-driven metrics (request counts, latency histograms, cache
        #: hit/miss); ``None`` is the uninstrumented benchmark baseline.
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if enable_metrics else None
        )
        self._op_metrics: dict[str, tuple] = {}
        if self.metrics is not None:
            self._requests_family = self.metrics.counter(
                "cpsec_requests_total",
                "Typed operation requests served (in-process and HTTP).",
                ("operation",),
            )
            self._latency_family = self.metrics.histogram(
                "cpsec_request_seconds",
                "Typed operation latency, response cache included.",
                ("operation",),
            )
            self._cache_family = self.metrics.counter(
                "cpsec_response_cache_total",
                "Whole-response cache lookups by outcome.",
                ("operation", "result"),
            )

    def _op_metric_children(self, operation: str) -> tuple:
        """Cached per-operation metric children (hot-path dict lookup only)."""
        children = self._op_metrics.get(operation)
        if children is None:
            children = (
                self._requests_family.labels(operation),
                self._latency_family.labels(operation),
                self._cache_family.labels(operation, "hit"),
                self._cache_family.labels(operation, "miss"),
            )
            self._op_metrics[operation] = children
        return children

    # -- plumbing -------------------------------------------------------------

    @staticmethod
    def _warn(message: str) -> None:
        print(message, file=sys.stderr)

    def _resolve_model(self, model: str | dict | None) -> SystemGraph:
        """Materialize a request's model: registry name, payload, or default."""
        if model is None:
            model = DEFAULT_MODEL
        if isinstance(model, str):
            builder = MODEL_REGISTRY.get(model)
            if builder is None:
                raise ServiceError(
                    f"unknown model {model!r}",
                    code="unknown_model",
                    status=404,
                    details={"known_models": sorted(MODEL_REGISTRY)},
                )
            return builder()
        if isinstance(model, dict):
            try:
                return SystemGraph.from_dict(model)
            except (KeyError, TypeError, ValueError) as error:
                raise ServiceError(
                    f"malformed model payload: {error}",
                    code="malformed_model",
                    status=422,
                ) from error
        raise ServiceError(
            f"model must be a registry name or a model payload, "
            f"got {type(model).__name__}",
            code="malformed_model",
            status=422,
        )

    def _check_scale(self, scale: float) -> float:
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise ServiceError(
                f"scale must be a number, got {scale!r}", code="invalid_scale"
            )
        if scale <= 0.0 or (self._max_scale is not None and scale > self._max_scale):
            bound = "inf" if self._max_scale is None else f"{self._max_scale:g}"
            raise ServiceError(
                f"scale must be within (0, {bound}], got {scale}",
                code="invalid_scale",
            )
        return float(scale)

    @staticmethod
    def _check_int(name: str, value, minimum: int, maximum: int) -> int:
        """Validate an integral request field; typed 400 on anything else."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServiceError(
                f"{name} must be an integer, got {value!r}",
                code=f"invalid_{name}",
            )
        if not minimum <= value <= maximum:
            raise ServiceError(
                f"{name} must be within [{minimum}, {maximum}], got {value}",
                code=f"invalid_{name}",
            )
        return value

    #: Longest accepted simulation horizon (one simulated day); keeps a
    #: single HTTP request from pinning a server thread indefinitely.
    MAX_SIMULATION_S = 86_400.0

    def _check_simulation_window(self, duration_s, dt=0.5) -> tuple[float, float]:
        for name, value in (("duration_s", duration_s), ("dt", dt)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ServiceError(
                    f"{name} must be a number, got {value!r}", code="invalid_duration"
                )
        if not 0.0 < duration_s <= self.MAX_SIMULATION_S:
            raise ServiceError(
                f"duration_s must be within (0, {self.MAX_SIMULATION_S:.0f}], "
                f"got {duration_s}",
                code="invalid_duration",
            )
        if not 0.0 < dt <= duration_s:
            raise ServiceError(
                f"dt must be within (0, duration_s], got {dt}",
                code="invalid_duration",
            )
        return float(duration_s), float(dt)

    def _check_scorer(self, scorer: str) -> str:
        if scorer not in SCORERS:
            raise ServiceError(
                f"unknown scorer {scorer!r}; expected one of {SCORERS}",
                code="invalid_scorer",
            )
        return scorer

    # -- workspace registry ----------------------------------------------------

    def _check_workspace(self, name) -> str | None:
        """Validate a request's optional ``workspace`` field.

        Every operation validates the field -- even the ones that never touch
        an engine -- so a typo is a typed 404, never a silent ignore.
        """
        if name is None:
            return None
        if not isinstance(name, str):
            raise ServiceError(
                f"workspace must be a registered workspace name, got {name!r}",
                code="invalid_workspace",
            )
        if name not in self._workspace_entries:
            raise ServiceError(
                f"unknown workspace {name!r}",
                code="unknown_workspace",
                status=404,
                details={"known_workspaces": sorted(self._workspace_entries)},
            )
        return name

    def _registry_workspace(self, name: str) -> Workspace:
        """The named registry entry's workspace, loaded and LRU-touched.

        Path-backed entries load lazily under the registry lock and are
        bounded by the warm-workspace LRU: the least-recently-used loaded
        entry is unloaded (eviction counted, engines dropped with it) and
        reloaded from its artifact on its next request.  In-memory entries
        are pinned -- there is nothing to reload them from.
        """
        entry = self._workspace_entries[name]
        with entry.lock:
            workspace = entry.workspace
            if workspace is None:
                try:
                    faults.trip("artifact.load")
                    workspace = Workspace.load(
                        entry.path, mmap=self._workspace_mmap
                    )
                except (ValueError, OSError) as error:
                    # The entry's workspace stays None, so the registry slot
                    # is not dead: the next request retries the load -- a
                    # repaired/restored artifact recovers without a restart.
                    raise ServiceError(
                        f"cannot load workspace {name!r} from {entry.path}: {error}",
                        code="workspace_load_failed",
                        status=503,
                        details={"workspace": name, "recoverable": True},
                    ) from error
                entry.workspace = workspace
                entry.loads += 1
        with self._registry_lock:
            entry.hits += 1
            if entry.path is not None:
                self._workspace_lru.pop(name, None)
                self._workspace_lru[name] = None
                while len(self._workspace_lru) > self._max_warm_workspaces:
                    evicted = next(iter(self._workspace_lru))
                    del self._workspace_lru[evicted]
                    self._workspace_entries[evicted].workspace = None
                    self._workspace_evictions += 1
        return workspace

    def warm_workspace(self, name: str, scorer: str | None = None) -> Workspace:
        """Load a registered workspace and fit an engine now, not per-request.

        ``cpsec serve`` calls this per ``--workspace`` at startup so the
        first analyst request lands on a warm engine.
        """
        workspace = self._registry_workspace(self._check_workspace(name))
        workspace.shared_engine(**({} if scorer is None else {"scorer": scorer}))
        return workspace

    def _workspace_engine(
        self, name: str, scale: float, scorer: str, *, explicit: bool
    ) -> SearchEngine | None:
        """The named workspace's engine -- or what a scale mismatch means.

        An *explicitly* requested workspace that does not serve the requested
        scale is a typed 409 (the caller asked for a contradiction); the
        implicitly routed default falls back (``None``) to the legacy
        artifact/slot path, preserving single-workspace server semantics.
        Workspaces with no recorded corpus parameters serve any scale --
        there is nothing to check against.
        """
        workspace = self._registry_workspace(name)
        if workspace.params is None or workspace.matches(scale=scale):
            return workspace.shared_engine(scorer=scorer)
        if explicit:
            raise ServiceError(
                f"workspace {name!r} serves corpus scale "
                f"{workspace.params.get('scale')!r}, not {scale!r}",
                code="workspace_scale_mismatch",
                status=409,
                details={
                    "workspace": name,
                    "workspace_scale": workspace.params.get("scale"),
                    "requested_scale": scale,
                },
            )
        return None

    def _engine(
        self, scale: float, scorer: str, workspace: str | None = None
    ) -> SearchEngine:
        """The warm engine for (scale, scorer), built at most once per config."""
        scale = self._check_scale(scale)
        scorer = self._check_scorer(scorer)
        workspace = self._check_workspace(workspace)
        if workspace is not None:
            return self._workspace_engine(workspace, scale, scorer, explicit=True)
        if self._default_workspace is not None:
            engine = self._workspace_engine(
                self._default_workspace, scale, scorer, explicit=False
            )
            if engine is not None:
                return engine
        artifact = self._load_artifact()
        if artifact is not None and (
            artifact.params is None or artifact.matches(scale=scale)
        ):
            # No recorded corpus parameters (an extended artifact, or one
            # built around an external corpus) means "serves any scale" --
            # the same rule the workspace registry applies.  Rebuilding here
            # would overwrite extended data with a fresh synthesis.
            return artifact.shared_engine(scorer=scorer)
        if self._artifact_path is not None and self._save_artifacts:
            # CLI semantics: a configured artifact that records *different*
            # generator parameters than the requested scale is rebuilt at
            # that scale and overwritten.
            return self._rebuild_artifact(scale, scorer).shared_engine(scorer=scorer)
        with self._slots_lock:
            slot = self._slots.get(scale)
            if slot is None:
                slot = self._slots[scale] = _ScaleSlot()
            else:
                # Reinsert so plain dict order doubles as LRU order.
                self._slots[scale] = self._slots.pop(scale)
            while len(self._slots) > MAX_SCALE_SLOTS:
                self._slots.pop(next(iter(self._slots)))
        with slot.lock:
            if slot.workspace is None:
                slot.workspace = self._build_workspace(scale, scorer)
        return slot.workspace.shared_engine(scorer=scorer)

    def _load_artifact(self) -> Workspace | None:
        """The attached workspace artifact, loaded at most once per path."""
        if self._artifact is not None or self._artifact_path is None:
            return self._artifact
        with self._artifact_lock:
            if self._artifact is None and self._artifact_path.exists():
                try:
                    self._artifact = Workspace.load(
                        self._artifact_path, mmap=self._workspace_mmap
                    )
                except (ValueError, OSError) as error:
                    self._warn(f"ignoring stale workspace artifact: {error}")
        return self._artifact

    def _rebuild_artifact(self, scale: float, scorer: str) -> Workspace:
        with self._artifact_lock:
            if self._artifact is not None and (
                self._artifact.params is None
                or self._artifact.matches(scale=scale)
            ):
                return self._artifact
            if self._artifact is not None:
                self._warn(
                    "ignoring workspace artifact built with different parameters"
                )
            built = Workspace.build(scale=scale, scorer=scorer)
            try:
                built.save(self._artifact_path)
            except OSError as error:
                self._warn(f"could not write workspace artifact: {error}")
            self._artifact = built
            return built

    def _build_workspace(self, scale: float, scorer: str) -> Workspace:
        """Build one scale's workspace, via the index snapshot when configured."""
        if self._snapshot_path is None:
            return Workspace.build(scale=scale, scorer=scorer)
        from repro.corpus.synthesis import build_corpus

        corpus = build_corpus(scale=scale)
        if self._snapshot_path.exists():
            try:
                engine = SearchEngine.from_index_snapshot(
                    corpus, self._snapshot_path, scorer=scorer
                )
                return Workspace.from_engine(engine)
            except (ValueError, OSError) as error:
                self._warn(f"ignoring stale index snapshot: {error}")
        engine = SearchEngine(corpus, scorer=scorer)
        if self._save_artifacts:
            try:
                engine.save_index_snapshot(self._snapshot_path)
            except OSError as error:
                self._warn(f"could not write index snapshot: {error}")
        return Workspace.from_engine(engine)

    def _associate(self, request) -> tuple:
        """Shared associate step: (engine, association) for a request."""
        workers = self._check_int("workers", request.workers, 1, 64)
        engine = self._engine(request.scale, request.scorer, request.workspace)
        model = self._resolve_model(request.model)
        return engine, engine.associate(model, workers=workers)

    # -- operations -----------------------------------------------------------

    @_cached_operation
    def associate(self, request: AssociateRequest) -> AssociateResponse:
        """Associate attack vectors with a model; posture + severity profile."""
        _, association = self._associate(request)
        return AssociateResponse(
            posture=compute_posture(association),
            severity_histogram=severity_histogram(association),
        )

    @_cached_operation
    def table1(self, request: Table1Request) -> Table1Response:
        """Per-attribute association counts (the paper's Table 1 rows)."""
        _, association = self._associate(request)
        return Table1Response(attribute_table=association.attribute_table())

    @_cached_operation
    def whatif(self, request: WhatIfRequest) -> WhatIfResponse:
        """Compare a variant architecture against the baseline."""
        workers = self._check_int("workers", request.workers, 1, 64)
        engine = self._engine(request.scale, request.scorer, request.workspace)
        baseline = self._resolve_model(request.model)
        if request.variant is None:
            variant = hardened_workstation_variant(baseline)
        else:
            variant = self._resolve_model(request.variant)
        study = WhatIfStudy(engine, workers=workers)
        return WhatIfResponse(comparison=study.compare(baseline, variant))

    @_cached_operation
    def chains(self, request: ChainsRequest) -> ChainsResponse:
        """Exploit chains from entry points to the target component."""
        max_length = self._check_int("max_length", request.max_length, 1, 32)
        limit = self._check_int("limit", request.limit, 1, 10_000)
        _, association = self._associate(request)
        try:
            chains = find_exploit_chains(
                association, request.target, max_length=max_length
            )
        except KeyError:
            raise ServiceError(
                f"unknown component {request.target!r}",
                code="unknown_component",
                status=404,
                details={
                    "known_components": list(
                        association.system.component_names()
                    )
                },
            ) from None
        return ChainsResponse(
            target=request.target,
            chains=tuple(chains[:limit]),
            summary=chain_summary(chains),
            total_chains=len(chains),
        )

    @_cached_operation
    def topology(self, request: TopologyRequest) -> TopologyResponse:
        """Topological security profile of the model (no corpus involved)."""
        self._check_workspace(request.workspace)
        model = self._resolve_model(request.model)
        return TopologyResponse(report=analyze_topology(model))

    @_cached_operation
    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Design-time mitigation recommendations from an association."""
        per_component = self._check_int(
            "per_component", request.per_component, 1, 100
        )
        engine, association = self._associate(request)
        recommendations = recommend(
            association, engine.corpus, per_component=per_component
        )
        return RecommendResponse(recommendations=tuple(recommendations))

    @_cached_operation
    def simulate(self, request: SimulateRequest) -> SimulateResponse:
        """One closed-loop SCADA run, nominal or under a named scenario."""
        self._check_workspace(request.workspace)
        duration_s, dt = self._check_simulation_window(request.duration_s, request.dt)
        if request.scenario == "nominal":
            interventions = []
        else:
            scenario = SCENARIO_LIBRARY.get(request.scenario)
            if scenario is None:
                raise ServiceError(
                    f"unknown scenario {request.scenario!r}",
                    code="unknown_scenario",
                    status=404,
                    details={"known_scenarios": list(SCENARIO_LIBRARY)},
                )
            interventions = scenario.interventions()
        simulation = ScadaSimulation(interventions=interventions)
        trace = simulation.run(duration_s=duration_s, dt=dt)
        report = trace.hazards()
        return SimulateResponse(
            scenario=request.scenario,
            peak_temperature_c=trace.max_temperature(),
            peak_speed_rpm=trace.max_speed(),
            sis_tripped=simulation.sis.tripped,
            sis_trip_reason=simulation.sis.trip_reason,
            hazard_events=[
                {
                    "kind": event.kind.value,
                    "start_time_s": event.start_time_s,
                    "duration_s": event.duration_s,
                    "peak_value": event.peak_value,
                }
                for event in report.events
            ],
        )

    @_cached_operation
    def consequences(self, request: ConsequencesRequest) -> ConsequencesResponse:
        """Physical-consequence assessments for one record on one component."""
        self._check_workspace(request.workspace)
        duration_s, _ = self._check_simulation_window(request.duration_s)
        mapper = ConsequenceMapper(duration_s=duration_s)
        assessments = mapper.assess(request.record, request.component)
        return ConsequencesResponse(assessments=tuple(assessments))

    @_cached_operation
    def validate(self, request: ValidateRequest) -> ValidateResponse:
        """Structural/fidelity validation findings for the model."""
        self._check_workspace(request.workspace)
        model = self._resolve_model(request.model)
        return ValidateResponse(findings=tuple(validate_model(model)))

    @_cached_operation
    def export(self, request: ExportRequest) -> ExportResponse:
        """The model as GraphML text (the caller decides where it lands)."""
        self._check_workspace(request.workspace)
        model = self._resolve_model(request.model)
        return ExportResponse(
            graphml=to_graphml_string(model), component_count=len(model)
        )

    def extend(self, request: ExtendRequest) -> ExtendResponse:
        """Incrementally ingest new records into a served workspace.

        The target is the request's named workspace, else the default
        registry entry, else the service's configured artifact.  Path-backed
        targets get a delta frame *appended* to their artifact -- a fresh
        copy is loaded, extended, and swapped in, so in-flight requests keep
        their consistent pre-extension engines -- and in-memory workspaces
        are extended in place.  Deliberately **not** response-cached (it
        mutates state), and the whole response cache is dropped afterwards:
        every cached response describes the pre-extension corpus.
        """
        name = self._check_workspace(request.workspace)
        if not isinstance(request.records, dict) or not request.records:
            raise ServiceError(
                "extend needs a 'records' payload (CorpusStore.to_dict form) "
                "carrying at least one record",
                code="malformed_records",
            )
        try:
            delta_store = CorpusStore.from_dict(request.records)
        except (KeyError, TypeError, ValueError) as error:
            raise ServiceError(
                f"malformed records payload: {error}",
                code="malformed_records",
                status=422,
            ) from error
        records = list(delta_store.all_records())
        if not records:
            raise ServiceError(
                "records payload contains no records", code="malformed_records"
            )
        if name is None:
            name = self._default_workspace
        try:
            if name is not None:
                summary = self._extend_registry_entry(name, records)
            else:
                summary = self._extend_artifact(records)
        except ValueError as error:
            # Duplicate identifiers (the one data-level conflict) and corrupt
            # payloads both surface here as typed conflicts, not 500s.
            raise ServiceError(
                f"cannot extend workspace: {error}",
                code="extend_conflict",
                status=409,
            ) from error
        if self._response_cache is not None:
            self._response_cache.clear()
        return ExtendResponse(
            added=summary["added"],
            total_documents=summary["total_documents"],
            corpus_fingerprint=summary["corpus_fingerprint"],
            appended_bytes=summary["appended_bytes"],
            workspace=name,
            path=summary["path"],
        )

    def _extend_registry_entry(self, name: str, records: list) -> dict:
        """Extend one registry entry (path-backed: append + swap a fresh copy)."""
        entry = self._workspace_entries[name]
        with entry.lock:
            if entry.path is not None:
                try:
                    workspace = Workspace.load(entry.path)
                except (ValueError, OSError) as error:
                    raise ServiceError(
                        f"cannot load workspace {name!r} from {entry.path}: {error}",
                        code="workspace_load_failed",
                        status=503,
                    ) from error
                summary = workspace.extend(records, path=entry.path)
                entry.workspace = workspace
                entry.loads += 1
            else:
                workspace = entry.workspace
                summary = workspace.extend(records)
        # Re-warm outside the entry lock so concurrent routing is not
        # stalled behind a TF-IDF fit; the first post-extend request then
        # lands on a warm engine, matching serve-startup behavior.
        workspace.shared_engine()
        return summary

    def _extend_artifact(self, records: list) -> dict:
        """Extend the service's configured artifact (the CLI's --workspace)."""
        with self._artifact_lock:
            if self._artifact_path is not None:
                if not self._artifact_path.exists():
                    raise ServiceError(
                        f"workspace artifact not found: {self._artifact_path} "
                        "(build it first, then extend)",
                        code="workspace_not_found",
                        status=404,
                    )
                try:
                    workspace = Workspace.load(self._artifact_path)
                except (ValueError, OSError) as error:
                    raise ServiceError(
                        f"cannot load workspace artifact "
                        f"{self._artifact_path}: {error}",
                        code="workspace_load_failed",
                        status=503,
                    ) from error
                summary = workspace.extend(records, path=self._artifact_path)
                self._artifact = workspace
            elif self._artifact is not None:
                summary = self._artifact.extend(records)
            else:
                raise ServiceError(
                    "no workspace is configured to extend (start with "
                    "--workspace, or name a registered workspace)",
                    code="no_workspace",
                    status=409,
                )
        return summary

    def compact(self, request: CompactRequest) -> CompactResponse:
        """Fold a served workspace's delta frames into one base frame.

        The target resolves exactly like :meth:`extend`: the request's named
        workspace, else the default registry entry, else the service's
        configured artifact.  Path-backed targets are rewritten atomically
        as a single page-aligned base frame (a fresh copy is loaded,
        compacted, and swapped in, so in-flight requests keep their
        consistent engines and concurrent readers keep serving the old
        bytes); a torn tail left by a crashed extend is healed by the
        rewrite.  Mutating, so never response-cached; the response cache is
        dropped afterwards for uniformity with :meth:`extend` (results are
        bit-identical across a compact, but cache entries are cheap to
        rebuild and mutation-clears-cache is one rule, not two).
        """
        name = self._check_workspace(request.workspace)
        if name is None:
            name = self._default_workspace
        try:
            if name is not None:
                summary = self._compact_registry_entry(name)
            else:
                summary = self._compact_artifact()
        except ValueError as error:
            raise ServiceError(
                f"cannot compact workspace: {error}",
                code="compact_conflict",
                status=409,
            ) from error
        if self._response_cache is not None:
            self._response_cache.clear()
        return CompactResponse(
            frames_folded=summary["frames_folded"],
            bytes_before=summary["bytes_before"],
            bytes_after=summary["bytes_after"],
            corpus_fingerprint=summary["corpus_fingerprint"],
            total_documents=summary["total_documents"],
            workspace=name,
            path=summary["path"],
        )

    def _compact_registry_entry(self, name: str) -> dict:
        """Compact one registry entry's artifact (swap in the fresh copy)."""
        entry = self._workspace_entries[name]
        with entry.lock:
            if entry.path is None:
                raise ServiceError(
                    f"workspace {name!r} is in-memory; only artifact-backed "
                    "workspaces can be compacted",
                    code="no_artifact",
                    status=409,
                )
            if not entry.path.exists():
                raise ServiceError(
                    f"workspace artifact not found: {entry.path}",
                    code="workspace_not_found",
                    status=404,
                )
            try:
                workspace = Workspace.load(entry.path)
            except (ValueError, OSError) as error:
                raise ServiceError(
                    f"cannot load workspace {name!r} from {entry.path}: {error}",
                    code="workspace_load_failed",
                    status=503,
                ) from error
            summary = workspace.compact(entry.path)
            entry.workspace = workspace
            entry.loads += 1
        # Re-warm outside the entry lock, matching extend().
        workspace.shared_engine()
        return summary

    def _compact_artifact(self) -> dict:
        """Compact the service's configured artifact (the CLI's --workspace)."""
        with self._artifact_lock:
            if self._artifact_path is None:
                raise ServiceError(
                    "no workspace artifact is configured to compact (start "
                    "with --workspace, or name a registered workspace)",
                    code="no_workspace",
                    status=409,
                )
            if not self._artifact_path.exists():
                raise ServiceError(
                    f"workspace artifact not found: {self._artifact_path}",
                    code="workspace_not_found",
                    status=404,
                )
            try:
                workspace = Workspace.load(self._artifact_path)
            except (ValueError, OSError) as error:
                raise ServiceError(
                    f"cannot load workspace artifact "
                    f"{self._artifact_path}: {error}",
                    code="workspace_load_failed",
                    status=503,
                ) from error
            summary = workspace.compact(self._artifact_path)
            self._artifact = workspace
        return summary

    # -- process lifecycle ----------------------------------------------------

    def post_fork_reset(self) -> None:
        """Drop mutable state a freshly forked worker must not inherit.

        ``cpsec serve --workers N`` warms every workspace in the parent --
        so the fitted TF-IDF models and posting buffers are shared
        copy-on-write (or, mmap-loaded, shared page cache) across workers --
        then forks.  Everything *observable* and mutable must reset in the
        child: per-engine result caches and stats counters (a worker's
        ``/healthz`` must not report the parent's warm-up traffic), the
        whole-response cache, and the process-wide CVSS parse/score caches.
        The expensive immutable state (fitted models, indexes, prototypes)
        is deliberately kept -- results are a pure function of it, and
        re-deriving it per worker would defeat pre-forking.
        """
        if self._response_cache is not None:
            self._response_cache.clear()
        workspaces = [
            entry.workspace
            for entry in self._workspace_entries.values()
            if entry.workspace is not None
        ]
        if self._artifact is not None:
            workspaces.append(self._artifact)
        with self._slots_lock:
            workspaces.extend(
                slot.workspace
                for slot in self._slots.values()
                if slot.workspace is not None
            )
        for workspace in workspaces:
            for engine in workspace.engine_handles():
                engine.clear_caches()
                engine.stats.reset()
        cvss_clear_caches()
        if self.metrics is not None:
            # A worker's /metrics must not report the parent's warm-up
            # traffic; families survive the reset, data does not.
            self.metrics.reset()

    # -- introspection --------------------------------------------------------

    def ops_info(self) -> dict:
        """The ``GET /v1/ops`` discovery payload.

        Lists every operation with its request/response shape, the model
        registry, and the registered workspace names -- enough for a client
        to introspect a server instead of hardcoding the README's table.
        """
        operations = {
            name: {
                "request_fields": [field.name for field in fields(request_type)],
                "response_fields": [field.name for field in fields(response_type)],
            }
            for name, (request_type, response_type) in sorted(OPERATIONS.items())
        }
        return {
            "schema_version": SCHEMA_VERSION,
            "version": __version__,
            "operations": operations,
            "models": sorted(MODEL_REGISTRY),
            "workspaces": sorted(self._workspace_entries),
            "default_workspace": self._default_workspace,
        }

    def health(self) -> dict:
        """Liveness and warm-state payload for the ``/healthz`` endpoint."""
        engines = []
        seen: dict[int, Workspace] = {}
        artifact = self._artifact
        if artifact is not None:
            seen[id(artifact)] = artifact
        with self._slots_lock:
            for slot in self._slots.values():
                # Dedupe by identity: Workspace equality would deep-compare
                # the multi-megabyte prepared bundle on every health probe.
                if slot.workspace is not None:
                    seen.setdefault(id(slot.workspace), slot.workspace)
        workspaces_payload: dict[str, dict] = {}
        with self._registry_lock:
            entries = list(self._workspace_entries.values())
            registry_payload = {
                "registered": len(entries),
                "warm": sum(1 for entry in entries if entry.workspace is not None),
                "max_warm": self._max_warm_workspaces,
                "evictions": self._workspace_evictions,
                "default": self._default_workspace,
            }
        for entry in entries:
            workspace = entry.workspace
            workspaces_payload[entry.name] = {
                "loaded": workspace is not None,
                "path": str(entry.path) if entry.path is not None else None,
                "hits": entry.hits,
                "loads": entry.loads,
                "scale": (workspace.params or {}).get("scale")
                if workspace is not None
                else None,
                "engine_pool": workspace.engine_pool_info()
                if workspace is not None
                else None,
            }
            if workspace is not None:
                seen.setdefault(id(workspace), workspace)
        for workspace in seen.values():
            scale = (workspace.params or {}).get("scale")
            for engine in workspace.engine_handles():
                info = engine.health_info()
                info["scale"] = scale
                engines.append(info)
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "operations": sorted(OPERATIONS),
            "models": sorted(MODEL_REGISTRY),
            # Shared with the /metrics collectors (one source of truth); the
            # counter-ish fields here are kept for compatibility but are
            # deprecated in favor of the exposition-format /metrics endpoint.
            "response_cache": response_cache_info(self._response_cache),
            "workspaces": workspaces_payload,
            "workspace_registry": registry_payload,
            "engines": engines,
            "metrics": {
                "endpoint": "/metrics",
                "deprecated_fields": [
                    "engines[].stats",
                    "engines[].cache_info",
                    "response_cache.entries",
                    "response_cache.evictions",
                    "jobs.scheduler",
                ],
            },
        }

"""The long-lived analysis service: one warm engine, many analysts.

The ROADMAP's "serve the engine" item lands here.  An
:class:`AnalysisService` owns one warm :class:`~repro.workspace.Workspace`
per corpus scale (plus, optionally, a one-file workspace artifact and/or an
index snapshot on disk), a model registry, and the consequence-simulation
machinery, and exposes every CLI operation as a method taking a typed
request and returning a typed response (see
:mod:`repro.service.protocol`).

Three frontends drive the same object:

* the CLI constructs one in-process per invocation (thin adapters in
  :mod:`repro.cli`),
* the stdlib HTTP server (:mod:`repro.service.http`) shares one instance
  across its request threads,
* library users call it directly for programmatic batch analysis.

Thread safety: engine construction is serialized per corpus scale (a
``_ScaleSlot`` lock per scale, so concurrent first requests build once),
engines themselves use the lock-protected LRU caches and
:class:`~repro.search.engine.EngineStats` built in earlier PRs, and every
operation is a pure function of its request once the engine is warm -- N
threads hammering one service return byte-identical responses to serial
runs (the concurrency tests pin this).
"""

from __future__ import annotations

import copy
import functools
import hashlib
import sys
import threading
import time
from pathlib import Path

from repro import __version__
from repro.analysis.metrics import compute_posture, severity_histogram
from repro.analysis.recommendations import recommend
from repro.analysis.topology import analyze_topology
from repro.analysis.whatif import WhatIfStudy
from repro.attacks.consequence import ConsequenceMapper
from repro.attacks.scenarios import SCENARIO_LIBRARY
from repro.casestudies.centrifuge import (
    build_centrifuge_model,
    hardened_workstation_variant,
)
from repro.casestudies.uav import build_uav_model
from repro.cps.scada import ScadaSimulation
from repro.graph.graphml import to_graphml_string
from repro.graph.model import SystemGraph
from repro.graph.validation import validate_model
from repro.search.cache import LruCache
from repro.search.chains import chain_summary, find_exploit_chains
from repro.search.engine import SCORERS, SearchEngine
from repro.service.protocol import (
    OPERATIONS,
    SCHEMA_VERSION,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    ConsequencesRequest,
    ConsequencesResponse,
    ExportRequest,
    ExportResponse,
    RecommendRequest,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    SimulateResponse,
    Table1Request,
    Table1Response,
    TopologyRequest,
    TopologyResponse,
    ValidateRequest,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
)
from repro.workspace import Workspace

#: Named models a request can refer to instead of shipping a model payload.
MODEL_REGISTRY = {
    "centrifuge": build_centrifuge_model,
    "uav": build_uav_model,
}

#: The model used when a request does not name or carry one.
DEFAULT_MODEL = "centrifuge"

#: How many off-artifact corpus scales a service keeps warm at once.  Each
#: slot holds a full corpus + engine, so the bound is what keeps a long-lived
#: server's memory finite when clients ask for many distinct scales; the
#: least-recently-used slot is dropped (a re-request simply rebuilds it).
MAX_SCALE_SLOTS = 4


def _cached_operation(method):
    """Serve repeated identical requests from the bounded response cache.

    Every operation is deterministic over the immutable corpus, so the
    canonical request JSON fully determines the response; caching whole
    responses turns a warm request into a copy instead of a posture
    recomputation over thousands of matches.  The cache keeps a pristine
    copy and every caller gets its own: the response dataclasses are frozen
    but carry dict/list fields, and a mutation by one caller must never
    poison what later identical requests (or the HTTP serializer) see.
    Errors are never cached -- an exception propagates before the put.
    """

    name = method.__name__

    @functools.wraps(method)
    def wrapper(self, request):
        cache = self._response_cache
        if cache is None:
            return method(self, request)
        # Hash the canonical request JSON: inline model payloads can be
        # megabytes, and keeping them alive as cache keys would let 1024
        # entries pin gigabytes.  A digest keeps every key constant-size.
        digest = hashlib.sha256(
            canonical_json(request.to_dict()).encode("utf-8")
        ).hexdigest()
        key = (name, digest)
        cached = cache.get(key)
        if cached is not None:
            return copy.deepcopy(cached)
        response = method(self, request)
        cache.put(key, copy.deepcopy(response))
        return response

    return wrapper


class _ScaleSlot:
    """One corpus scale's lazily built workspace, with its own build lock."""

    __slots__ = ("lock", "workspace")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.workspace: Workspace | None = None


class AnalysisService:
    """Typed operations over one warm engine per corpus scale.

    Parameters
    ----------
    workspace:
        A :class:`Workspace`, or the path of a one-file workspace artifact.
        A path is loaded lazily on the first request whose scale it might
        serve; a missing, stale, or corrupt artifact is rebuilt at the
        requested scale and (when ``save_artifacts`` is true) saved back --
        the same degrade-to-rebuild semantics the CLI always had.
    snapshot:
        Optional index-snapshot path (the lighter PR-1 artifact), used when
        no workspace serves the requested scale.
    save_artifacts:
        When true (the CLI default), rebuilt workspaces/snapshots are written
        back to their configured paths.  A long-lived server passes false so
        a single odd-scale request cannot overwrite the warm artifact it was
        started from.
    max_response_cache_entries:
        LRU bound on the whole-response cache.  Every operation is a pure
        function of its request over an immutable corpus, so identical
        requests are answered with a copy of the cached response; this is
        what makes a *warm* request tens of milliseconds of posture
        recomputation cheaper than a merely engine-warm one.  ``None`` means
        unbounded, ``0`` disables response caching (speed changes, bytes
        never do -- the equivalence tests run both ways).
    max_scale:
        Upper bound on the corpus scale a request may ask for -- a shared
        HTTP server's protection against one request synthesizing an
        arbitrarily large corpus.  The CLI's in-process backend passes
        ``None`` (no bound beyond positivity), preserving local freedom.
    """

    def __init__(
        self,
        *,
        workspace: Workspace | str | Path | None = None,
        snapshot: str | Path | None = None,
        save_artifacts: bool = True,
        max_response_cache_entries: int | None = 1024,
        max_scale: float | None = 4.0,
    ) -> None:
        self._artifact_path: Path | None = None
        self._artifact: Workspace | None = None
        self._artifact_lock = threading.Lock()
        if isinstance(workspace, Workspace):
            self._artifact = workspace
        elif workspace is not None:
            self._artifact_path = Path(workspace)
        self._snapshot_path = Path(snapshot) if snapshot else None
        if self._snapshot_path is not None and (
            self._artifact is not None or self._artifact_path is not None
        ):
            self._warn(
                "--snapshot is ignored when --workspace is given "
                "(the workspace bundles the index)"
            )
            self._snapshot_path = None
        self._save_artifacts = save_artifacts
        self._max_scale = max_scale
        self._slots: dict[float, _ScaleSlot] = {}
        self._slots_lock = threading.Lock()
        self._response_cache = (
            None
            if max_response_cache_entries == 0
            else LruCache(max_response_cache_entries)
        )
        self._started_at = time.monotonic()

    # -- plumbing -------------------------------------------------------------

    @staticmethod
    def _warn(message: str) -> None:
        print(message, file=sys.stderr)

    def _resolve_model(self, model: str | dict | None) -> SystemGraph:
        """Materialize a request's model: registry name, payload, or default."""
        if model is None:
            model = DEFAULT_MODEL
        if isinstance(model, str):
            builder = MODEL_REGISTRY.get(model)
            if builder is None:
                raise ServiceError(
                    f"unknown model {model!r}",
                    code="unknown_model",
                    status=404,
                    details={"known_models": sorted(MODEL_REGISTRY)},
                )
            return builder()
        if isinstance(model, dict):
            try:
                return SystemGraph.from_dict(model)
            except (KeyError, TypeError, ValueError) as error:
                raise ServiceError(
                    f"malformed model payload: {error}",
                    code="malformed_model",
                    status=422,
                ) from error
        raise ServiceError(
            f"model must be a registry name or a model payload, "
            f"got {type(model).__name__}",
            code="malformed_model",
            status=422,
        )

    def _check_scale(self, scale: float) -> float:
        if not isinstance(scale, (int, float)) or isinstance(scale, bool):
            raise ServiceError(
                f"scale must be a number, got {scale!r}", code="invalid_scale"
            )
        if scale <= 0.0 or (self._max_scale is not None and scale > self._max_scale):
            bound = "inf" if self._max_scale is None else f"{self._max_scale:g}"
            raise ServiceError(
                f"scale must be within (0, {bound}], got {scale}",
                code="invalid_scale",
            )
        return float(scale)

    @staticmethod
    def _check_int(name: str, value, minimum: int, maximum: int) -> int:
        """Validate an integral request field; typed 400 on anything else."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise ServiceError(
                f"{name} must be an integer, got {value!r}",
                code=f"invalid_{name}",
            )
        if not minimum <= value <= maximum:
            raise ServiceError(
                f"{name} must be within [{minimum}, {maximum}], got {value}",
                code=f"invalid_{name}",
            )
        return value

    #: Longest accepted simulation horizon (one simulated day); keeps a
    #: single HTTP request from pinning a server thread indefinitely.
    MAX_SIMULATION_S = 86_400.0

    def _check_simulation_window(self, duration_s, dt=0.5) -> tuple[float, float]:
        for name, value in (("duration_s", duration_s), ("dt", dt)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ServiceError(
                    f"{name} must be a number, got {value!r}", code="invalid_duration"
                )
        if not 0.0 < duration_s <= self.MAX_SIMULATION_S:
            raise ServiceError(
                f"duration_s must be within (0, {self.MAX_SIMULATION_S:.0f}], "
                f"got {duration_s}",
                code="invalid_duration",
            )
        if not 0.0 < dt <= duration_s:
            raise ServiceError(
                f"dt must be within (0, duration_s], got {dt}",
                code="invalid_duration",
            )
        return float(duration_s), float(dt)

    def _check_scorer(self, scorer: str) -> str:
        if scorer not in SCORERS:
            raise ServiceError(
                f"unknown scorer {scorer!r}; expected one of {SCORERS}",
                code="invalid_scorer",
            )
        return scorer

    def _engine(self, scale: float, scorer: str) -> SearchEngine:
        """The warm engine for (scale, scorer), built at most once per config."""
        scale = self._check_scale(scale)
        scorer = self._check_scorer(scorer)
        artifact = self._load_artifact()
        if artifact is not None and artifact.matches(scale=scale):
            return artifact.shared_engine(scorer=scorer)
        if self._artifact_path is not None and self._save_artifacts:
            # CLI semantics: a configured artifact that does not serve the
            # requested scale is rebuilt at that scale and overwritten.
            return self._rebuild_artifact(scale, scorer).shared_engine(scorer=scorer)
        with self._slots_lock:
            slot = self._slots.get(scale)
            if slot is None:
                slot = self._slots[scale] = _ScaleSlot()
            else:
                # Reinsert so plain dict order doubles as LRU order.
                self._slots[scale] = self._slots.pop(scale)
            while len(self._slots) > MAX_SCALE_SLOTS:
                self._slots.pop(next(iter(self._slots)))
        with slot.lock:
            if slot.workspace is None:
                slot.workspace = self._build_workspace(scale, scorer)
        return slot.workspace.shared_engine(scorer=scorer)

    def _load_artifact(self) -> Workspace | None:
        """The attached workspace artifact, loaded at most once per path."""
        if self._artifact is not None or self._artifact_path is None:
            return self._artifact
        with self._artifact_lock:
            if self._artifact is None and self._artifact_path.exists():
                try:
                    self._artifact = Workspace.load(self._artifact_path)
                except (ValueError, OSError) as error:
                    self._warn(f"ignoring stale workspace artifact: {error}")
        return self._artifact

    def _rebuild_artifact(self, scale: float, scorer: str) -> Workspace:
        with self._artifact_lock:
            if self._artifact is not None and self._artifact.matches(scale=scale):
                return self._artifact
            if self._artifact is not None:
                self._warn(
                    "ignoring workspace artifact built with different parameters"
                )
            built = Workspace.build(scale=scale, scorer=scorer)
            try:
                built.save(self._artifact_path)
            except OSError as error:
                self._warn(f"could not write workspace artifact: {error}")
            self._artifact = built
            return built

    def _build_workspace(self, scale: float, scorer: str) -> Workspace:
        """Build one scale's workspace, via the index snapshot when configured."""
        if self._snapshot_path is None:
            return Workspace.build(scale=scale, scorer=scorer)
        from repro.corpus.synthesis import build_corpus

        corpus = build_corpus(scale=scale)
        if self._snapshot_path.exists():
            try:
                engine = SearchEngine.from_index_snapshot(
                    corpus, self._snapshot_path, scorer=scorer
                )
                return Workspace.from_engine(engine)
            except (ValueError, OSError) as error:
                self._warn(f"ignoring stale index snapshot: {error}")
        engine = SearchEngine(corpus, scorer=scorer)
        if self._save_artifacts:
            try:
                engine.save_index_snapshot(self._snapshot_path)
            except OSError as error:
                self._warn(f"could not write index snapshot: {error}")
        return Workspace.from_engine(engine)

    def _associate(self, request) -> tuple:
        """Shared associate step: (engine, association) for a request."""
        workers = self._check_int("workers", request.workers, 1, 64)
        engine = self._engine(request.scale, request.scorer)
        model = self._resolve_model(request.model)
        return engine, engine.associate(model, workers=workers)

    # -- operations -----------------------------------------------------------

    @_cached_operation
    def associate(self, request: AssociateRequest) -> AssociateResponse:
        """Associate attack vectors with a model; posture + severity profile."""
        _, association = self._associate(request)
        return AssociateResponse(
            posture=compute_posture(association),
            severity_histogram=severity_histogram(association),
        )

    @_cached_operation
    def table1(self, request: Table1Request) -> Table1Response:
        """Per-attribute association counts (the paper's Table 1 rows)."""
        _, association = self._associate(request)
        return Table1Response(attribute_table=association.attribute_table())

    @_cached_operation
    def whatif(self, request: WhatIfRequest) -> WhatIfResponse:
        """Compare a variant architecture against the baseline."""
        workers = self._check_int("workers", request.workers, 1, 64)
        engine = self._engine(request.scale, request.scorer)
        baseline = self._resolve_model(request.model)
        if request.variant is None:
            variant = hardened_workstation_variant(baseline)
        else:
            variant = self._resolve_model(request.variant)
        study = WhatIfStudy(engine, workers=workers)
        return WhatIfResponse(comparison=study.compare(baseline, variant))

    @_cached_operation
    def chains(self, request: ChainsRequest) -> ChainsResponse:
        """Exploit chains from entry points to the target component."""
        max_length = self._check_int("max_length", request.max_length, 1, 32)
        limit = self._check_int("limit", request.limit, 1, 10_000)
        _, association = self._associate(request)
        try:
            chains = find_exploit_chains(
                association, request.target, max_length=max_length
            )
        except KeyError:
            raise ServiceError(
                f"unknown component {request.target!r}",
                code="unknown_component",
                status=404,
                details={
                    "known_components": list(
                        association.system.component_names()
                    )
                },
            ) from None
        return ChainsResponse(
            target=request.target,
            chains=tuple(chains[:limit]),
            summary=chain_summary(chains),
            total_chains=len(chains),
        )

    @_cached_operation
    def topology(self, request: TopologyRequest) -> TopologyResponse:
        """Topological security profile of the model (no corpus involved)."""
        model = self._resolve_model(request.model)
        return TopologyResponse(report=analyze_topology(model))

    @_cached_operation
    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        """Design-time mitigation recommendations from an association."""
        per_component = self._check_int(
            "per_component", request.per_component, 1, 100
        )
        engine, association = self._associate(request)
        recommendations = recommend(
            association, engine.corpus, per_component=per_component
        )
        return RecommendResponse(recommendations=tuple(recommendations))

    @_cached_operation
    def simulate(self, request: SimulateRequest) -> SimulateResponse:
        """One closed-loop SCADA run, nominal or under a named scenario."""
        duration_s, dt = self._check_simulation_window(request.duration_s, request.dt)
        if request.scenario == "nominal":
            interventions = []
        else:
            scenario = SCENARIO_LIBRARY.get(request.scenario)
            if scenario is None:
                raise ServiceError(
                    f"unknown scenario {request.scenario!r}",
                    code="unknown_scenario",
                    status=404,
                    details={"known_scenarios": list(SCENARIO_LIBRARY)},
                )
            interventions = scenario.interventions()
        simulation = ScadaSimulation(interventions=interventions)
        trace = simulation.run(duration_s=duration_s, dt=dt)
        report = trace.hazards()
        return SimulateResponse(
            scenario=request.scenario,
            peak_temperature_c=trace.max_temperature(),
            peak_speed_rpm=trace.max_speed(),
            sis_tripped=simulation.sis.tripped,
            sis_trip_reason=simulation.sis.trip_reason,
            hazard_events=[
                {
                    "kind": event.kind.value,
                    "start_time_s": event.start_time_s,
                    "duration_s": event.duration_s,
                    "peak_value": event.peak_value,
                }
                for event in report.events
            ],
        )

    @_cached_operation
    def consequences(self, request: ConsequencesRequest) -> ConsequencesResponse:
        """Physical-consequence assessments for one record on one component."""
        duration_s, _ = self._check_simulation_window(request.duration_s)
        mapper = ConsequenceMapper(duration_s=duration_s)
        assessments = mapper.assess(request.record, request.component)
        return ConsequencesResponse(assessments=tuple(assessments))

    @_cached_operation
    def validate(self, request: ValidateRequest) -> ValidateResponse:
        """Structural/fidelity validation findings for the model."""
        model = self._resolve_model(request.model)
        return ValidateResponse(findings=tuple(validate_model(model)))

    @_cached_operation
    def export(self, request: ExportRequest) -> ExportResponse:
        """The model as GraphML text (the caller decides where it lands)."""
        model = self._resolve_model(request.model)
        return ExportResponse(
            graphml=to_graphml_string(model), component_count=len(model)
        )

    # -- introspection --------------------------------------------------------

    def health(self) -> dict:
        """Liveness and warm-state payload for the ``/healthz`` endpoint."""
        engines = []
        seen: dict[int, Workspace] = {}
        artifact = self._artifact
        if artifact is not None:
            seen[id(artifact)] = artifact
        with self._slots_lock:
            for slot in self._slots.values():
                # Dedupe by identity: Workspace equality would deep-compare
                # the multi-megabyte prepared bundle on every health probe.
                if slot.workspace is not None:
                    seen.setdefault(id(slot.workspace), slot.workspace)
        for workspace in seen.values():
            scale = (workspace.params or {}).get("scale")
            for engine in workspace.engine_handles():
                info = engine.health_info()
                info["scale"] = scale
                engines.append(info)
        response_cache = self._response_cache
        return {
            "schema_version": SCHEMA_VERSION,
            "status": "ok",
            "version": __version__,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "operations": sorted(OPERATIONS),
            "models": sorted(MODEL_REGISTRY),
            "response_cache": {
                "enabled": response_cache is not None,
                "entries": len(response_cache) if response_cache is not None else 0,
                "evictions": response_cache.evictions
                if response_cache is not None
                else 0,
                "max_entries": response_cache.max_entries
                if response_cache is not None
                else 0,
            },
            "engines": engines,
        }

"""Stdlib HTTP frontend for the analysis service.

A thin :class:`http.server.ThreadingHTTPServer` adapter: every typed
operation is exposed as ``POST /v1/<operation>`` with the request dataclass
as the JSON body and the response dataclass as the JSON body of a 200, and
``GET /healthz`` reports the service's warm-engine state.  Response bodies
are written with :func:`repro.service.protocol.canonical_json`, so the HTTP
path is byte-identical to the in-process path for the same request (the
equivalence tests compare them literally).

**Observability** (PR 8) rides every request:

* each request runs inside a :func:`repro.obs.trace.trace` context -- the
  inbound ``X-Cpsec-Trace-Id`` header is honored when valid, a fresh id is
  generated otherwise -- and every response echoes the id in the same
  header (200 bodies stay byte-identical; *error* bodies also carry a
  top-level ``trace_id``),
* ``GET /metrics`` serves the Prometheus text exposition of the service's
  registry plus scrape-time collectors (queue depths, per-flow passes,
  cache occupancy).  With ``cpsec serve --workers N`` every worker
  serializes its registry into a shared ``metrics_dir`` after each request,
  and whichever worker answers the scrape merges all snapshots, labelling
  each series with its ``worker`` -- one scrape reflects the fleet,
* requests slower than ``slow_request_ms`` emit one structured JSON log
  line on stderr with the trace id and recorded span timings.

When the server carries a :class:`~repro.jobs.manager.JobManager`, the
**async job surface** is exposed next to the synchronous one:

* ``POST /v1/jobs`` -- submit ``{"operation": ..., "request": {...}}`` as a
  background job (202 + the job record).  Optional scheduling fields ride
  along: ``priority`` (``interactive`` | ``batch``), ``weight`` (fair-share
  weight), ``depends_on`` (job ids that must succeed first; the ``merge``
  pseudo-operation joins a fan-out) and ``client`` (quota identity),
* ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` -- job list / one job (with its
  final ``result`` payload, byte-identical to the synchronous response),
* ``GET /v1/jobs/<id>/events[?after=seq]`` -- a Server-Sent-Events stream
  of the job's monotonic state/progress events; the stream closes after the
  terminal state event and sends ``: keep-alive`` comments while idle,
* ``POST /v1/jobs/<id>/cancel`` -- cooperative cancellation,
* ``GET /v1/ops`` -- discovery: operations, ``schema_version``, registered
  workspace names.

Request threads share one :class:`AnalysisService`; the engine's
lock-protected LRU caches and stats counters (PR 1-2) are what make that
sharing safe.  Start a server from the CLI with ``cpsec serve`` or
programmatically::

    service = AnalysisService(workspace="repro.cpsecws", save_artifacts=False)
    with start_server(service, port=8765) as server:
        server.serve_forever()
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import faults
from repro.obs.collectors import collect_families
from repro.obs.metrics import EXPOSITION_CONTENT_TYPE, render_snapshots
from repro.obs.trace import (
    TRACE_HEADER,
    current_trace,
    current_trace_id,
    slow_request_record,
    span,
    trace,
    valid_trace_id,
)
from repro.progress import OperationCancelled, report_to
from repro.service.protocol import (
    DEADLINE_HEADER,
    SCHEMA_VERSION,
    ServiceError,
    canonical_json,
    parse_request,
)
from repro.service.service import AnalysisService

#: Largest accepted request body, in bytes.  Inline model payloads are a few
#: tens of kilobytes; anything larger is a client error, not a model.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds an idle SSE stream waits for news before emitting a keep-alive
#: comment.  The comment doubles as disconnect detection: writing to a gone
#: client raises, ending the streamer thread.
SSE_KEEPALIVE_S = 15.0


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`AnalysisService`."""

    server_version = "cpsec-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------------

    def _write_json(
        self, status: int, payload: dict, *, retry_after_s: float | None = None
    ) -> None:
        body = canonical_json(payload).encode("utf-8")
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after_s is not None:
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after_s))))
        trace_id = current_trace_id()
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    def _write_error(self, error: ServiceError) -> None:
        # The request body may not have been (fully) read on an error path;
        # on a keep-alive connection its bytes would be parsed as the next
        # request, so error responses always close the connection.
        self.close_connection = True
        payload = error.to_dict()
        trace_id = current_trace_id()
        if trace_id is not None:
            # Additive: from_dict ignores unknown top-level keys, so old
            # clients parse traced errors unchanged.
            payload["trace_id"] = trace_id
        retry_after = error.details.get("retry_after_s")
        self._write_json(
            error.status,
            payload,
            retry_after_s=(
                retry_after
                if isinstance(retry_after, (int, float))
                and not isinstance(retry_after, bool)
                else None
            ),
        )

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as error:
            raise ServiceError(
                f"invalid Content-Length header: {error}", code="malformed_payload"
            ) from error
        if not 0 <= length <= MAX_BODY_BYTES:
            raise ServiceError(
                f"Content-Length must be within [0, {MAX_BODY_BYTES}], got {length}",
                code="body_too_large" if length > 0 else "malformed_payload",
                status=413 if length > 0 else 400,
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise ServiceError(
                f"request body is not valid JSON: {error}",
                code="malformed_json",
            ) from error
        if not isinstance(payload, dict):
            raise ServiceError(
                "request body must be a JSON object", code="malformed_payload"
            )
        return payload

    def _jobs(self):
        """The server's job manager, or a typed 503 when jobs are disabled."""
        jobs = getattr(self.server, "jobs", None)
        if jobs is None:
            raise ServiceError(
                "this server was started without a job engine",
                code="jobs_disabled",
                status=503,
            )
        return jobs

    # -- deadlines -------------------------------------------------------------

    def _deadline_budget_ms(self) -> float | None:
        """This request's deadline budget: the tighter of header and server.

        The inbound :data:`DEADLINE_HEADER` (``X-Cpsec-Deadline-Ms``) lets a
        caller spend less than the server-wide ``--request-timeout-ms``; it
        can never spend *more*.  ``None`` means no deadline at all -- the
        default, whose request path is byte-for-byte the pre-deadline one.
        """
        budget = self.server.request_timeout_ms
        header = self.headers.get(DEADLINE_HEADER)
        if header is not None:
            try:
                client_ms = float(header)
            except ValueError:
                raise ServiceError(
                    f"invalid {DEADLINE_HEADER} header: {header!r}",
                    code="malformed_deadline",
                ) from None
            if not client_ms > 0 or client_ms != client_ms:
                raise ServiceError(
                    f"{DEADLINE_HEADER} must be a positive number of "
                    f"milliseconds, got {header!r}",
                    code="malformed_deadline",
                )
            budget = client_ms if budget is None else min(budget, client_ms)
        return budget

    def _call_operation(self, operation: str, request):
        """Run one sync operation, enforcing the deadline budget (if any).

        The deadline rides the same ambient seam job cancellation uses: a
        progress sink that compares the monotonic clock against the
        deadline, raising at the next progress point inside the engine /
        simulation loops.  Overruns become a typed 504 whose details say
        how the budget was spent (the recorded span timings so far).
        """
        budget_ms = self._deadline_budget_ms()
        method = getattr(self.server.service, operation)
        if budget_ms is None:
            return method(request)
        started = time.monotonic()
        deadline = started + budget_ms / 1000.0

        def deadline_sink(phase: str, done: int, total: int) -> None:
            if time.monotonic() >= deadline:
                raise OperationCancelled(
                    f"deadline exceeded during {phase} ({done}/{total})"
                )

        try:
            with report_to(deadline_sink):
                return method(request)
        except OperationCancelled:
            elapsed_ms = (time.monotonic() - started) * 1000.0
            active = current_trace()
            spans = (
                [
                    {
                        "name": recorded.name,
                        "duration_ms": round((recorded.duration_s or 0.0) * 1000.0, 3),
                    }
                    for recorded in active.spans
                ]
                if active is not None
                else []
            )
            raise ServiceError(
                f"request exceeded its deadline budget of {budget_ms:g} ms",
                code="deadline_exceeded",
                status=504,
                details={
                    "budget_ms": budget_ms,
                    "elapsed_ms": round(elapsed_ms, 3),
                    "spans": spans,
                },
            ) from None

    # -- observability ---------------------------------------------------------

    def _observe(self, route: str, started_s: float, active) -> None:
        """Per-request bookkeeping: HTTP counter, slow log, worker snapshot."""
        server = self.server
        status = getattr(self, "_last_status", 0)
        if server.http_requests is not None:
            server.http_requests.labels(route, str(status)).inc()
        duration_s = time.perf_counter() - started_s
        threshold_ms = server.slow_request_ms
        if (
            threshold_ms is not None
            and duration_s * 1000.0 >= threshold_ms
            and active is not None
        ):
            record = slow_request_record(
                trace_id=active.trace_id,
                operation=route,
                duration_s=duration_s,
                threshold_ms=threshold_ms,
                status=status,
                spans=active.spans,
            )
            print(json.dumps(record, sort_keys=True), file=sys.stderr, flush=True)
        server.export_metrics_snapshot()

    def _serve_metrics(self) -> None:
        """``GET /metrics``: the whole fleet as text exposition."""
        snapshots = self.server.metrics_snapshots()
        body = render_snapshots(snapshots).encode("utf-8")
        self._last_status = 200
        self.send_response(200)
        self.send_header("Content-Type", EXPOSITION_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        trace_id = current_trace_id()
        if trace_id is not None:
            self.send_header(TRACE_HEADER, trace_id)
        self.end_headers()
        self.wfile.write(body)

    # -- jobs routes ----------------------------------------------------------

    def _handle_jobs_get(self, path: str, query: dict) -> None:
        jobs = self._jobs()
        if path == "/v1/jobs":
            self._write_json(
                200,
                {
                    "schema_version": SCHEMA_VERSION,
                    "jobs": [
                        job.to_dict(include_result=False) for job in jobs.jobs()
                    ],
                },
            )
            return
        parts = path.split("/")  # ['', 'v1', 'jobs', <id>, ('events')]
        if len(parts) == 4:
            self._write_json(200, jobs.get(parts[3]).to_dict())
            return
        if len(parts) == 5 and parts[4] == "events":
            self._stream_job_events(jobs, parts[3], query)
            return
        raise ServiceError(
            f"no such resource {path!r}", code="not_found", status=404
        )

    def _stream_job_events(self, jobs, job_id: str, query: dict) -> None:
        after = -1
        if "after" in query:
            try:
                after = int(query["after"][0])
            except (TypeError, ValueError) as error:
                raise ServiceError(
                    f"invalid after parameter: {error}", code="malformed_payload"
                ) from error
        record = jobs.get(job_id)  # typed 404 before any bytes hit the wire
        # SSE has no Content-Length, so the connection cannot be reused.
        self.close_connection = True
        self._last_status = 200
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.send_header(TRACE_HEADER, record.trace_id)
        self.end_headers()
        cursor = after
        try:
            while True:
                events, done = jobs.events_since(
                    job_id, cursor, timeout=SSE_KEEPALIVE_S
                )
                for event in events:
                    cursor = event.seq
                    # Every frame carries the job's trace id, so a log
                    # pipeline can join stream fragments to the submission.
                    data = {**event.to_dict(), "trace_id": record.trace_id}
                    frame = (
                        f"id: {event.seq}\n"
                        f"event: {event.kind}\n"
                        f"data: {canonical_json(data)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                if not events and not done:
                    self.wfile.write(b": keep-alive\n\n")
                self.wfile.flush()
                if done:
                    return
        except (BrokenPipeError, ConnectionResetError):
            # The subscriber went away mid-stream; the job keeps running and
            # a new subscriber can resume from ?after=<last seen seq>.
            return

    def _handle_jobs_post(self, path: str) -> None:
        jobs = self._jobs()
        if path == "/v1/jobs":
            with span("parse"):
                payload = self._read_body()
            operation = payload.get("operation")
            if not isinstance(operation, str):
                raise ServiceError(
                    "job submissions need an 'operation' name",
                    code="malformed_payload",
                )
            request = payload.get("request") or {}
            if not isinstance(request, dict):
                raise ServiceError(
                    "'request' must be a JSON object", code="malformed_payload"
                )
            client = payload.get("client")
            if client is not None and not isinstance(client, str):
                raise ServiceError(
                    "'client' must be a string", code="malformed_payload"
                )
            # priority/weight/depends_on are validated by the manager itself
            # (typed invalid_priority / invalid_weight / invalid_dependencies
            # errors), so the handler only relays them.
            job = jobs.submit(
                operation,
                request,
                priority=payload.get("priority"),
                weight=payload.get("weight"),
                depends_on=payload.get("depends_on"),
                client=client,
                max_retries=payload.get("max_retries"),
                backoff_s=payload.get("backoff_s"),
            )
            with span("render"):
                self._write_json(202, job.to_dict())
            return
        parts = path.split("/")
        if len(parts) == 5 and parts[4] == "cancel":
            self._write_json(200, jobs.cancel(parts[3]).to_dict())
            return
        raise ServiceError(
            f"no such resource {path!r}", code="not_found", status=404
        )

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        started = time.perf_counter()
        if path in ("/healthz", "/health"):
            route = "healthz"
        elif path == "/metrics":
            route = "metrics"
        elif path == "/v1/ops":
            route = "ops"
        elif path == "/v1/jobs" or path.startswith("/v1/jobs/"):
            route = "jobs"
        else:
            # Unknown paths share one label value: client typos must not
            # grow the metric's label cardinality without bound.
            route = "unknown"
        with trace(valid_trace_id(self.headers.get(TRACE_HEADER))) as active:
            try:
                if path in ("/healthz", "/health"):
                    payload = self.server.service.health()
                    jobs = getattr(self.server, "jobs", None)
                    if jobs is not None:
                        payload["jobs"] = jobs.stats()
                        if payload["jobs"].get("journal_degraded"):
                            # Up, serving, but running without durability:
                            # visible at the top level, not just in stats.
                            payload["status"] = "degraded"
                        if jobs.draining:
                            payload["status"] = "draining"
                    self._write_json(200, payload)
                    return
                if path == "/metrics":
                    self._serve_metrics()
                    return
                if path == "/v1/ops":
                    payload = self.server.service.ops_info()
                    payload["jobs_enabled"] = (
                        getattr(self.server, "jobs", None) is not None
                    )
                    self._write_json(200, payload)
                    return
                if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
                    self._handle_jobs_get(path, urllib.parse.parse_qs(parsed.query))
                    return
                raise ServiceError(
                    f"no such resource {self.path!r}; operations are POST /v1/<op>",
                    code="not_found",
                    status=404,
                )
            except ServiceError as error:
                self._write_error(error)
            finally:
                self._observe(route, started, active)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Route on the bare path, like do_GET: a query string must not turn
        # an existing resource into a 404.
        path = urllib.parse.urlsplit(self.path).path
        started = time.perf_counter()
        route = "unknown"
        acquired = False
        with trace(valid_trace_id(self.headers.get(TRACE_HEADER))) as active:
            try:
                faults.trip("handler.crash")
                # Overload shedding gates every POST (operations and job
                # submissions); GETs stay exempt so /healthz and /metrics
                # answer even while the server sheds.
                acquired = self.server.acquire_request_slot()
                if not acquired:
                    raise self.server.overloaded_error()
                if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
                    route = "jobs"
                    self._handle_jobs_post(path)
                    return
                if not path.startswith("/v1/"):
                    raise ServiceError(
                        f"no such resource {self.path!r}; operations are POST /v1/<op>",
                        code="not_found",
                        status=404,
                    )
                operation = path[len("/v1/"):]
                with span("parse"):
                    payload = self._read_body()
                    request = parse_request(operation, payload)
                # Only a *known* operation becomes a route label (typos
                # would otherwise grow label cardinality without bound).
                route = operation
                response = self._call_operation(operation, request)
                with span("render"):
                    self._write_json(200, response.to_dict())
            except ServiceError as error:
                self._write_error(error)
            except Exception as error:  # pragma: no cover - defensive boundary
                # The handler is the crash boundary of a server thread:
                # anything unexpected becomes a 500 instead of a dropped
                # connection.
                self._write_error(
                    ServiceError(
                        f"internal error: {type(error).__name__}: {error}",
                        code="internal_error",
                        status=500,
                    )
                )
            finally:
                if acquired:
                    self.server.release_request_slot()
                self._observe(route, started, active)


class AnalysisServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`.

    ``listen_socket`` adopts an already-bound, already-listening socket
    instead of binding a new one -- the pre-forked worker path: the parent
    of ``cpsec serve --workers N`` binds one shared listener before forking,
    every worker adopts the inherited descriptor here, and the kernel load
    balances accepts across them.

    ``metrics_dir``/``worker_label`` are the multi-process metrics
    side-channel: a worker given a directory serializes its registry there
    (atomically, after every handled request), and ``GET /metrics`` on any
    worker merges every sibling snapshot so one scrape covers the fleet,
    each series labelled with its worker.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AnalysisService,
        *,
        verbose: bool = False,
        jobs=None,
        listen_socket=None,
        slow_request_ms: float | None = None,
        metrics_dir: str | None = None,
        worker_label: str = "0",
        request_timeout_ms: float | None = None,
        max_inflight: int | None = None,
    ) -> None:
        if request_timeout_ms is not None and not request_timeout_ms > 0:
            raise ValueError(
                f"request_timeout_ms must be positive, got {request_timeout_ms}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if listen_socket is not None:
            super().__init__(address, AnalysisRequestHandler, bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            self.server_name, self.server_port = self.server_address[:2]
        else:
            super().__init__(address, AnalysisRequestHandler)
        self.service = service
        self.verbose = verbose
        #: Optional :class:`repro.jobs.manager.JobManager`; ``None`` serves
        #: the synchronous API only (job routes answer a typed 503).
        self.jobs = jobs
        self.slow_request_ms = slow_request_ms
        self.metrics_dir = metrics_dir
        self.worker_label = str(worker_label)
        #: Server-wide deadline budget applied to every sync operation
        #: (``cpsec serve --request-timeout-ms``); ``None`` disables it.
        self.request_timeout_ms = request_timeout_ms
        #: Overload watermark: POSTs beyond this many in flight are shed
        #: with a typed 503; ``None`` disables shedding (and its tracking).
        self.max_inflight = max_inflight
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self.http_requests = None
        self._m_shed = None
        if service.metrics is not None:
            self.http_requests = service.metrics.counter(
                "cpsec_http_requests_total",
                "HTTP requests handled, by route and status.",
                ("route", "status"),
            )
            self._m_shed = service.metrics.counter(
                "cpsec_requests_shed_total",
                "POST requests shed with a typed 503 at the in-flight bound.",
            )

    # -- overload shedding -----------------------------------------------------

    def acquire_request_slot(self) -> bool:
        """Take one in-flight slot; False means the request must be shed.

        With shedding disabled (``max_inflight=None``) this is a single
        attribute check -- no lock, no counter -- keeping the default path
        identical to the pre-shedding server.
        """
        if self.max_inflight is None:
            return True
        with self._inflight_lock:
            if self._inflight >= self.max_inflight:
                if self._m_shed is not None:
                    self._m_shed.inc()
                return False
            self._inflight += 1
            return True

    def release_request_slot(self) -> None:
        if self.max_inflight is None:
            return
        with self._inflight_lock:
            self._inflight = max(0, self._inflight - 1)

    def overloaded_error(self) -> ServiceError:
        """The typed 503 a shed request is answered with.

        ``retry_after_s`` is advice, not a reservation: long enough for an
        in-flight request to finish, short enough that a polite client
        re-offers its work while the burst is still draining.
        """
        return ServiceError(
            f"server is at its in-flight request bound ({self.max_inflight})",
            code="overloaded",
            status=503,
            details={
                "max_inflight": self.max_inflight,
                "retry_after_s": 1.0,
            },
        )

    # -- metrics side-channel --------------------------------------------------

    def _own_snapshot(self) -> dict:
        """This process's registry plus scrape-time collector families."""
        snapshot = self.service.metrics.snapshot(self.worker_label)
        snapshot["families"].extend(
            collect_families(self.service, self.jobs, worker=self.worker_label)
        )
        return snapshot

    def export_metrics_snapshot(self) -> None:
        """Serialize this worker's metrics into the shared side-channel.

        A no-op outside multi-process serving.  The write is atomic
        (tmp + rename), so a scrape on a sibling never reads a torn file.
        """
        if self.metrics_dir is None or self.service.metrics is None:
            return
        path = os.path.join(
            self.metrics_dir, f"worker-{self.worker_label}.json"
        )
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(self._own_snapshot(), handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:  # pragma: no cover - metrics must never break serving
            return

    def metrics_snapshots(self) -> list[dict]:
        """Every worker's snapshot, own state fresh, siblings from disk."""
        if self.service.metrics is None:
            return []
        own = self._own_snapshot()
        if self.metrics_dir is None:
            return [own]
        self.export_metrics_snapshot()
        snapshots = [own]
        try:
            names = sorted(os.listdir(self.metrics_dir))
        except OSError:  # pragma: no cover - side-channel gone mid-scrape
            return snapshots
        for name in names:
            if not name.startswith("worker-") or not name.endswith(".json"):
                continue
            if name == f"worker-{self.worker_label}.json":
                continue  # own state is already in, fresher than the file
            try:
                with open(
                    os.path.join(self.metrics_dir, name), encoding="utf-8"
                ) as handle:
                    peer = json.load(handle)
            except (OSError, ValueError):
                continue  # sibling mid-restart; skip, do not fail the scrape
            if isinstance(peer, dict):
                snapshots.append(peer)
        return snapshots


def start_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    verbose: bool = False,
    jobs=None,
    listen_socket=None,
    slow_request_ms: float | None = None,
    metrics_dir: str | None = None,
    worker_label: str = "0",
    request_timeout_ms: float | None = None,
    max_inflight: int | None = None,
) -> AnalysisServiceServer:
    """Bind a server (``port=0`` picks a free port); call ``serve_forever``."""
    return AnalysisServiceServer(
        (host, port),
        service,
        verbose=verbose,
        jobs=jobs,
        listen_socket=listen_socket,
        slow_request_ms=slow_request_ms,
        metrics_dir=metrics_dir,
        worker_label=worker_label,
        request_timeout_ms=request_timeout_ms,
        max_inflight=max_inflight,
    )

"""Stdlib HTTP frontend for the analysis service.

A thin :class:`http.server.ThreadingHTTPServer` adapter: every typed
operation is exposed as ``POST /v1/<operation>`` with the request dataclass
as the JSON body and the response dataclass as the JSON body of a 200, and
``GET /healthz`` reports the service's warm-engine state.  Response bodies
are written with :func:`repro.service.protocol.canonical_json`, so the HTTP
path is byte-identical to the in-process path for the same request (the
equivalence tests compare them literally).

Request threads share one :class:`AnalysisService`; the engine's
lock-protected LRU caches and stats counters (PR 1-2) are what make that
sharing safe.  Start a server from the CLI with ``cpsec serve`` or
programmatically::

    service = AnalysisService(workspace="repro.cpsecws", save_artifacts=False)
    with start_server(service, port=8765) as server:
        server.serve_forever()
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.protocol import (
    ServiceError,
    canonical_json,
    parse_request,
)
from repro.service.service import AnalysisService

#: Largest accepted request body, in bytes.  Inline model payloads are a few
#: tens of kilobytes; anything larger is a client error, not a model.
MAX_BODY_BYTES = 8 * 1024 * 1024


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`AnalysisService`."""

    server_version = "cpsec-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------------

    def _write_json(self, status: int, payload: dict) -> None:
        body = canonical_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _write_error(self, error: ServiceError) -> None:
        # The request body may not have been (fully) read on an error path;
        # on a keep-alive connection its bytes would be parsed as the next
        # request, so error responses always close the connection.
        self.close_connection = True
        self._write_json(error.status, error.to_dict())

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as error:
            raise ServiceError(
                f"invalid Content-Length header: {error}", code="malformed_payload"
            ) from error
        if not 0 <= length <= MAX_BODY_BYTES:
            raise ServiceError(
                f"Content-Length must be within [0, {MAX_BODY_BYTES}], got {length}",
                code="body_too_large" if length > 0 else "malformed_payload",
                status=413 if length > 0 else 400,
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise ServiceError(
                f"request body is not valid JSON: {error}",
                code="malformed_json",
            ) from error
        if not isinstance(payload, dict):
            raise ServiceError(
                "request body must be a JSON object", code="malformed_payload"
            )
        return payload

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path in ("/healthz", "/health"):
            self._write_json(200, self.server.service.health())
            return
        self._write_error(
            ServiceError(
                f"no such resource {self.path!r}; operations are POST /v1/<op>",
                code="not_found",
                status=404,
            )
        )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if not self.path.startswith("/v1/"):
                raise ServiceError(
                    f"no such resource {self.path!r}; operations are POST /v1/<op>",
                    code="not_found",
                    status=404,
                )
            operation = self.path[len("/v1/"):]
            payload = self._read_body()
            request = parse_request(operation, payload)
            response = getattr(self.server.service, operation)(request)
            self._write_json(200, response.to_dict())
        except ServiceError as error:
            self._write_error(error)
        except Exception as error:  # pragma: no cover - defensive boundary
            # The handler is the crash boundary of a server thread: anything
            # unexpected becomes a 500 instead of a dropped connection.
            self._write_error(
                ServiceError(
                    f"internal error: {type(error).__name__}: {error}",
                    code="internal_error",
                    status=500,
                )
            )


class AnalysisServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AnalysisService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, AnalysisRequestHandler)
        self.service = service
        self.verbose = verbose


def start_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    verbose: bool = False,
) -> AnalysisServiceServer:
    """Bind a server (``port=0`` picks a free port); call ``serve_forever``."""
    return AnalysisServiceServer((host, port), service, verbose=verbose)

"""Stdlib HTTP frontend for the analysis service.

A thin :class:`http.server.ThreadingHTTPServer` adapter: every typed
operation is exposed as ``POST /v1/<operation>`` with the request dataclass
as the JSON body and the response dataclass as the JSON body of a 200, and
``GET /healthz`` reports the service's warm-engine state.  Response bodies
are written with :func:`repro.service.protocol.canonical_json`, so the HTTP
path is byte-identical to the in-process path for the same request (the
equivalence tests compare them literally).

When the server carries a :class:`~repro.jobs.manager.JobManager`, the
**async job surface** is exposed next to the synchronous one:

* ``POST /v1/jobs`` -- submit ``{"operation": ..., "request": {...}}`` as a
  background job (202 + the job record).  Optional scheduling fields ride
  along: ``priority`` (``interactive`` | ``batch``), ``weight`` (fair-share
  weight), ``depends_on`` (job ids that must succeed first; the ``merge``
  pseudo-operation joins a fan-out) and ``client`` (quota identity),
* ``GET /v1/jobs`` / ``GET /v1/jobs/<id>`` -- job list / one job (with its
  final ``result`` payload, byte-identical to the synchronous response),
* ``GET /v1/jobs/<id>/events[?after=seq]`` -- a Server-Sent-Events stream
  of the job's monotonic state/progress events; the stream closes after the
  terminal state event and sends ``: keep-alive`` comments while idle,
* ``POST /v1/jobs/<id>/cancel`` -- cooperative cancellation,
* ``GET /v1/ops`` -- discovery: operations, ``schema_version``, registered
  workspace names.

Request threads share one :class:`AnalysisService`; the engine's
lock-protected LRU caches and stats counters (PR 1-2) are what make that
sharing safe.  Start a server from the CLI with ``cpsec serve`` or
programmatically::

    service = AnalysisService(workspace="repro.cpsecws", save_artifacts=False)
    with start_server(service, port=8765) as server:
        server.serve_forever()
"""

from __future__ import annotations

import json
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.protocol import (
    SCHEMA_VERSION,
    ServiceError,
    canonical_json,
    parse_request,
)
from repro.service.service import AnalysisService

#: Largest accepted request body, in bytes.  Inline model payloads are a few
#: tens of kilobytes; anything larger is a client error, not a model.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds an idle SSE stream waits for news before emitting a keep-alive
#: comment.  The comment doubles as disconnect detection: writing to a gone
#: client raises, ending the streamer thread.
SSE_KEEPALIVE_S = 15.0


class AnalysisRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared :class:`AnalysisService`."""

    server_version = "cpsec-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------------

    def _write_json(self, status: int, payload: dict) -> None:
        body = canonical_json(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _write_error(self, error: ServiceError) -> None:
        # The request body may not have been (fully) read on an error path;
        # on a keep-alive connection its bytes would be parsed as the next
        # request, so error responses always close the connection.
        self.close_connection = True
        self._write_json(error.status, error.to_dict())

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError as error:
            raise ServiceError(
                f"invalid Content-Length header: {error}", code="malformed_payload"
            ) from error
        if not 0 <= length <= MAX_BODY_BYTES:
            raise ServiceError(
                f"Content-Length must be within [0, {MAX_BODY_BYTES}], got {length}",
                code="body_too_large" if length > 0 else "malformed_payload",
                status=413 if length > 0 else 400,
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise ServiceError(
                f"request body is not valid JSON: {error}",
                code="malformed_json",
            ) from error
        if not isinstance(payload, dict):
            raise ServiceError(
                "request body must be a JSON object", code="malformed_payload"
            )
        return payload

    def _jobs(self):
        """The server's job manager, or a typed 503 when jobs are disabled."""
        jobs = getattr(self.server, "jobs", None)
        if jobs is None:
            raise ServiceError(
                "this server was started without a job engine",
                code="jobs_disabled",
                status=503,
            )
        return jobs

    # -- jobs routes ----------------------------------------------------------

    def _handle_jobs_get(self, path: str, query: dict) -> None:
        jobs = self._jobs()
        if path == "/v1/jobs":
            self._write_json(
                200,
                {
                    "schema_version": SCHEMA_VERSION,
                    "jobs": [
                        job.to_dict(include_result=False) for job in jobs.jobs()
                    ],
                },
            )
            return
        parts = path.split("/")  # ['', 'v1', 'jobs', <id>, ('events')]
        if len(parts) == 4:
            self._write_json(200, jobs.get(parts[3]).to_dict())
            return
        if len(parts) == 5 and parts[4] == "events":
            self._stream_job_events(jobs, parts[3], query)
            return
        raise ServiceError(
            f"no such resource {path!r}", code="not_found", status=404
        )

    def _stream_job_events(self, jobs, job_id: str, query: dict) -> None:
        after = -1
        if "after" in query:
            try:
                after = int(query["after"][0])
            except (TypeError, ValueError) as error:
                raise ServiceError(
                    f"invalid after parameter: {error}", code="malformed_payload"
                ) from error
        jobs.get(job_id)  # typed 404 before any bytes hit the wire
        # SSE has no Content-Length, so the connection cannot be reused.
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        cursor = after
        try:
            while True:
                events, done = jobs.events_since(
                    job_id, cursor, timeout=SSE_KEEPALIVE_S
                )
                for event in events:
                    cursor = event.seq
                    frame = (
                        f"id: {event.seq}\n"
                        f"event: {event.kind}\n"
                        f"data: {canonical_json(event.to_dict())}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                if not events and not done:
                    self.wfile.write(b": keep-alive\n\n")
                self.wfile.flush()
                if done:
                    return
        except (BrokenPipeError, ConnectionResetError):
            # The subscriber went away mid-stream; the job keeps running and
            # a new subscriber can resume from ?after=<last seen seq>.
            return

    def _handle_jobs_post(self, path: str) -> None:
        jobs = self._jobs()
        if path == "/v1/jobs":
            payload = self._read_body()
            operation = payload.get("operation")
            if not isinstance(operation, str):
                raise ServiceError(
                    "job submissions need an 'operation' name",
                    code="malformed_payload",
                )
            request = payload.get("request") or {}
            if not isinstance(request, dict):
                raise ServiceError(
                    "'request' must be a JSON object", code="malformed_payload"
                )
            client = payload.get("client")
            if client is not None and not isinstance(client, str):
                raise ServiceError(
                    "'client' must be a string", code="malformed_payload"
                )
            # priority/weight/depends_on are validated by the manager itself
            # (typed invalid_priority / invalid_weight / invalid_dependencies
            # errors), so the handler only relays them.
            job = jobs.submit(
                operation,
                request,
                priority=payload.get("priority"),
                weight=payload.get("weight"),
                depends_on=payload.get("depends_on"),
                client=client,
            )
            self._write_json(202, job.to_dict())
            return
        parts = path.split("/")
        if len(parts) == 5 and parts[4] == "cancel":
            self._write_json(200, jobs.cancel(parts[3]).to_dict())
            return
        raise ServiceError(
            f"no such resource {path!r}", code="not_found", status=404
        )

    # -- routes ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path
        try:
            if path in ("/healthz", "/health"):
                payload = self.server.service.health()
                jobs = getattr(self.server, "jobs", None)
                if jobs is not None:
                    payload["jobs"] = jobs.stats()
                    if jobs.draining:
                        payload["status"] = "draining"
                self._write_json(200, payload)
                return
            if path == "/v1/ops":
                payload = self.server.service.ops_info()
                payload["jobs_enabled"] = getattr(self.server, "jobs", None) is not None
                self._write_json(200, payload)
                return
            if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
                self._handle_jobs_get(path, urllib.parse.parse_qs(parsed.query))
                return
            raise ServiceError(
                f"no such resource {self.path!r}; operations are POST /v1/<op>",
                code="not_found",
                status=404,
            )
        except ServiceError as error:
            self._write_error(error)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Route on the bare path, like do_GET: a query string must not turn
        # an existing resource into a 404.
        path = urllib.parse.urlsplit(self.path).path
        try:
            if path == "/v1/jobs" or path.startswith("/v1/jobs/"):
                self._handle_jobs_post(path)
                return
            if not path.startswith("/v1/"):
                raise ServiceError(
                    f"no such resource {self.path!r}; operations are POST /v1/<op>",
                    code="not_found",
                    status=404,
                )
            operation = path[len("/v1/"):]
            payload = self._read_body()
            request = parse_request(operation, payload)
            response = getattr(self.server.service, operation)(request)
            self._write_json(200, response.to_dict())
        except ServiceError as error:
            self._write_error(error)
        except Exception as error:  # pragma: no cover - defensive boundary
            # The handler is the crash boundary of a server thread: anything
            # unexpected becomes a 500 instead of a dropped connection.
            self._write_error(
                ServiceError(
                    f"internal error: {type(error).__name__}: {error}",
                    code="internal_error",
                    status=500,
                )
            )


class AnalysisServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`AnalysisService`.

    ``listen_socket`` adopts an already-bound, already-listening socket
    instead of binding a new one -- the pre-forked worker path: the parent
    of ``cpsec serve --workers N`` binds one shared listener before forking,
    every worker adopts the inherited descriptor here, and the kernel load
    balances accepts across them.
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AnalysisService,
        *,
        verbose: bool = False,
        jobs=None,
        listen_socket=None,
    ) -> None:
        if listen_socket is not None:
            super().__init__(address, AnalysisRequestHandler, bind_and_activate=False)
            self.socket.close()
            self.socket = listen_socket
            self.server_address = listen_socket.getsockname()
            self.server_name, self.server_port = self.server_address[:2]
        else:
            super().__init__(address, AnalysisRequestHandler)
        self.service = service
        self.verbose = verbose
        #: Optional :class:`repro.jobs.manager.JobManager`; ``None`` serves
        #: the synchronous API only (job routes answer a typed 503).
        self.jobs = jobs


def start_server(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    verbose: bool = False,
    jobs=None,
    listen_socket=None,
) -> AnalysisServiceServer:
    """Bind a server (``port=0`` picks a free port); call ``serve_forever``."""
    return AnalysisServiceServer(
        (host, port), service, verbose=verbose, jobs=jobs, listen_socket=listen_socket
    )

"""The analyst-facing operations API and the long-lived analysis service.

This package is the seam between the analysis library and its frontends:

* :mod:`repro.service.protocol` -- typed, versioned, JSON-round-tripping
  request/response dataclasses for every operation,
* :mod:`repro.service.service` -- :class:`AnalysisService`, one warm
  engine/workspace shared by every caller,
* :mod:`repro.service.http` -- stdlib ``ThreadingHTTPServer`` frontend
  (``cpsec serve``): synchronous ``POST /v1/<op>`` routes plus the async
  job surface (``/v1/jobs``, SSE event streams, ``/v1/ops`` discovery),
* :mod:`repro.service.client` -- :class:`ServiceClient`, the same typed
  surface over HTTP, including ``submit``/``wait``/``stream_events``.

The CLI's subcommands are thin adapters over this package; library users and
remote analysts drive exactly the same operations.  Background execution
lives in :mod:`repro.jobs`; progress plumbing in :mod:`repro.progress`.
"""

from repro.service.client import CircuitBreaker, RetryPolicy, ServiceClient
from repro.service.http import AnalysisServiceServer, start_server
from repro.service.protocol import (
    JOB_PRIORITIES,
    MUTATING_OPERATIONS,
    OPERATIONS,
    SCHEMA_VERSION,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    CompactRequest,
    CompactResponse,
    ConsequencesRequest,
    ConsequencesResponse,
    ExportRequest,
    ExportResponse,
    ExtendRequest,
    ExtendResponse,
    RecommendRequest,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    SimulateResponse,
    Table1Request,
    Table1Response,
    TopologyRequest,
    TopologyResponse,
    ValidateRequest,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
    parse_request,
)
from repro.service.service import MODEL_REGISTRY, AnalysisService

__all__ = [
    "SCHEMA_VERSION",
    "JOB_PRIORITIES",
    "OPERATIONS",
    "MUTATING_OPERATIONS",
    "MODEL_REGISTRY",
    "AnalysisService",
    "AnalysisServiceServer",
    "CircuitBreaker",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "start_server",
    "canonical_json",
    "parse_request",
    "AssociateRequest",
    "AssociateResponse",
    "Table1Request",
    "Table1Response",
    "WhatIfRequest",
    "WhatIfResponse",
    "ChainsRequest",
    "ChainsResponse",
    "TopologyRequest",
    "TopologyResponse",
    "RecommendRequest",
    "RecommendResponse",
    "SimulateRequest",
    "SimulateResponse",
    "ConsequencesRequest",
    "ConsequencesResponse",
    "ValidateRequest",
    "ValidateResponse",
    "ExtendRequest",
    "ExtendResponse",
    "CompactRequest",
    "CompactResponse",
    "ExportRequest",
    "ExportResponse",
]

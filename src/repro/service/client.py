"""HTTP client speaking the typed operations protocol.

:class:`ServiceClient` exposes the same method-per-operation surface as
:class:`repro.service.service.AnalysisService`, so callers (including every
CLI subcommand) are written once against the protocol and pointed at either
an in-process service or a remote ``cpsec serve`` instance::

    client = ServiceClient("http://127.0.0.1:8765")
    response = client.associate(AssociateRequest(scale=1.0))

Requests are serialized with the protocol's canonical JSON, responses are
parsed back into the typed response dataclasses, and error bodies are
re-raised as :class:`ServiceError` -- the same exception the in-process
service raises, so error handling is transport-agnostic too.  Stdlib only
(:mod:`urllib.request`).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.service.protocol import (
    OPERATIONS,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    ConsequencesRequest,
    ConsequencesResponse,
    ExportRequest,
    ExportResponse,
    RecommendRequest,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    SimulateResponse,
    Table1Request,
    Table1Response,
    TopologyRequest,
    TopologyResponse,
    ValidateRequest,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
)


class ServiceClient:
    """A typed client for a running analysis service."""

    def __init__(self, base_url: str, *, timeout: float = 300.0) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(f"base_url must be an http(s) URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None) -> bytes:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": {"message": raw.decode("utf-8", "replace")}}
            raise ServiceError.from_dict(payload, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}",
                code="unreachable",
                status=503,
            ) from None

    def call_raw(self, operation: str, payload: dict) -> bytes:
        """POST a raw payload to an operation; returns the raw response bytes.

        The equivalence tests use this to compare the HTTP wire bytes with
        the canonical serialization of the in-process response.
        """
        body = canonical_json(payload).encode("utf-8")
        return self._request("POST", f"/v1/{operation}", body)

    def call(self, operation: str, request):
        """Invoke one typed operation and return its typed response."""
        try:
            _, response_type = OPERATIONS[operation]
        except KeyError:
            raise ServiceError(
                f"unknown operation {operation!r}",
                code="unknown_operation",
                status=404,
            ) from None
        raw = self.call_raw(operation, request.to_dict())
        try:
            return response_type.from_dict(json.loads(raw))
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            # A truncated or non-conforming reply (buggy proxy, wrong server)
            # must surface as a typed error, not a parsing traceback.
            raise ServiceError(
                f"malformed {operation} response from {self.base_url}: {error}",
                code="malformed_response",
                status=502,
            ) from None

    def health(self) -> dict:
        """The service's ``/healthz`` payload."""
        return json.loads(self._request("GET", "/healthz"))

    # -- typed operations (same surface as AnalysisService) -------------------

    def associate(self, request: AssociateRequest) -> AssociateResponse:
        return self.call("associate", request)

    def table1(self, request: Table1Request) -> Table1Response:
        return self.call("table1", request)

    def whatif(self, request: WhatIfRequest) -> WhatIfResponse:
        return self.call("whatif", request)

    def chains(self, request: ChainsRequest) -> ChainsResponse:
        return self.call("chains", request)

    def topology(self, request: TopologyRequest) -> TopologyResponse:
        return self.call("topology", request)

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        return self.call("recommend", request)

    def simulate(self, request: SimulateRequest) -> SimulateResponse:
        return self.call("simulate", request)

    def consequences(self, request: ConsequencesRequest) -> ConsequencesResponse:
        return self.call("consequences", request)

    def validate(self, request: ValidateRequest) -> ValidateResponse:
        return self.call("validate", request)

    def export(self, request: ExportRequest) -> ExportResponse:
        return self.call("export", request)

"""HTTP client speaking the typed operations protocol.

:class:`ServiceClient` exposes the same method-per-operation surface as
:class:`repro.service.service.AnalysisService`, so callers (including every
CLI subcommand) are written once against the protocol and pointed at either
an in-process service or a remote ``cpsec serve`` instance::

    client = ServiceClient("http://127.0.0.1:8765")
    response = client.associate(AssociateRequest(scale=1.0))

Requests are serialized with the protocol's canonical JSON, responses are
parsed back into the typed response dataclasses, and error bodies are
re-raised as :class:`ServiceError` -- the same exception the in-process
service raises, so error handling is transport-agnostic too.  Stdlib only
(:mod:`urllib.request`).

The client also speaks the **async job surface** of a server started with a
job engine (``cpsec serve``)::

    job = client.submit("associate", AssociateRequest(scale=1.0))
    for event in client.stream_events(job["job_id"]):
        print(event)                        # monotonic state/progress events
    job = client.wait(job["job_id"])        # terminal job record
    response = client.job_result(job)       # typed response, byte-identical
                                            # to client.associate(...)
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from collections.abc import Iterator

from repro.obs.trace import TRACE_HEADER, valid_trace_id
from repro.service.protocol import (
    OPERATIONS,
    TERMINAL_JOB_STATES,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    CompactRequest,
    CompactResponse,
    ConsequencesRequest,
    ConsequencesResponse,
    ExportRequest,
    ExportResponse,
    ExtendRequest,
    ExtendResponse,
    RecommendRequest,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    SimulateResponse,
    Table1Request,
    Table1Response,
    TopologyRequest,
    TopologyResponse,
    ValidateRequest,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
)


class ServiceClient:
    """A typed client for a running analysis service."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 300.0,
        trace_id: str | None = None,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(f"base_url must be an http(s) URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Optional trace id sent as ``X-Cpsec-Trace-Id`` on every request,
        #: letting a caller correlate its own logs with the server's.
        self.trace_id = valid_trace_id(trace_id)
        #: Trace id the server assigned to the most recent request (from the
        #: response header on success, the error body on failure).
        self.last_trace_id: str | None = None

    # -- transport ------------------------------------------------------------

    def _request(self, method: str, path: str, body: bytes | None = None) -> bytes:
        headers = {"Content-Type": "application/json"}
        if self.trace_id is not None:
            headers[TRACE_HEADER] = self.trace_id
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                self.last_trace_id = (
                    valid_trace_id(response.headers.get(TRACE_HEADER))
                    or self.last_trace_id
                )
                return response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            self.last_trace_id = (
                valid_trace_id(error.headers.get(TRACE_HEADER))
                or self.last_trace_id
            )
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": {"message": raw.decode("utf-8", "replace")}}
            raise ServiceError.from_dict(payload, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}",
                code="unreachable",
                status=503,
            ) from None

    def call_raw(self, operation: str, payload: dict) -> bytes:
        """POST a raw payload to an operation; returns the raw response bytes.

        The equivalence tests use this to compare the HTTP wire bytes with
        the canonical serialization of the in-process response.
        """
        body = canonical_json(payload).encode("utf-8")
        return self._request("POST", f"/v1/{operation}", body)

    def call(self, operation: str, request):
        """Invoke one typed operation and return its typed response."""
        try:
            _, response_type = OPERATIONS[operation]
        except KeyError:
            raise ServiceError(
                f"unknown operation {operation!r}",
                code="unknown_operation",
                status=404,
            ) from None
        raw = self.call_raw(operation, request.to_dict())
        try:
            return response_type.from_dict(json.loads(raw))
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            # A truncated or non-conforming reply (buggy proxy, wrong server)
            # must surface as a typed error, not a parsing traceback.
            raise ServiceError(
                f"malformed {operation} response from {self.base_url}: {error}",
                code="malformed_response",
                status=502,
            ) from None

    def health(self) -> dict:
        """The service's ``/healthz`` payload."""
        return json.loads(self._request("GET", "/healthz"))

    def ops(self) -> dict:
        """The server's ``GET /v1/ops`` discovery payload."""
        return json.loads(self._request("GET", "/v1/ops"))

    # -- jobs ------------------------------------------------------------------

    def submit(
        self,
        operation: str,
        request=None,
        *,
        priority: str | None = None,
        weight: float | None = None,
        depends_on: list[str] | None = None,
        client_id: str | None = None,
    ) -> dict:
        """Submit one typed operation as a background job; the job record.

        ``request`` may be a typed request dataclass or a plain payload dict
        (``None`` submits the operation's defaults).  The scheduling knobs
        (``priority``, ``weight``, ``depends_on``, ``client_id``) ride the
        submission envelope; the server validates them with typed errors.
        """
        if request is None:
            payload = {}
        elif isinstance(request, dict):
            payload = request
        else:
            payload = request.to_dict()
        envelope: dict = {"operation": operation, "request": payload}
        if priority is not None:
            envelope["priority"] = priority
        if weight is not None:
            envelope["weight"] = weight
        if depends_on is not None:
            envelope["depends_on"] = list(depends_on)
        if client_id is not None:
            envelope["client"] = client_id
        body = canonical_json(envelope)
        raw = self._request("POST", "/v1/jobs", body.encode("utf-8"))
        return json.loads(raw)

    def job(self, job_id: str) -> dict:
        """One job's record (including its ``result`` payload, if any)."""
        return json.loads(self._request("GET", f"/v1/jobs/{job_id}"))

    def jobs(self) -> list[dict]:
        """Every job the server knows about (without result payloads)."""
        return json.loads(self._request("GET", "/v1/jobs"))["jobs"]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns the (possibly updated) job record."""
        return json.loads(self._request("POST", f"/v1/jobs/{job_id}/cancel", b"{}"))

    def stream_events(
        self,
        job_id: str,
        after: int | None = None,
        *,
        deadline: float | None = None,
        read_timeout: float | None = None,
    ) -> Iterator[dict]:
        """Yield a job's SSE events as dicts until the terminal state event.

        Events carry ``seq``/``kind`` plus ``state`` or
        ``phase``/``done``/``total``; ``seq`` is strictly increasing, so a
        dropped connection resumes with ``after=<last seen seq>``.

        ``deadline`` (a :func:`time.monotonic` instant) stops the stream
        early; ``read_timeout`` bounds each blocking socket read (default:
        the client timeout).  :meth:`wait` uses both to honour its timeout
        even while the stream is silent.
        """
        path = f"/v1/jobs/{job_id}/events"
        if after is not None:
            path += f"?after={after}"
        request = urllib.request.Request(f"{self.base_url}{path}", method="GET")
        try:
            stream = urllib.request.urlopen(
                request, timeout=read_timeout or self.timeout
            )
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": {"message": raw.decode("utf-8", "replace")}}
            raise ServiceError.from_dict(payload, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}",
                code="unreachable",
                status=503,
            ) from None
        with stream:
            data_lines: list[str] = []
            for raw_line in stream:
                if deadline is not None and time.monotonic() > deadline:
                    return
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line:
                    if line.startswith("data:"):
                        data_lines.append(line[len("data:"):].lstrip())
                    continue
                if not data_lines:
                    continue
                event = json.loads("\n".join(data_lines))
                data_lines = []
                yield event
                if (
                    event.get("kind") == "state"
                    and event.get("state") in TERMINAL_JOB_STATES
                ):
                    return

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_interval: float = 0.2
    ) -> dict:
        """Block until the job is terminal; returns the full job record.

        Waits on the SSE stream (no polling), bounding both the overall
        deadline and each socket read by ``timeout`` so a silent stream
        cannot overshoot it, and falls back to polling ``GET /v1/jobs/<id>``
        if the stream drops mid-job.
        """
        deadline = time.monotonic() + timeout
        try:
            for _ in self.stream_events(
                job_id,
                deadline=deadline,
                read_timeout=max(0.1, timeout),
            ):
                pass
        except ServiceError:
            raise
        except (OSError, http.client.HTTPException):
            pass  # stream dropped or read timed out; poll below
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_JOB_STATES:
                return record
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout:g}s",
                    code="timeout",
                    status=504,
                )
            time.sleep(poll_interval)

    def job_result(self, job: dict):
        """A finished job's ``result`` as the operation's typed response."""
        if job.get("state") != "succeeded" or job.get("result") is None:
            raise ServiceError(
                f"job {job.get('job_id')} has no result (state "
                f"{job.get('state')!r})",
                code="job_not_succeeded",
                status=409,
                details={"error": job.get("error")},
            )
        _, response_type = OPERATIONS[job["operation"]]
        return response_type.from_dict(job["result"])

    # -- typed operations (same surface as AnalysisService) -------------------

    def associate(self, request: AssociateRequest) -> AssociateResponse:
        return self.call("associate", request)

    def table1(self, request: Table1Request) -> Table1Response:
        return self.call("table1", request)

    def whatif(self, request: WhatIfRequest) -> WhatIfResponse:
        return self.call("whatif", request)

    def chains(self, request: ChainsRequest) -> ChainsResponse:
        return self.call("chains", request)

    def topology(self, request: TopologyRequest) -> TopologyResponse:
        return self.call("topology", request)

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        return self.call("recommend", request)

    def simulate(self, request: SimulateRequest) -> SimulateResponse:
        return self.call("simulate", request)

    def consequences(self, request: ConsequencesRequest) -> ConsequencesResponse:
        return self.call("consequences", request)

    def validate(self, request: ValidateRequest) -> ValidateResponse:
        return self.call("validate", request)

    def export(self, request: ExportRequest) -> ExportResponse:
        return self.call("export", request)

    def extend(self, request: ExtendRequest) -> ExtendResponse:
        return self.call("extend", request)

    def compact(self, request: CompactRequest) -> CompactResponse:
        return self.call("compact", request)

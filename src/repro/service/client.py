"""HTTP client speaking the typed operations protocol.

:class:`ServiceClient` exposes the same method-per-operation surface as
:class:`repro.service.service.AnalysisService`, so callers (including every
CLI subcommand) are written once against the protocol and pointed at either
an in-process service or a remote ``cpsec serve`` instance::

    client = ServiceClient("http://127.0.0.1:8765")
    response = client.associate(AssociateRequest(scale=1.0))

Requests are serialized with the protocol's canonical JSON, responses are
parsed back into the typed response dataclasses, and error bodies are
re-raised as :class:`ServiceError` -- the same exception the in-process
service raises, so error handling is transport-agnostic too.  Stdlib only
(:mod:`urllib.request`).

The client also speaks the **async job surface** of a server started with a
job engine (``cpsec serve``)::

    job = client.submit("associate", AssociateRequest(scale=1.0))
    for event in client.stream_events(job["job_id"]):
        print(event)                        # monotonic state/progress events
    job = client.wait(job["job_id"])        # terminal job record
    response = client.job_result(job)       # typed response, byte-identical
                                            # to client.associate(...)
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.error
import urllib.request
from collections.abc import Iterator
from dataclasses import dataclass

from repro.obs.trace import TRACE_HEADER, valid_trace_id
from repro.service.protocol import (
    DEADLINE_HEADER,
    MUTATING_OPERATIONS,
    OPERATIONS,
    TERMINAL_JOB_STATES,
    AssociateRequest,
    AssociateResponse,
    ChainsRequest,
    ChainsResponse,
    CompactRequest,
    CompactResponse,
    ConsequencesRequest,
    ConsequencesResponse,
    ExportRequest,
    ExportResponse,
    ExtendRequest,
    ExtendResponse,
    RecommendRequest,
    RecommendResponse,
    ServiceError,
    SimulateRequest,
    SimulateResponse,
    Table1Request,
    Table1Response,
    TopologyRequest,
    TopologyResponse,
    ValidateRequest,
    ValidateResponse,
    WhatIfRequest,
    WhatIfResponse,
    canonical_json,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry policy for *idempotent* requests.

    ``retries`` extra attempts after the first, with capped jittered
    exponential backoff (``backoff_s * 2**attempt``, jitter factor in
    ``[0.5, 1.5)``, capped at ``max_backoff_s``).  A server-provided
    ``retry_after_s`` (the typed 503 ``overloaded`` / 429 answers carry
    one) overrides the computed delay -- the server knows its own queue.
    """

    retries: int = 2
    backoff_s: float = 0.25
    max_backoff_s: float = 5.0


#: Error codes the client never retries even on a retryable status:
#: ``deadline_exceeded`` will blow the same budget again, a draining or
#: job-less server will not change its mind within a backoff.
_NO_RETRY_CODES = frozenset({"deadline_exceeded", "jobs_disabled", "shutting_down"})


def _client_retryable(error: ServiceError) -> bool:
    """Whether a failed idempotent request is worth re-offering."""
    if error.code == "unreachable":
        return True
    return error.status in (502, 503, 504) and error.code not in _NO_RETRY_CODES


class CircuitBreaker:
    """A half-open circuit breaker over one service endpoint.

    ``failure_threshold`` consecutive availability failures (connection
    refused, 5xx) open the circuit: requests fail fast with a typed 503
    ``circuit_open`` instead of queueing against a dead server.  After
    ``cooldown_s`` the circuit goes **half-open**: exactly one probe request
    is let through; its success closes the circuit, its failure re-opens it
    for another cooldown.  Thread-safe; ``monotonic`` is injectable so
    tests drive the cooldown without sleeping.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 30.0,
        monotonic=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._monotonic = monotonic
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._monotonic() - self._opened_at >= self.cooldown_s:
            return "half_open"
        return "open"

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half_open"``."""
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """Whether a request may go out now (claims the half-open probe)."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:
                return False  # another thread already holds the probe
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._opened_at is not None:
                # A failed probe (or a straggler): re-open for a fresh
                # cooldown from *now*.
                self._opened_at = self._monotonic()
            elif self._failures >= self.failure_threshold:
                self._opened_at = self._monotonic()


class ServiceClient:
    """A typed client for a running analysis service.

    Resilience is opt-in and off by default (every existing caller sees
    exactly one attempt per request, as before):

    * ``retry=RetryPolicy(...)`` re-offers **idempotent** requests (every
      GET, and every operation outside
      :data:`~repro.service.protocol.MUTATING_OPERATIONS`) on transient
      failures -- connection refused, 502/503/504 -- with capped jittered
      backoff, honoring a server-provided ``retry_after_s``.  Job
      submissions and mutating operations are never retried: re-offering
      one could run it twice.
    * ``breaker=CircuitBreaker(...)`` fails fast with a typed 503
      ``circuit_open`` while the endpoint is down, probing it again after a
      cooldown.
    * ``deadline_ms`` stamps every request with the
      ``X-Cpsec-Deadline-Ms`` budget header; the server answers a typed
      504 ``deadline_exceeded`` when the budget runs out server-side.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 300.0,
        trace_id: str | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        deadline_ms: float | None = None,
        sleep=time.sleep,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ValueError(f"base_url must be an http(s) URL, got {base_url!r}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Optional trace id sent as ``X-Cpsec-Trace-Id`` on every request,
        #: letting a caller correlate its own logs with the server's.
        self.trace_id = valid_trace_id(trace_id)
        #: Trace id the server assigned to the most recent request (from the
        #: response header on success, the error body on failure).
        self.last_trace_id: str | None = None
        self.retry = retry
        self.breaker = breaker
        self.deadline_ms = deadline_ms
        self._sleep = sleep  # injectable: retry tests record instead of wait
        self._jitter = random.Random()

    # -- transport ------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        *,
        idempotent: bool = True,
    ) -> bytes:
        """One logical request: breaker gate, attempt loop, backoff."""
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            raise ServiceError(
                f"circuit breaker open for {self.base_url}",
                code="circuit_open",
                status=503,
                details={"cooldown_s": breaker.cooldown_s},
            )
        attempt = 0
        while True:
            try:
                raw = self._request_once(method, path, body)
            except ServiceError as error:
                if breaker is not None:
                    # Availability failures trip the breaker; a 4xx means
                    # the server answered fine -- the *request* was wrong.
                    if error.code == "unreachable" or error.status >= 500:
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                policy = self.retry
                attempt += 1
                if (
                    policy is None
                    or not idempotent
                    or attempt > policy.retries
                    or not _client_retryable(error)
                    or (breaker is not None and breaker.state != "closed")
                ):
                    raise
                retry_after = error.details.get("retry_after_s")
                if (
                    isinstance(retry_after, (int, float))
                    and not isinstance(retry_after, bool)
                    and retry_after >= 0
                ):
                    delay = float(retry_after)
                else:
                    base = min(
                        policy.max_backoff_s,
                        policy.backoff_s * (2.0 ** (attempt - 1)),
                    )
                    delay = base * (0.5 + self._jitter.random())
                self._sleep(delay)
            else:
                if breaker is not None:
                    breaker.record_success()
                return raw

    def _request_once(self, method: str, path: str, body: bytes | None) -> bytes:
        headers = {"Content-Type": "application/json"}
        if self.trace_id is not None:
            headers[TRACE_HEADER] = self.trace_id
        if self.deadline_ms is not None:
            headers[DEADLINE_HEADER] = f"{self.deadline_ms:g}"
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                self.last_trace_id = (
                    valid_trace_id(response.headers.get(TRACE_HEADER))
                    or self.last_trace_id
                )
                return response.read()
        except urllib.error.HTTPError as error:
            raw = error.read()
            self.last_trace_id = (
                valid_trace_id(error.headers.get(TRACE_HEADER))
                or self.last_trace_id
            )
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": {"message": raw.decode("utf-8", "replace")}}
            raise ServiceError.from_dict(payload, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}",
                code="unreachable",
                status=503,
            ) from None

    def call_raw(self, operation: str, payload: dict) -> bytes:
        """POST a raw payload to an operation; returns the raw response bytes.

        The equivalence tests use this to compare the HTTP wire bytes with
        the canonical serialization of the in-process response.
        """
        body = canonical_json(payload).encode("utf-8")
        return self._request(
            "POST",
            f"/v1/{operation}",
            body,
            # Pure reads may be re-offered under a RetryPolicy; a mutating
            # operation replayed after an ambiguous failure could run twice.
            idempotent=operation not in MUTATING_OPERATIONS,
        )

    def call(self, operation: str, request):
        """Invoke one typed operation and return its typed response."""
        try:
            _, response_type = OPERATIONS[operation]
        except KeyError:
            raise ServiceError(
                f"unknown operation {operation!r}",
                code="unknown_operation",
                status=404,
            ) from None
        raw = self.call_raw(operation, request.to_dict())
        try:
            return response_type.from_dict(json.loads(raw))
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            # A truncated or non-conforming reply (buggy proxy, wrong server)
            # must surface as a typed error, not a parsing traceback.
            raise ServiceError(
                f"malformed {operation} response from {self.base_url}: {error}",
                code="malformed_response",
                status=502,
            ) from None

    def health(self) -> dict:
        """The service's ``/healthz`` payload."""
        return json.loads(self._request("GET", "/healthz"))

    def ops(self) -> dict:
        """The server's ``GET /v1/ops`` discovery payload."""
        return json.loads(self._request("GET", "/v1/ops"))

    # -- jobs ------------------------------------------------------------------

    def submit(
        self,
        operation: str,
        request=None,
        *,
        priority: str | None = None,
        weight: float | None = None,
        depends_on: list[str] | None = None,
        client_id: str | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
    ) -> dict:
        """Submit one typed operation as a background job; the job record.

        ``request`` may be a typed request dataclass or a plain payload dict
        (``None`` submits the operation's defaults).  The scheduling knobs
        (``priority``, ``weight``, ``depends_on``, ``client_id``) and the
        retry policy (``max_retries``, ``backoff_s`` -- server-side retries
        of retryable job failures, with jittered exponential backoff) ride
        the submission envelope; the server validates them with typed
        errors.  A submission is never retried client-side: re-offering one
        could enqueue the job twice.
        """
        if request is None:
            payload = {}
        elif isinstance(request, dict):
            payload = request
        else:
            payload = request.to_dict()
        envelope: dict = {"operation": operation, "request": payload}
        if priority is not None:
            envelope["priority"] = priority
        if weight is not None:
            envelope["weight"] = weight
        if depends_on is not None:
            envelope["depends_on"] = list(depends_on)
        if client_id is not None:
            envelope["client"] = client_id
        if max_retries is not None:
            envelope["max_retries"] = max_retries
        if backoff_s is not None:
            envelope["backoff_s"] = backoff_s
        body = canonical_json(envelope)
        raw = self._request(
            "POST", "/v1/jobs", body.encode("utf-8"), idempotent=False
        )
        return json.loads(raw)

    def job(self, job_id: str) -> dict:
        """One job's record (including its ``result`` payload, if any)."""
        return json.loads(self._request("GET", f"/v1/jobs/{job_id}"))

    def jobs(self) -> list[dict]:
        """Every job the server knows about (without result payloads)."""
        return json.loads(self._request("GET", "/v1/jobs"))["jobs"]

    def cancel(self, job_id: str) -> dict:
        """Request cancellation; returns the (possibly updated) job record."""
        return json.loads(self._request("POST", f"/v1/jobs/{job_id}/cancel", b"{}"))

    def stream_events(
        self,
        job_id: str,
        after: int | None = None,
        *,
        deadline: float | None = None,
        read_timeout: float | None = None,
    ) -> Iterator[dict]:
        """Yield a job's SSE events as dicts until the terminal state event.

        Events carry ``seq``/``kind`` plus ``state`` or
        ``phase``/``done``/``total``; ``seq`` is strictly increasing, so a
        dropped connection resumes with ``after=<last seen seq>``.

        ``deadline`` (a :func:`time.monotonic` instant) stops the stream
        early; ``read_timeout`` bounds each blocking socket read (default:
        the client timeout).  :meth:`wait` uses both to honour its timeout
        even while the stream is silent.
        """
        path = f"/v1/jobs/{job_id}/events"
        if after is not None:
            path += f"?after={after}"
        request = urllib.request.Request(f"{self.base_url}{path}", method="GET")
        try:
            stream = urllib.request.urlopen(
                request, timeout=read_timeout or self.timeout
            )
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": {"message": raw.decode("utf-8", "replace")}}
            raise ServiceError.from_dict(payload, status=error.code) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {error.reason}",
                code="unreachable",
                status=503,
            ) from None
        with stream:
            data_lines: list[str] = []
            for raw_line in stream:
                if deadline is not None and time.monotonic() > deadline:
                    return
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith(":"):
                    continue  # keep-alive comment
                if line:
                    if line.startswith("data:"):
                        data_lines.append(line[len("data:"):].lstrip())
                    continue
                if not data_lines:
                    continue
                event = json.loads("\n".join(data_lines))
                data_lines = []
                yield event
                if (
                    event.get("kind") == "state"
                    and event.get("state") in TERMINAL_JOB_STATES
                ):
                    return

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_interval: float = 0.2
    ) -> dict:
        """Block until the job is terminal; returns the full job record.

        Waits on the SSE stream (no polling), bounding both the overall
        deadline and each socket read by ``timeout`` so a silent stream
        cannot overshoot it, and falls back to polling ``GET /v1/jobs/<id>``
        if the stream drops mid-job.
        """
        deadline = time.monotonic() + timeout
        try:
            for _ in self.stream_events(
                job_id,
                deadline=deadline,
                read_timeout=max(0.1, timeout),
            ):
                pass
        except ServiceError:
            raise
        except (OSError, http.client.HTTPException):
            pass  # stream dropped or read timed out; poll below
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_JOB_STATES:
                return record
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout:g}s",
                    code="timeout",
                    status=504,
                )
            time.sleep(poll_interval)

    def job_result(self, job: dict):
        """A finished job's ``result`` as the operation's typed response."""
        if job.get("state") != "succeeded" or job.get("result") is None:
            raise ServiceError(
                f"job {job.get('job_id')} has no result (state "
                f"{job.get('state')!r})",
                code="job_not_succeeded",
                status=409,
                details={"error": job.get("error")},
            )
        _, response_type = OPERATIONS[job["operation"]]
        return response_type.from_dict(job["result"])

    # -- typed operations (same surface as AnalysisService) -------------------

    def associate(self, request: AssociateRequest) -> AssociateResponse:
        return self.call("associate", request)

    def table1(self, request: Table1Request) -> Table1Response:
        return self.call("table1", request)

    def whatif(self, request: WhatIfRequest) -> WhatIfResponse:
        return self.call("whatif", request)

    def chains(self, request: ChainsRequest) -> ChainsResponse:
        return self.call("chains", request)

    def topology(self, request: TopologyRequest) -> TopologyResponse:
        return self.call("topology", request)

    def recommend(self, request: RecommendRequest) -> RecommendResponse:
        return self.call("recommend", request)

    def simulate(self, request: SimulateRequest) -> SimulateResponse:
        return self.call("simulate", request)

    def consequences(self, request: ConsequencesRequest) -> ConsequencesResponse:
        return self.call("consequences", request)

    def validate(self, request: ValidateRequest) -> ValidateResponse:
        return self.call("validate", request)

    def export(self, request: ExportRequest) -> ExportResponse:
        return self.call("export", request)

    def extend(self, request: ExtendRequest) -> ExtendResponse:
        return self.call("extend", request)

    def compact(self, request: CompactRequest) -> CompactResponse:
        return self.call("compact", request)

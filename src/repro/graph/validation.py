"""Structural validation of system models.

The paper notes that the association pipeline is "highly sensitive to the
fidelity of the model" and that "system nodes with unspecific properties
result in large numbers of attributes with many irrelevant results".  The
validator surfaces exactly those modeling smells before the engineer runs the
(expensive, noisy) association step, alongside ordinary structural checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graph.model import ComponentKind, SystemGraph


class Severity(enum.Enum):
    """How serious a validation finding is."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class ValidationFinding:
    """One issue found in a system model."""

    severity: Severity
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code} {self.subject}: {self.message}"

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "severity": self.severity.value,
            "code": self.code,
            "subject": self.subject,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ValidationFinding":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            severity=Severity(payload["severity"]),
            code=payload["code"],
            subject=payload["subject"],
            message=payload["message"],
        )


def validate_model(graph: SystemGraph) -> list[ValidationFinding]:
    """Run all checks and return the findings (empty list means clean)."""
    findings: list[ValidationFinding] = []
    findings.extend(_check_isolated_components(graph))
    findings.extend(_check_missing_attributes(graph))
    findings.extend(_check_no_entry_points(graph))
    findings.extend(_check_unreachable_from_entry(graph))
    findings.extend(_check_vague_attributes(graph))
    findings.extend(_check_missing_protocols(graph))
    findings.extend(_check_physical_coverage(graph))
    return findings


def has_errors(findings: list[ValidationFinding]) -> bool:
    """Whether any finding has ERROR severity."""
    return any(f.severity is Severity.ERROR for f in findings)


def _check_isolated_components(graph: SystemGraph) -> list[ValidationFinding]:
    findings = []
    for component in graph.components:
        if not graph.connections_of(component.name):
            findings.append(
                ValidationFinding(
                    Severity.WARNING,
                    "ISOLATED",
                    component.name,
                    "component has no connections; it cannot participate in "
                    "exploit chains or consequence analysis",
                )
            )
    return findings


def _check_missing_attributes(graph: SystemGraph) -> list[ValidationFinding]:
    findings = []
    for component in graph.components:
        if component.kind in {ComponentKind.PLANT, ComponentKind.HUMAN_OPERATOR}:
            continue
        if not component.attributes:
            findings.append(
                ValidationFinding(
                    Severity.ERROR,
                    "NO_ATTRIBUTES",
                    component.name,
                    "component has no attributes; the search engine has "
                    "nothing to associate attack vectors with",
                )
            )
    return findings


def _check_no_entry_points(graph: SystemGraph) -> list[ValidationFinding]:
    if len(graph) and not graph.entry_points():
        return [
            ValidationFinding(
                Severity.WARNING,
                "NO_ENTRY_POINTS",
                graph.name,
                "no component is marked as an adversary entry point; exposure "
                "distances and exploit chains cannot be computed",
            )
        ]
    return []


def _check_unreachable_from_entry(graph: SystemGraph) -> list[ValidationFinding]:
    findings = []
    if not graph.entry_points():
        return findings
    for component in graph.components:
        if component.kind is ComponentKind.PLANT:
            continue
        if graph.exposure_distance(component.name) is None:
            findings.append(
                ValidationFinding(
                    Severity.INFO,
                    "AIR_GAPPED",
                    component.name,
                    "component is not reachable from any entry point; only "
                    "physical-access attacks apply",
                )
            )
    return findings


_VAGUE_TERMS = frozenset({"device", "system", "computer", "thing", "component", "unit"})


def _check_vague_attributes(graph: SystemGraph) -> list[ValidationFinding]:
    findings = []
    for component, attribute in graph.all_attributes():
        words = attribute.name.lower().split()
        if len(words) == 1 and words[0] in _VAGUE_TERMS:
            findings.append(
                ValidationFinding(
                    Severity.WARNING,
                    "VAGUE_ATTRIBUTE",
                    f"{component.name}.{attribute.name}",
                    "single vague term will match large numbers of irrelevant "
                    "attack vectors (see Section 3 of the paper)",
                )
            )
    return findings


def _check_missing_protocols(graph: SystemGraph) -> list[ValidationFinding]:
    findings = []
    for connection in graph.connections:
        if connection.medium == "network" and not connection.protocol:
            findings.append(
                ValidationFinding(
                    Severity.INFO,
                    "NO_PROTOCOL",
                    f"{connection.source}->{connection.target}",
                    "network connection has no protocol; protocol-level attack "
                    "patterns cannot be associated with this link",
                )
            )
    return findings


def _check_physical_coverage(graph: SystemGraph) -> list[ValidationFinding]:
    kinds = {component.kind for component in graph.components}
    has_cyber = any(kind.is_cyber for kind in kinds)
    has_physical = any(kind.is_physical for kind in kinds)
    if has_cyber and not has_physical:
        return [
            ValidationFinding(
                Severity.WARNING,
                "NO_PHYSICAL_PROCESS",
                graph.name,
                "the model contains no sensor/actuator/plant component; attack "
                "vectors cannot be mapped to physical consequences, which is "
                "exactly the IT-centric blind spot the paper criticizes",
            )
        ]
    return []

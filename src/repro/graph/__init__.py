"""System-model graph substrate.

This package implements the paper's first capability: a *general architectural
model* onto which attack-vector data can be associated.  It provides

* :mod:`repro.graph.attributes` -- the attribute taxonomy attached to components,
* :mod:`repro.graph.model` -- the attributed, directed system graph,
* :mod:`repro.graph.sysml` -- a SysML-flavoured internal-block-diagram front end,
* :mod:`repro.graph.graphml` -- GraphML import/export (the authors' exporter [11]),
* :mod:`repro.graph.refinement` -- architecture-refinement operations,
* :mod:`repro.graph.validation` -- structural validation of system models.
"""

from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph
from repro.graph.sysml import Block, Connector, InternalBlockDiagram, Port
from repro.graph.graphml import read_graphml, write_graphml
from repro.graph.refinement import RefinementStep, abstract_component, refine_component
from repro.graph.validation import ValidationFinding, validate_model

__all__ = [
    "Attribute",
    "AttributeKind",
    "Fidelity",
    "Component",
    "ComponentKind",
    "Connection",
    "SystemGraph",
    "Block",
    "Port",
    "Connector",
    "InternalBlockDiagram",
    "read_graphml",
    "write_graphml",
    "RefinementStep",
    "refine_component",
    "abstract_component",
    "ValidationFinding",
    "validate_model",
]

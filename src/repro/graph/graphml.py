"""GraphML import/export for system models.

The authors' prototype toolchain serializes the exported system model as
GraphML [11] so the search engine and dashboard can consume it independently
of the modeling tool.  This module implements a self-contained GraphML writer
and reader (built on :mod:`xml.etree.ElementTree`) that round-trips every
field of :class:`~repro.graph.model.SystemGraph`.

Component attributes are stored as a JSON-encoded ``data`` element so that an
external GraphML viewer still sees well-formed GraphML, while the reader can
reconstruct the full attribute structure.
"""

from __future__ import annotations

import json
from pathlib import Path
from xml.etree import ElementTree as ET

from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph

_GRAPHML_NS = "http://graphml.graphdrawing.org/xmlns"

#: key-id -> (domain, attribute name, type)
_KEYS = {
    "d_kind": ("node", "kind", "string"),
    "d_description": ("node", "description", "string"),
    "d_entry": ("node", "entry_point", "boolean"),
    "d_subsystem": ("node", "subsystem", "string"),
    "d_criticality": ("node", "criticality", "double"),
    "d_attributes": ("node", "attributes", "string"),
    "d_protocol": ("edge", "protocol", "string"),
    "d_medium": ("edge", "medium", "string"),
    "d_edge_description": ("edge", "description", "string"),
    "d_bidirectional": ("edge", "bidirectional", "boolean"),
}


def write_graphml(graph: SystemGraph, path: str | Path) -> Path:
    """Write a system model to a GraphML file and return the path."""
    path = Path(path)
    path.write_text(to_graphml_string(graph), encoding="utf-8")
    return path


def to_graphml_string(graph: SystemGraph) -> str:
    """Render a system model as a GraphML document string."""
    root = ET.Element("graphml", xmlns=_GRAPHML_NS)
    for key_id, (domain, name, key_type) in _KEYS.items():
        ET.SubElement(
            root,
            "key",
            id=key_id,
            attrib={"for": domain, "attr.name": name, "attr.type": key_type},
        )
    graph_el = ET.SubElement(root, "graph", id=graph.name, edgedefault="directed")
    for component in graph.components:
        node_el = ET.SubElement(graph_el, "node", id=component.name)
        _data(node_el, "d_kind", component.kind.value)
        _data(node_el, "d_description", component.description)
        _data(node_el, "d_entry", "true" if component.entry_point else "false")
        _data(node_el, "d_subsystem", component.subsystem)
        _data(node_el, "d_criticality", repr(component.criticality))
        _data(node_el, "d_attributes", _encode_attributes(component.attributes))
    for index, connection in enumerate(graph.connections):
        edge_el = ET.SubElement(
            graph_el,
            "edge",
            id=f"e{index}",
            source=connection.source,
            target=connection.target,
        )
        _data(edge_el, "d_protocol", connection.protocol)
        _data(edge_el, "d_medium", connection.medium)
        _data(edge_el, "d_edge_description", connection.description)
        _data(edge_el, "d_bidirectional", "true" if connection.bidirectional else "false")
    ET.indent(root)
    return ET.tostring(root, encoding="unicode", xml_declaration=True)


def read_graphml(path: str | Path) -> SystemGraph:
    """Read a system model from a GraphML file."""
    return from_graphml_string(Path(path).read_text(encoding="utf-8"))


def from_graphml_string(text: str) -> SystemGraph:
    """Parse a GraphML document string into a system model."""
    root = ET.fromstring(text)
    graph_el = _find(root, "graph")
    if graph_el is None:
        raise ValueError("GraphML document contains no <graph> element")
    graph = SystemGraph(graph_el.get("id", "system"))
    for node_el in _findall(graph_el, "node"):
        data = _collect_data(node_el)
        name = node_el.get("id", "")
        graph.add_component(
            Component(
                name=name,
                kind=ComponentKind(data.get("d_kind", "other")),
                attributes=_decode_attributes(data.get("d_attributes", "[]")),
                description=data.get("d_description", ""),
                entry_point=data.get("d_entry", "false") == "true",
                subsystem=data.get("d_subsystem", ""),
                criticality=float(data.get("d_criticality", "0.5")),
            )
        )
    for edge_el in _findall(graph_el, "edge"):
        data = _collect_data(edge_el)
        graph.connect(
            Connection(
                source=edge_el.get("source", ""),
                target=edge_el.get("target", ""),
                protocol=data.get("d_protocol", ""),
                medium=data.get("d_medium", "network"),
                description=data.get("d_edge_description", ""),
                bidirectional=data.get("d_bidirectional", "true") == "true",
            )
        )
    return graph


# -- helpers ----------------------------------------------------------------


def _data(parent: ET.Element, key: str, value: str) -> None:
    element = ET.SubElement(parent, "data", key=key)
    element.text = value


def _find(parent: ET.Element, tag: str) -> ET.Element | None:
    found = parent.find(f"{{{_GRAPHML_NS}}}{tag}")
    if found is None:
        found = parent.find(tag)
    return found


def _findall(parent: ET.Element, tag: str) -> list[ET.Element]:
    found = parent.findall(f"{{{_GRAPHML_NS}}}{tag}")
    if not found:
        found = parent.findall(tag)
    return found


def _collect_data(element: ET.Element) -> dict[str, str]:
    values: dict[str, str] = {}
    for data_el in _findall(element, "data"):
        key = data_el.get("key", "")
        values[key] = data_el.text or ""
    return values


def _encode_attributes(attributes: tuple[Attribute, ...]) -> str:
    return json.dumps(
        [
            {
                "name": attr.name,
                "kind": attr.kind.value,
                "fidelity": int(attr.fidelity),
                "description": attr.description,
                "version": attr.version,
                "tags": list(attr.tags),
            }
            for attr in attributes
        ]
    )


def _decode_attributes(payload: str) -> tuple[Attribute, ...]:
    items = json.loads(payload) if payload else []
    return tuple(
        Attribute(
            name=item["name"],
            kind=AttributeKind(item.get("kind", "other")),
            fidelity=Fidelity(item.get("fidelity", 2)),
            description=item.get("description", ""),
            version=item.get("version", ""),
            tags=tuple(item.get("tags", ())),
        )
        for item in items
    )

"""Architecture-refinement operations.

Section 2 of the paper: "What we mean by architecture refinement is the
addition of increasingly specific information in the model such that the
relevance of attack vectors increases the closer we get to deployment."

This module models refinement explicitly so the fidelity-sensitivity
experiment (DESIGN.md, E3) can sweep a single model across fidelity levels:

* :func:`refine_component` adds implementation-specific attributes to a
  component, producing a new model (models are treated as immutable inputs),
* :func:`abstract_component` drops attributes above a fidelity ceiling,
  producing the early-lifecycle view of the same architecture,
* :class:`RefinementStep` / :class:`RefinementPlan` record a sequence of
  refinements so that what-if analysis can replay or compare them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.attributes import Attribute, Fidelity
from repro.graph.model import SystemGraph


@dataclass(frozen=True)
class RefinementStep:
    """One refinement action: add attributes to a named component."""

    component: str
    added: tuple[Attribute, ...]
    rationale: str = ""

    def __post_init__(self) -> None:
        if not self.added:
            raise ValueError("a refinement step must add at least one attribute")


@dataclass
class RefinementPlan:
    """An ordered collection of refinement steps applied to a base model."""

    name: str
    steps: list[RefinementStep] = field(default_factory=list)

    def add(self, step: RefinementStep) -> "RefinementPlan":
        """Append a step; returns self for chaining."""
        self.steps.append(step)
        return self

    def apply(self, graph: SystemGraph) -> SystemGraph:
        """Apply all steps to a copy of the graph and return the refined model."""
        refined = graph.copy(f"{graph.name}+{self.name}")
        for step in self.steps:
            component = refined.component(step.component)
            refined.replace_component(component.add_attributes(*step.added))
        return refined

    def touched_components(self) -> tuple[str, ...]:
        """Names of components affected by the plan, without duplicates."""
        seen: dict[str, None] = {}
        for step in self.steps:
            seen.setdefault(step.component)
        return tuple(seen)


def refine_component(
    graph: SystemGraph,
    component_name: str,
    *attributes: Attribute,
    rationale: str = "",
) -> SystemGraph:
    """Return a copy of the model with extra attributes on one component.

    The added attributes typically have
    :attr:`~repro.graph.attributes.Fidelity.IMPLEMENTATION` fidelity (specific
    products, versions), which is what makes vulnerability matching possible.
    """
    plan = RefinementPlan(name=f"refine-{component_name}")
    plan.add(RefinementStep(component_name, tuple(attributes), rationale))
    return plan.apply(graph)


def abstract_component(
    graph: SystemGraph,
    component_name: str,
    max_fidelity: Fidelity = Fidelity.LOGICAL,
) -> SystemGraph:
    """Return a copy of the model with one component abstracted.

    Attributes above ``max_fidelity`` are removed; this is the paper's
    suggestion to "abstract away vulnerabilities at the earlier stages of the
    design lifecycle where the model is more abstract".
    """
    abstracted = graph.copy(f"{graph.name}~{component_name}")
    component = abstracted.component(component_name)
    kept = tuple(a for a in component.attributes if a.fidelity <= max_fidelity)
    abstracted.replace_component(component.with_attributes(kept))
    return abstracted


def abstract_model(graph: SystemGraph, max_fidelity: Fidelity) -> SystemGraph:
    """Return a copy of the whole model capped at the given fidelity level."""
    abstracted = graph.copy(f"{graph.name}@{max_fidelity.name.lower()}")
    for component in graph.components:
        kept = tuple(a for a in component.attributes if a.fidelity <= max_fidelity)
        abstracted.replace_component(component.with_attributes(kept))
    return abstracted


def fidelity_profile(graph: SystemGraph) -> dict[Fidelity, int]:
    """Count the model's attributes at each fidelity level."""
    profile = {level: 0 for level in Fidelity}
    for _, attribute in graph.all_attributes():
        profile[attribute.fidelity] += 1
    return profile


def swap_attribute(
    graph: SystemGraph,
    component_name: str,
    old_attribute_name: str,
    new_attribute: Attribute,
) -> SystemGraph:
    """Return a copy of the model with one attribute replaced by another.

    This is the elementary *what-if* operation of the dashboard: replace, for
    example, ``Windows 7`` with a hardened alternative on the programming
    workstation and re-run the association to compare postures.
    """
    modified = graph.copy(graph.name)
    component = modified.component(component_name)
    names = component.attribute_names()
    if old_attribute_name not in names:
        raise KeyError(
            f"component {component_name!r} has no attribute {old_attribute_name!r}"
        )
    replaced = tuple(
        new_attribute if attr.name == old_attribute_name else attr
        for attr in component.attributes
    )
    modified.replace_component(component.with_attributes(replaced))
    return modified

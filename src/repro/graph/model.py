"""The general architectural system model.

The paper's first required capability is to "export modeling
language-specific systems models to a general architectural model".  This
module is that general model: an attributed, directed multigraph of
components and their interactions, thin enough to be produced from any
front-end modeling language (here, the SysML-flavoured API in
:mod:`repro.graph.sysml`) and rich enough for attack-vector association and
consequence analysis.

The model deliberately stores *descriptive text* (attributes) rather than
security-specific annotations -- the point of the paper is that security
analysis should consume ordinary systems-engineering models.
"""

from __future__ import annotations

import enum
import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field, replace

import networkx as nx

from repro.graph.attributes import Attribute, AttributeKind, Fidelity


class ComponentKind(enum.Enum):
    """Coarse role of a component in a cyber-physical system."""

    CONTROLLER = "controller"
    SAFETY_SYSTEM = "safety_system"
    WORKSTATION = "workstation"
    SENSOR = "sensor"
    ACTUATOR = "actuator"
    NETWORK_DEVICE = "network_device"
    FIREWALL = "firewall"
    PLANT = "plant"
    DATA_STORE = "data_store"
    HUMAN_OPERATOR = "human_operator"
    EXTERNAL = "external"
    SUBSYSTEM = "subsystem"
    OTHER = "other"

    @property
    def is_cyber(self) -> bool:
        """Whether the component hosts software an adversary could target."""
        return self in _CYBER_KINDS

    @property
    def is_physical(self) -> bool:
        """Whether the component directly touches the physical process."""
        return self in _PHYSICAL_KINDS


_CYBER_KINDS = frozenset(
    {
        ComponentKind.CONTROLLER,
        ComponentKind.SAFETY_SYSTEM,
        ComponentKind.WORKSTATION,
        ComponentKind.NETWORK_DEVICE,
        ComponentKind.FIREWALL,
        ComponentKind.DATA_STORE,
        ComponentKind.SENSOR,
        ComponentKind.ACTUATOR,
    }
)

_PHYSICAL_KINDS = frozenset(
    {
        ComponentKind.SENSOR,
        ComponentKind.ACTUATOR,
        ComponentKind.PLANT,
    }
)


@dataclass(frozen=True)
class Component:
    """A node of the system graph.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`SystemGraph`.
    kind:
        Coarse role of the component.
    attributes:
        Descriptive attributes; the unit of attack-vector association.
    description:
        Free-text description of the component.
    entry_point:
        Whether an adversary can reach this component from outside the
        system boundary (e.g. a corporate-network-facing firewall port).
    subsystem:
        Optional grouping label (e.g. ``"control network"``).
    criticality:
        Engineering judgement of how important the component is to the
        mission, in ``[0, 1]``.  Used by posture metrics, not by matching.
    """

    name: str
    kind: ComponentKind = ComponentKind.OTHER
    attributes: tuple[Attribute, ...] = field(default_factory=tuple)
    description: str = ""
    entry_point: bool = False
    subsystem: str = ""
    criticality: float = 0.5

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("component name must be a non-empty string")
        if not 0.0 <= self.criticality <= 1.0:
            raise ValueError(
                f"criticality must be within [0, 1], got {self.criticality}"
            )
        object.__setattr__(self, "attributes", tuple(self.attributes))

    @property
    def text(self) -> str:
        """All matchable text of the component."""
        parts = [self.name, self.description]
        parts.extend(attr.text for attr in self.attributes)
        return " ".join(part for part in parts if part)

    def attribute_names(self) -> tuple[str, ...]:
        """Names of all attributes, in declaration order."""
        return tuple(attr.name for attr in self.attributes)

    def attributes_of_kind(self, kind: AttributeKind) -> tuple[Attribute, ...]:
        """All attributes of the given kind."""
        return tuple(attr for attr in self.attributes if attr.kind == kind)

    def max_fidelity(self) -> Fidelity:
        """The most implementation-specific fidelity among the attributes."""
        if not self.attributes:
            return Fidelity.CONCEPTUAL
        return max(attr.fidelity for attr in self.attributes)

    def with_attributes(self, attributes: Iterable[Attribute]) -> "Component":
        """Return a copy of the component with a replaced attribute tuple."""
        return replace(self, attributes=tuple(attributes))

    def add_attributes(self, *attributes: Attribute) -> "Component":
        """Return a copy of the component with extra attributes appended."""
        return replace(self, attributes=self.attributes + tuple(attributes))


@dataclass(frozen=True)
class Connection:
    """A directed interaction between two components.

    Connections carry the protocol and medium so that the search engine can
    associate protocol-level attack vectors (e.g. MODBUS spoofing) with the
    link itself, and so that topological filters can distinguish network
    reachability from purely physical coupling.
    """

    source: str
    target: str
    protocol: str = ""
    medium: str = "network"
    description: str = ""
    bidirectional: bool = True

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise ValueError("connection endpoints must be non-empty strings")

    @property
    def text(self) -> str:
        """All matchable text of the connection."""
        parts = [self.protocol, self.medium, self.description]
        return " ".join(part for part in parts if part)

    def endpoints(self) -> tuple[str, str]:
        """The (source, target) pair."""
        return (self.source, self.target)

    def reversed(self) -> "Connection":
        """The same connection with source and target swapped."""
        return replace(self, source=self.target, target=self.source)


class SystemGraph:
    """An attributed directed multigraph of components and connections.

    This is the "general architectural model" of the paper: the common
    representation produced by exporters from modeling languages and consumed
    by the attack-vector search engine and the analysis dashboard.

    The class wraps a :class:`networkx.MultiDiGraph` so that downstream
    analyses (reachability, centrality, exploit chains) can reuse networkx
    algorithms, while presenting a domain-specific API.
    """

    def __init__(self, name: str = "system") -> None:
        if not name:
            raise ValueError("system graph name must be non-empty")
        self.name = name
        self._graph: nx.MultiDiGraph = nx.MultiDiGraph(name=name)
        self._components: dict[str, Component] = {}
        self._connections: list[Connection] = []

    # -- construction ------------------------------------------------------

    def add_component(self, component: Component) -> Component:
        """Add a component node; raises if the name is already present."""
        if component.name in self._components:
            raise ValueError(f"duplicate component name: {component.name!r}")
        self._components[component.name] = component
        self._graph.add_node(component.name)
        return component

    def add_components(self, components: Iterable[Component]) -> None:
        """Add several components."""
        for component in components:
            self.add_component(component)

    def replace_component(self, component: Component) -> Component:
        """Replace an existing component (same name) with a new definition."""
        if component.name not in self._components:
            raise KeyError(f"unknown component: {component.name!r}")
        self._components[component.name] = component
        return component

    def remove_component(self, name: str) -> None:
        """Remove a component and all connections touching it."""
        if name not in self._components:
            raise KeyError(f"unknown component: {name!r}")
        del self._components[name]
        self._graph.remove_node(name)
        self._connections = [
            connection
            for connection in self._connections
            if name not in connection.endpoints()
        ]

    def connect(self, connection: Connection) -> Connection:
        """Add a connection; both endpoints must already exist."""
        for endpoint in connection.endpoints():
            if endpoint not in self._components:
                raise KeyError(f"unknown component: {endpoint!r}")
        self._connections.append(connection)
        self._graph.add_edge(connection.source, connection.target)
        if connection.bidirectional:
            self._graph.add_edge(connection.target, connection.source)
        return connection

    def connect_all(self, connections: Iterable[Connection]) -> None:
        """Add several connections."""
        for connection in connections:
            self.connect(connection)

    # -- access ------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[Component]:
        return iter(self._components.values())

    def component(self, name: str) -> Component:
        """Return the component with the given name."""
        try:
            return self._components[name]
        except KeyError:
            raise KeyError(f"unknown component: {name!r}") from None

    @property
    def components(self) -> tuple[Component, ...]:
        """All components, in insertion order."""
        return tuple(self._components.values())

    @property
    def connections(self) -> tuple[Connection, ...]:
        """All connections, in insertion order."""
        return tuple(self._connections)

    def component_names(self) -> tuple[str, ...]:
        """All component names, in insertion order."""
        return tuple(self._components)

    def entry_points(self) -> tuple[Component, ...]:
        """Components flagged as adversary entry points."""
        return tuple(c for c in self._components.values() if c.entry_point)

    def subsystems(self) -> dict[str, tuple[Component, ...]]:
        """Group components by their subsystem label."""
        groups: dict[str, list[Component]] = {}
        for component in self._components.values():
            groups.setdefault(component.subsystem, []).append(component)
        return {label: tuple(members) for label, members in groups.items()}

    def neighbors(self, name: str) -> tuple[Component, ...]:
        """Components directly connected to the named component."""
        self.component(name)
        seen: dict[str, None] = {}
        for connection in self._connections:
            if connection.source == name:
                seen.setdefault(connection.target)
            elif connection.target == name and connection.bidirectional:
                seen.setdefault(connection.source)
        return tuple(self._components[other] for other in seen)

    def connections_of(self, name: str) -> tuple[Connection, ...]:
        """All connections that touch the named component."""
        self.component(name)
        return tuple(
            connection
            for connection in self._connections
            if name in connection.endpoints()
        )

    def all_attributes(self) -> tuple[tuple[Component, Attribute], ...]:
        """Every (component, attribute) pair in the model."""
        pairs: list[tuple[Component, Attribute]] = []
        for component in self._components.values():
            for attribute in component.attributes:
                pairs.append((component, attribute))
        return tuple(pairs)

    # -- topology ----------------------------------------------------------

    def to_networkx(self) -> nx.MultiDiGraph:
        """A copy of the underlying networkx graph with component payloads."""
        graph = self._graph.copy()
        for name, component in self._components.items():
            graph.nodes[name]["component"] = component
        return graph

    def is_reachable(self, source: str, target: str) -> bool:
        """Whether ``target`` is reachable from ``source`` along connections."""
        self.component(source)
        self.component(target)
        return nx.has_path(self._graph, source, target)

    def reachable_from(self, source: str) -> tuple[str, ...]:
        """Names of all components reachable from ``source`` (excluding it)."""
        self.component(source)
        reachable = nx.descendants(self._graph, source)
        return tuple(name for name in self._components if name in reachable)

    def shortest_path(self, source: str, target: str) -> tuple[str, ...]:
        """Shortest component path from ``source`` to ``target``.

        Raises :class:`networkx.NetworkXNoPath` if no path exists.
        """
        self.component(source)
        self.component(target)
        return tuple(nx.shortest_path(self._graph, source, target))

    def exposure_distance(self, name: str) -> int | None:
        """Minimum hop count from any entry point to the named component.

        Returns ``0`` for entry points themselves and ``None`` when the
        component cannot be reached from any entry point (it is only
        attackable with physical access).
        """
        component = self.component(name)
        if component.entry_point:
            return 0
        best: int | None = None
        for entry in self.entry_points():
            try:
                length = nx.shortest_path_length(self._graph, entry.name, name)
            except nx.NetworkXNoPath:
                continue
            if best is None or length < best:
                best = length
        return best

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable dictionary of the full model."""
        return {
            "name": self.name,
            "components": [
                {
                    "name": c.name,
                    "kind": c.kind.value,
                    "description": c.description,
                    "entry_point": c.entry_point,
                    "subsystem": c.subsystem,
                    "criticality": c.criticality,
                    "attributes": [
                        {
                            "name": a.name,
                            "kind": a.kind.value,
                            "fidelity": int(a.fidelity),
                            "description": a.description,
                            "version": a.version,
                            "tags": list(a.tags),
                        }
                        for a in c.attributes
                    ],
                }
                for c in self._components.values()
            ],
            "connections": [
                {
                    "source": conn.source,
                    "target": conn.target,
                    "protocol": conn.protocol,
                    "medium": conn.medium,
                    "description": conn.description,
                    "bidirectional": conn.bidirectional,
                }
                for conn in self._connections
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SystemGraph":
        """Rebuild a system graph from :meth:`to_dict` output."""
        graph = cls(payload.get("name", "system"))
        for entry in payload.get("components", []):
            attributes = tuple(
                Attribute(
                    name=item["name"],
                    kind=AttributeKind(item.get("kind", "other")),
                    fidelity=Fidelity(item.get("fidelity", 2)),
                    description=item.get("description", ""),
                    version=item.get("version", ""),
                    tags=tuple(item.get("tags", ())),
                )
                for item in entry.get("attributes", [])
            )
            graph.add_component(
                Component(
                    name=entry["name"],
                    kind=ComponentKind(entry.get("kind", "other")),
                    attributes=attributes,
                    description=entry.get("description", ""),
                    entry_point=entry.get("entry_point", False),
                    subsystem=entry.get("subsystem", ""),
                    criticality=entry.get("criticality", 0.5),
                )
            )
        for entry in payload.get("connections", []):
            graph.connect(
                Connection(
                    source=entry["source"],
                    target=entry["target"],
                    protocol=entry.get("protocol", ""),
                    medium=entry.get("medium", "network"),
                    description=entry.get("description", ""),
                    bidirectional=entry.get("bidirectional", True),
                )
            )
        return graph

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the model to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "SystemGraph":
        """Rebuild a system graph from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def copy(self, name: str | None = None) -> "SystemGraph":
        """A deep, independent copy of the model."""
        clone = SystemGraph(name or self.name)
        clone.add_components(self._components.values())
        clone.connect_all(self._connections)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SystemGraph(name={self.name!r}, components={len(self)}, "
            f"connections={len(self._connections)})"
        )

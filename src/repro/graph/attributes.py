"""Attribute taxonomy for system-model components.

The paper associates attack vectors with *attributes* of components: the text
describing what hardware, operating system, software, protocol, or role a
component has (Table 1 is indexed by attribute, not by component).  High-level
descriptions relate to attack patterns and weaknesses; low-level descriptions
(specific product names and versions) relate to vulnerabilities.

This module defines the attribute value object and the two classification axes
the search engine uses:

* :class:`AttributeKind` -- what the attribute describes (hardware, OS, ...),
* :class:`Fidelity` -- how close to implementation the description is, which
  drives fidelity-aware matching (abstract -> CAPEC/CWE, specific -> CVE).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AttributeKind(enum.Enum):
    """What facet of the component an attribute describes."""

    HARDWARE = "hardware"
    OPERATING_SYSTEM = "operating_system"
    SOFTWARE = "software"
    FIRMWARE = "firmware"
    PROTOCOL = "protocol"
    NETWORK = "network"
    FUNCTION = "function"
    DATA = "data"
    ENTRY_POINT = "entry_point"
    PHYSICAL = "physical"
    HUMAN = "human"
    OTHER = "other"


class Fidelity(enum.IntEnum):
    """How implementation-specific a description is.

    The paper's refinement argument (Section 2) is that early, abstract models
    best relate to attack patterns and weaknesses, while implementation-level
    models (specific product names, versions) relate to vulnerabilities.  The
    ordering is meaningful: ``CONCEPTUAL < LOGICAL < IMPLEMENTATION``.
    """

    CONCEPTUAL = 1
    LOGICAL = 2
    IMPLEMENTATION = 3


@dataclass(frozen=True)
class Attribute:
    """A single descriptive attribute of a component.

    Parameters
    ----------
    name:
        Short human-readable name, e.g. ``"Cisco ASA"`` or ``"supervisory
        control function"``.  This is the primary text the search engine
        matches against the attack-vector corpus.
    kind:
        The facet the attribute describes.
    fidelity:
        How implementation-specific the attribute is.
    description:
        Optional longer free text adding matching context.
    version:
        Optional version string (only meaningful at implementation fidelity).
    tags:
        Optional extra keywords that should participate in matching (for
        example CPE-like platform identifiers).
    """

    name: str
    kind: AttributeKind = AttributeKind.OTHER
    fidelity: Fidelity = Fidelity.LOGICAL
    description: str = ""
    version: str = ""
    tags: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ValueError("attribute name must be a non-empty string")

    @property
    def text(self) -> str:
        """All matchable text of the attribute, joined into one string."""
        parts = [self.name]
        if self.version:
            parts.append(self.version)
        if self.description:
            parts.append(self.description)
        parts.extend(self.tags)
        return " ".join(parts)

    def is_specific(self) -> bool:
        """Whether the attribute is specific enough to match vulnerabilities."""
        return self.fidelity >= Fidelity.IMPLEMENTATION

    def with_fidelity(self, fidelity: Fidelity) -> "Attribute":
        """Return a copy of the attribute at a different fidelity level."""
        return Attribute(
            name=self.name,
            kind=self.kind,
            fidelity=fidelity,
            description=self.description,
            version=self.version,
            tags=self.tags,
        )


def hardware(name: str, **kwargs) -> Attribute:
    """Convenience constructor for a hardware attribute."""
    return Attribute(name, kind=AttributeKind.HARDWARE, **kwargs)


def operating_system(name: str, **kwargs) -> Attribute:
    """Convenience constructor for an operating-system attribute."""
    return Attribute(name, kind=AttributeKind.OPERATING_SYSTEM, **kwargs)


def software(name: str, **kwargs) -> Attribute:
    """Convenience constructor for a software attribute."""
    return Attribute(name, kind=AttributeKind.SOFTWARE, **kwargs)


def protocol(name: str, **kwargs) -> Attribute:
    """Convenience constructor for a protocol attribute."""
    return Attribute(name, kind=AttributeKind.PROTOCOL, **kwargs)


def function(name: str, **kwargs) -> Attribute:
    """Convenience constructor for a functional (role) attribute."""
    return Attribute(name, kind=AttributeKind.FUNCTION, **kwargs)


def entry_point(name: str, **kwargs) -> Attribute:
    """Convenience constructor for an entry-point attribute."""
    return Attribute(name, kind=AttributeKind.ENTRY_POINT, **kwargs)

"""A SysML-flavoured modeling front end.

The authors' prototype exports SysML internal block diagrams from MagicDraw to
GraphML [11].  We cannot ship MagicDraw, so this module provides the modeling
front end itself: blocks, ports, connectors, and stereotype/property values --
the subset of SysML structure the exporter consumes -- together with
``to_system_graph``, the export into the general architectural model.

The intent is that a systems engineer describes the architecture with ordinary
systems-engineering concepts (blocks and connectors, not threats), and the
security pipeline works from that description alone, exactly as the paper
advocates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.attributes import Attribute, AttributeKind, Fidelity
from repro.graph.model import Component, ComponentKind, Connection, SystemGraph

#: Mapping from SysML stereotype names used in the case studies to the
#: coarse component kinds of the general model.
_STEREOTYPE_KINDS = {
    "controller": ComponentKind.CONTROLLER,
    "safety": ComponentKind.SAFETY_SYSTEM,
    "workstation": ComponentKind.WORKSTATION,
    "sensor": ComponentKind.SENSOR,
    "actuator": ComponentKind.ACTUATOR,
    "network": ComponentKind.NETWORK_DEVICE,
    "firewall": ComponentKind.FIREWALL,
    "plant": ComponentKind.PLANT,
    "datastore": ComponentKind.DATA_STORE,
    "operator": ComponentKind.HUMAN_OPERATOR,
    "external": ComponentKind.EXTERNAL,
    "subsystem": ComponentKind.SUBSYSTEM,
}

#: Mapping from property-group names to attribute kinds.
_PROPERTY_KINDS = {
    "hardware": AttributeKind.HARDWARE,
    "os": AttributeKind.OPERATING_SYSTEM,
    "operating_system": AttributeKind.OPERATING_SYSTEM,
    "software": AttributeKind.SOFTWARE,
    "firmware": AttributeKind.FIRMWARE,
    "protocol": AttributeKind.PROTOCOL,
    "network": AttributeKind.NETWORK,
    "function": AttributeKind.FUNCTION,
    "data": AttributeKind.DATA,
    "entry_point": AttributeKind.ENTRY_POINT,
    "physical": AttributeKind.PHYSICAL,
    "human": AttributeKind.HUMAN,
}


@dataclass
class Port:
    """A SysML port on a block: a named interaction point with a protocol."""

    name: str
    protocol: str = ""
    direction: str = "inout"

    def __post_init__(self) -> None:
        if self.direction not in {"in", "out", "inout"}:
            raise ValueError(f"invalid port direction: {self.direction!r}")


@dataclass
class Block:
    """A SysML block: the unit of architectural decomposition.

    Properties are grouped by facet name (``"os"``, ``"software"``, ...); each
    value becomes an :class:`~repro.graph.attributes.Attribute` on export.
    Property values may be plain strings, ``(value, fidelity)`` pairs, or
    fully-specified :class:`~repro.graph.attributes.Attribute` objects (when
    the engineer wants to carry descriptions and tags that sharpen text
    matching -- the sensitivity the paper's Section 3 discusses).
    """

    name: str
    stereotype: str = ""
    documentation: str = ""
    properties: dict[str, list] = field(default_factory=dict)
    ports: list[Port] = field(default_factory=list)
    entry_point: bool = False
    subsystem: str = ""
    criticality: float = 0.5

    def add_property(
        self,
        group: str,
        value: "str | Attribute",
        fidelity: Fidelity = Fidelity.LOGICAL,
    ) -> "Block":
        """Add a property value under a facet group; returns self for chaining."""
        if isinstance(value, Attribute):
            self.properties.setdefault(group, []).append(value)
        else:
            self.properties.setdefault(group, []).append((value, fidelity))
        return self

    def add_port(self, name: str, protocol: str = "", direction: str = "inout") -> Port:
        """Add a port and return it."""
        port = Port(name=name, protocol=protocol, direction=direction)
        self.ports.append(port)
        return port

    def port(self, name: str) -> Port:
        """Return the port with the given name."""
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"block {self.name!r} has no port {name!r}")


@dataclass
class Connector:
    """A SysML connector joining two block ports."""

    source_block: str
    source_port: str
    target_block: str
    target_port: str
    protocol: str = ""
    medium: str = "network"
    documentation: str = ""


class InternalBlockDiagram:
    """A SysML internal block diagram: blocks wired together by connectors."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("diagram name must be non-empty")
        self.name = name
        self._blocks: dict[str, Block] = {}
        self._connectors: list[Connector] = []

    def add_block(self, block: Block) -> Block:
        """Add a block; raises on duplicate names."""
        if block.name in self._blocks:
            raise ValueError(f"duplicate block name: {block.name!r}")
        self._blocks[block.name] = block
        return block

    def block(self, name: str) -> Block:
        """Return the block with the given name."""
        try:
            return self._blocks[name]
        except KeyError:
            raise KeyError(f"unknown block: {name!r}") from None

    @property
    def blocks(self) -> tuple[Block, ...]:
        """All blocks, in insertion order."""
        return tuple(self._blocks.values())

    @property
    def connectors(self) -> tuple[Connector, ...]:
        """All connectors, in insertion order."""
        return tuple(self._connectors)

    def connect(
        self,
        source_block: str,
        source_port: str,
        target_block: str,
        target_port: str,
        protocol: str = "",
        medium: str = "network",
        documentation: str = "",
    ) -> Connector:
        """Wire two ports together.  Both blocks and ports must exist."""
        self.block(source_block).port(source_port)
        self.block(target_block).port(target_port)
        connector = Connector(
            source_block=source_block,
            source_port=source_port,
            target_block=target_block,
            target_port=target_port,
            protocol=protocol,
            medium=medium,
            documentation=documentation,
        )
        self._connectors.append(connector)
        return connector

    # -- export (capability 1 of the paper) --------------------------------

    def to_system_graph(self) -> SystemGraph:
        """Export the diagram to the general architectural model.

        Blocks become components (stereotype -> kind, properties -> attributes,
        ports contribute protocol attributes), connectors become connections.
        """
        graph = SystemGraph(self.name)
        for block in self._blocks.values():
            graph.add_component(_block_to_component(block))
        for connector in self._connectors:
            protocol = connector.protocol
            if not protocol:
                protocol = self.block(connector.source_block).port(
                    connector.source_port
                ).protocol
            graph.connect(
                Connection(
                    source=connector.source_block,
                    target=connector.target_block,
                    protocol=protocol,
                    medium=connector.medium,
                    description=connector.documentation,
                )
            )
        return graph


def _block_to_component(block: Block) -> Component:
    """Translate one SysML block into a general-model component."""
    kind = _STEREOTYPE_KINDS.get(block.stereotype.lower(), ComponentKind.OTHER)
    attributes: list[Attribute] = []
    for group, values in block.properties.items():
        attr_kind = _PROPERTY_KINDS.get(group.lower(), AttributeKind.OTHER)
        for value in values:
            if isinstance(value, Attribute):
                if value.kind is AttributeKind.OTHER:
                    value = Attribute(
                        name=value.name,
                        kind=attr_kind,
                        fidelity=value.fidelity,
                        description=value.description,
                        version=value.version,
                        tags=value.tags,
                    )
                attributes.append(value)
                continue
            if isinstance(value, tuple):
                text, fidelity = value
            else:
                text, fidelity = value, Fidelity.LOGICAL
            attributes.append(Attribute(name=text, kind=attr_kind, fidelity=fidelity))
    for port in block.ports:
        if port.protocol:
            attributes.append(
                Attribute(
                    name=port.protocol,
                    kind=AttributeKind.PROTOCOL,
                    fidelity=Fidelity.LOGICAL,
                    description=f"port {port.name}",
                )
            )
    return Component(
        name=block.name,
        kind=kind,
        attributes=tuple(attributes),
        description=block.documentation,
        entry_point=block.entry_point,
        subsystem=block.subsystem,
        criticality=block.criticality,
    )

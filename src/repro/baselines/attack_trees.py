"""Attack trees over the association (the second IT-centric baseline).

The paper: "Tools based on attack trees are often used to augment results
from such threat modeling.  Therefore, they are also focused on the risk to
the IT infrastructure and not the risk of causing undesirable physical
behaviors."  The implementation builds a goal-rooted AND/OR tree from the
exploit paths of the system graph: reaching the target component is an OR
over entry paths, each path is an AND over its hops, and each hop is an OR
over the attack vectors associated with that component.  Minimal cut sets
(the classic attack-tree analysis output) enumerate the distinct vector
combinations that achieve the goal.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

import networkx as nx

from repro.search.engine import SystemAssociation


class NodeType(enum.Enum):
    """Node connectives of an attack tree."""

    AND = "and"
    OR = "or"
    LEAF = "leaf"


@dataclass
class AttackTreeNode:
    """One node of an attack tree."""

    label: str
    node_type: NodeType
    children: list["AttackTreeNode"] = field(default_factory=list)
    record_id: str = ""

    def add(self, child: "AttackTreeNode") -> "AttackTreeNode":
        """Append a child and return it (for fluent construction)."""
        if self.node_type is NodeType.LEAF:
            raise ValueError("leaf nodes cannot have children")
        self.children.append(child)
        return child

    def leaves(self) -> list["AttackTreeNode"]:
        """All leaf nodes beneath (or at) this node."""
        if self.node_type is NodeType.LEAF:
            return [self]
        result = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def depth(self) -> int:
        """Height of the subtree rooted at this node (leaf = 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def cut_sets(self, limit: int = 10_000) -> list[frozenset[str]]:
        """Minimal cut sets of leaf record ids that satisfy this node.

        ``limit`` bounds the combinatorial expansion; trees from realistic
        associations can otherwise explode, which is itself one of the
        scalability problems the paper attributes to attack-tree practice.
        """
        sets = self._cut_sets(limit)
        minimal: list[frozenset[str]] = []
        for candidate in sorted(sets, key=len):
            if not any(existing <= candidate for existing in minimal):
                minimal.append(candidate)
        return minimal

    def _cut_sets(self, limit: int) -> list[frozenset[str]]:
        if self.node_type is NodeType.LEAF:
            return [frozenset({self.record_id or self.label})]
        if not self.children:
            return []
        if self.node_type is NodeType.OR:
            combined: list[frozenset[str]] = []
            for child in self.children:
                combined.extend(child._cut_sets(limit))
                if len(combined) > limit:
                    return combined[:limit]
            return combined
        # AND node: cross product of the children's cut sets.
        product: list[frozenset[str]] = [frozenset()]
        for child in self.children:
            child_sets = child._cut_sets(limit)
            if not child_sets:
                return []
            product = [
                existing | addition
                for existing, addition in itertools.product(product, child_sets)
            ]
            if len(product) > limit:
                product = product[:limit]
        return product


@dataclass
class AttackTree:
    """A goal-rooted attack tree."""

    goal: str
    root: AttackTreeNode

    def leaf_count(self) -> int:
        """Number of leaves (individual attack vector placements)."""
        return len(self.root.leaves())

    def depth(self) -> int:
        """Height of the tree."""
        return self.root.depth()

    def cut_sets(self, limit: int = 10_000) -> list[frozenset[str]]:
        """Minimal cut sets achieving the goal."""
        return self.root.cut_sets(limit)

    def mentions_physical_consequence(self) -> bool:
        """Attack-tree goals here are component compromises, not hazards."""
        return False


def build_attack_tree(
    association: SystemAssociation,
    target: str,
    max_paths: int = 32,
    max_vectors_per_component: int = 5,
) -> AttackTree:
    """Build an attack tree for compromising ``target`` from the entry points.

    The tree's root is an OR over attack paths (simple paths from each entry
    point); each path is an AND over its components; each component is an OR
    over its top associated attack vectors.  Components without associated
    vectors make their path infeasible and are skipped.
    """
    system = association.system
    system.component(target)
    graph = system.to_networkx()
    root = AttackTreeNode(label=f"compromise {target}", node_type=NodeType.OR)
    path_count = 0
    for entry in system.entry_points():
        if path_count >= max_paths:
            break
        if entry.name == target:
            paths = [[entry.name]]
        else:
            paths = nx.all_simple_paths(graph, entry.name, target, cutoff=8)
        for path in paths:
            if path_count >= max_paths:
                break
            path_node = _path_node(association, list(path), max_vectors_per_component)
            if path_node is not None:
                root.add(path_node)
                path_count += 1
    return AttackTree(goal=f"compromise {target}", root=root)


def _path_node(
    association: SystemAssociation, path: list[str], max_vectors: int
) -> AttackTreeNode | None:
    path_node = AttackTreeNode(
        label="via " + " -> ".join(path), node_type=NodeType.AND
    )
    for name in path:
        component_association = association.component(name)
        matches = component_association.unique_matches()[:max_vectors]
        if not matches:
            return None
        hop = AttackTreeNode(label=f"exploit {name}", node_type=NodeType.OR)
        for match in matches:
            hop.add(
                AttackTreeNode(
                    label=f"{match.identifier} on {name}",
                    node_type=NodeType.LEAF,
                    record_id=match.identifier,
                )
            )
        path_node.add(hop)
    return path_node

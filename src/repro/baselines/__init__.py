"""IT-centric baselines the paper argues are insufficient for CPS.

The paper repeatedly contrasts its model-based, consequence-aware approach
with the tools in common use: "modeling attacks in Microsoft's threat
modeling tool or attack trees assumes that the system must be a collection of
IT infrastructure with no physical interactions".  To make that comparison
runnable (experiment E7), this package implements both baselines:

* :mod:`repro.baselines.stride` -- a STRIDE-per-element threat enumeration in
  the style of the Microsoft threat modeling tool,
* :mod:`repro.baselines.attack_trees` -- attack-tree construction over the
  association, with cut-set analysis,
* :mod:`repro.baselines.comparison` -- coverage comparison: which approach
  can speak about physical consequences at all.
"""

from repro.baselines.attack_trees import AttackTree, AttackTreeNode, build_attack_tree
from repro.baselines.comparison import CoverageComparison, compare_coverage
from repro.baselines.stride import StrideAnalyzer, StrideCategory, StrideThreat

__all__ = [
    "StrideCategory",
    "StrideThreat",
    "StrideAnalyzer",
    "AttackTree",
    "AttackTreeNode",
    "build_attack_tree",
    "CoverageComparison",
    "compare_coverage",
]

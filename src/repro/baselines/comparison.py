"""Coverage comparison: IT-centric baselines vs. the consequence-aware pipeline.

Experiment E7 makes the paper's central qualitative claim measurable for the
demonstration system: count how many findings each approach produces, how
many of the modeled components each can speak about at all, and -- the
decisive column -- how many findings are connected to a *physical hazard* of
the process.  STRIDE and attack trees structurally cannot populate that
column; the consequence mapper can.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.consequence import ConsequenceAssessment
from repro.baselines.attack_trees import AttackTree
from repro.baselines.stride import StrideAnalyzer, StrideThreat
from repro.graph.model import SystemGraph
from repro.search.engine import SystemAssociation


@dataclass(frozen=True)
class ApproachCoverage:
    """Coverage figures for one analysis approach."""

    approach: str
    findings: int
    components_covered: int
    physical_components_covered: int
    findings_with_physical_consequence: int
    distinct_hazards_identified: int


@dataclass(frozen=True)
class CoverageComparison:
    """Side-by-side coverage of the baselines and the CPS-aware pipeline."""

    system_name: str
    approaches: tuple[ApproachCoverage, ...]

    def approach(self, name: str) -> ApproachCoverage:
        """Coverage figures for one approach by name."""
        for coverage in self.approaches:
            if coverage.approach == name:
                return coverage
        raise KeyError(f"no coverage recorded for approach {name!r}")

    def as_rows(self) -> list[tuple]:
        """Rows suitable for :func:`repro.analysis.report.render_table`."""
        return [
            (
                coverage.approach,
                coverage.findings,
                coverage.components_covered,
                coverage.physical_components_covered,
                coverage.findings_with_physical_consequence,
                coverage.distinct_hazards_identified,
            )
            for coverage in self.approaches
        ]


def compare_coverage(
    graph: SystemGraph,
    association: SystemAssociation,
    stride_threats: list[StrideThreat],
    attack_tree: AttackTree,
    assessments: list[ConsequenceAssessment],
) -> CoverageComparison:
    """Build the coverage comparison across the three approaches."""
    physical_components = {
        component.name for component in graph.components if component.kind.is_physical
    }
    component_names = set(graph.component_names())

    stride_subjects = {
        threat.subject for threat in stride_threats if threat.subject in component_names
    }
    stride = ApproachCoverage(
        approach="STRIDE (IT-centric)",
        findings=len(stride_threats),
        components_covered=len(stride_subjects),
        physical_components_covered=len(stride_subjects & physical_components),
        findings_with_physical_consequence=sum(
            1 for threat in stride_threats if threat.mentions_physical_consequence
        ),
        distinct_hazards_identified=0,
    )

    tree_components = {
        leaf.label.split(" on ", 1)[1]
        for leaf in attack_tree.root.leaves()
        if " on " in leaf.label
    }
    tree = ApproachCoverage(
        approach="Attack tree",
        findings=attack_tree.leaf_count(),
        components_covered=len(tree_components & component_names),
        physical_components_covered=len(tree_components & physical_components),
        findings_with_physical_consequence=0,
        distinct_hazards_identified=0,
    )

    associated_components = {
        component_association.component.name
        for component_association in association.components
        if component_association.total > 0
    }
    hazard_kinds = set()
    for assessment in assessments:
        hazard_kinds.update(assessment.new_hazards)
    cpsec = ApproachCoverage(
        approach="Model-based CPS security (this work)",
        findings=association.total,
        components_covered=len(associated_components),
        physical_components_covered=len(associated_components & physical_components),
        findings_with_physical_consequence=sum(
            1 for assessment in assessments if assessment.new_hazards
        ),
        distinct_hazards_identified=len(hazard_kinds),
    )
    return CoverageComparison(
        system_name=graph.name, approaches=(stride, tree, cpsec)
    )

"""STRIDE-per-element threat enumeration (the IT-centric baseline).

This mirrors the behaviour of data-flow-diagram threat modeling tools: every
element and flow is assigned the STRIDE categories conventional for its
element type, and each threat is described in terms of confidentiality,
integrity, and availability of *data and services* -- never in terms of the
physical process.  The deliberate absence of physical consequence information
is the point: it is what the coverage comparison (experiment E7) measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.graph.model import ComponentKind, SystemGraph


class StrideCategory(enum.Enum):
    """The six STRIDE threat categories."""

    SPOOFING = "Spoofing"
    TAMPERING = "Tampering"
    REPUDIATION = "Repudiation"
    INFORMATION_DISCLOSURE = "Information disclosure"
    DENIAL_OF_SERVICE = "Denial of service"
    ELEVATION_OF_PRIVILEGE = "Elevation of privilege"


#: Element-type to applicable-category mapping used by DFD-based tools:
#: processes get all six, data stores are not spoofed or elevated, external
#: interactors are spoofed/repudiated, and data flows get TID.
_PROCESS_CATEGORIES = tuple(StrideCategory)
_DATASTORE_CATEGORIES = (
    StrideCategory.TAMPERING,
    StrideCategory.REPUDIATION,
    StrideCategory.INFORMATION_DISCLOSURE,
    StrideCategory.DENIAL_OF_SERVICE,
)
_EXTERNAL_CATEGORIES = (StrideCategory.SPOOFING, StrideCategory.REPUDIATION)
_FLOW_CATEGORIES = (
    StrideCategory.TAMPERING,
    StrideCategory.INFORMATION_DISCLOSURE,
    StrideCategory.DENIAL_OF_SERVICE,
)

#: How component kinds of the general model map to DFD element types.
_KIND_TO_ELEMENT = {
    ComponentKind.CONTROLLER: "process",
    ComponentKind.SAFETY_SYSTEM: "process",
    ComponentKind.WORKSTATION: "process",
    ComponentKind.NETWORK_DEVICE: "process",
    ComponentKind.FIREWALL: "process",
    ComponentKind.SENSOR: "process",
    ComponentKind.ACTUATOR: "process",
    ComponentKind.DATA_STORE: "datastore",
    ComponentKind.HUMAN_OPERATOR: "external",
    ComponentKind.EXTERNAL: "external",
    ComponentKind.PLANT: None,
    ComponentKind.SUBSYSTEM: "process",
    ComponentKind.OTHER: "process",
}

_IMPACT_TEXT = {
    StrideCategory.SPOOFING: "an actor may interact with the element under a false identity",
    StrideCategory.TAMPERING: "data handled by the element may be modified without authorization",
    StrideCategory.REPUDIATION: "actions taken at the element may not be attributable",
    StrideCategory.INFORMATION_DISCLOSURE: "data handled by the element may be disclosed",
    StrideCategory.DENIAL_OF_SERVICE: "the element's service may be made unavailable",
    StrideCategory.ELEVATION_OF_PRIVILEGE: "an actor may gain privileges on the element",
}


@dataclass(frozen=True)
class StrideThreat:
    """One enumerated STRIDE threat."""

    subject: str
    subject_type: str
    category: StrideCategory
    description: str

    @property
    def mentions_physical_consequence(self) -> bool:
        """Always false: STRIDE impacts are stated on data and services.

        Kept as a property (rather than omitting the concept) so the coverage
        comparison can treat baseline and CPS-aware findings uniformly.
        """
        return False


class StrideAnalyzer:
    """Enumerates STRIDE threats for a system model, DFD-style."""

    def analyze(self, graph: SystemGraph) -> list[StrideThreat]:
        """Enumerate threats for every element and data flow of the model."""
        threats: list[StrideThreat] = []
        for component in graph.components:
            element = _KIND_TO_ELEMENT.get(component.kind, "process")
            if element is None:
                # Physical plant elements have no DFD equivalent; IT-centric
                # tools simply cannot represent them.
                continue
            for category in self._categories_for(element):
                threats.append(
                    StrideThreat(
                        subject=component.name,
                        subject_type=element,
                        category=category,
                        description=(
                            f"{category.value} against {component.name}: "
                            f"{_IMPACT_TEXT[category]}."
                        ),
                    )
                )
        for connection in graph.connections:
            if connection.medium in ("physical",):
                continue
            for category in _FLOW_CATEGORIES:
                threats.append(
                    StrideThreat(
                        subject=f"{connection.source} -> {connection.target}",
                        subject_type="dataflow",
                        category=category,
                        description=(
                            f"{category.value} against the "
                            f"{connection.protocol or connection.medium} flow from "
                            f"{connection.source} to {connection.target}: "
                            f"{_IMPACT_TEXT[category]}."
                        ),
                    )
                )
        return threats

    def _categories_for(self, element: str) -> tuple[StrideCategory, ...]:
        if element == "process":
            return _PROCESS_CATEGORIES
        if element == "datastore":
            return _DATASTORE_CATEGORIES
        if element == "external":
            return _EXTERNAL_CATEGORIES
        return _PROCESS_CATEGORIES

    def summary(self, threats: list[StrideThreat]) -> dict[str, int]:
        """Threat counts per STRIDE category."""
        counts = {category.value: 0 for category in StrideCategory}
        for threat in threats:
            counts[threat.category.value] += 1
        return counts

    def uncovered_components(self, graph: SystemGraph, threats: list[StrideThreat]) -> tuple[str, ...]:
        """Components that receive no STRIDE threat at all (the physical ones)."""
        covered = {threat.subject for threat in threats}
        return tuple(
            component.name
            for component in graph.components
            if component.name not in covered
        )

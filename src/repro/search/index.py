"""Inverted index over corpus records.

The corpus at paper scale contains tens of thousands of vulnerability texts;
scoring a query against every record would make the interactive what-if loop
of the dashboard (Section 3) unusable.  The inverted index restricts scoring
to records that share at least one informative token with the query.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass

from repro.search.text import tokenize


@dataclass(frozen=True)
class Posting:
    """One document's entry in a token's posting list."""

    doc_id: str
    term_frequency: int


class InvertedIndex:
    """Token -> posting-list index over (id, text) documents."""

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = {}
        self._doc_lengths: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens in the index."""
        return len(self._postings)

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document already indexed: {doc_id!r}")
        counts = Counter(tokenize(text))
        self._doc_lengths[doc_id] = sum(counts.values())
        for token, frequency in counts.items():
            self._postings.setdefault(token, []).append(Posting(doc_id, frequency))

    def add_documents(self, documents: Iterable[tuple[str, str]]) -> int:
        """Index many (id, text) documents; returns the number indexed."""
        count = 0
        for doc_id, text in documents:
            self.add_document(doc_id, text)
            count += 1
        return count

    def document_frequency(self, token: str) -> int:
        """Number of documents containing the token."""
        return len(self._postings.get(token, ()))

    def postings(self, token: str) -> tuple[Posting, ...]:
        """The posting list of a token (empty if unseen)."""
        return tuple(self._postings.get(token, ()))

    def document_length(self, doc_id: str) -> int:
        """Total token count of an indexed document."""
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise KeyError(f"document not indexed: {doc_id!r}") from None

    def document_ids(self) -> tuple[str, ...]:
        """All indexed document ids, in insertion order."""
        return tuple(self._doc_lengths)

    def candidates(self, query_tokens: Iterable[str]) -> dict[str, Counter]:
        """Documents sharing at least one query token.

        Returns a mapping ``doc_id -> Counter(token -> term frequency)``
        restricted to the query tokens, which is all the scorer needs.
        """
        results: dict[str, Counter] = {}
        for token in set(query_tokens):
            for posting in self._postings.get(token, ()):
                results.setdefault(posting.doc_id, Counter())[token] = (
                    posting.term_frequency
                )
        return results

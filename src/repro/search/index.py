"""Inverted index over corpus records.

The corpus at paper scale contains tens of thousands of vulnerability texts;
scoring a query against every record would make the interactive what-if loop
of the dashboard (Section 3) unusable.  The inverted index restricts scoring
to records that share at least one informative token with the query.

Postings are stored columnar -- per token, parallel arrays of document ids
and term frequencies -- which keeps construction, snapshotting, and the
TF-IDF fit pass cheap at paper scale (hundreds of thousands of postings).
Two features support the cached/incremental engine:

* a monotonically increasing :attr:`InvertedIndex.revision` lets dependents
  (e.g. :class:`repro.search.tfidf.TfIdfModel`) detect when their precomputed
  weights are stale,
* :meth:`InvertedIndex.to_dict` / :meth:`InvertedIndex.from_dict` snapshot the
  tokenized postings so repeated runs skip re-tokenizing the whole corpus
  (the dominant cost of index construction at scale 1.0).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro.search.text import tokenize


@dataclass(frozen=True)
class Posting:
    """One document's entry in a token's posting list."""

    doc_id: str
    term_frequency: int


class InvertedIndex:
    """Token -> posting-list index over (id, text) documents."""

    def __init__(self) -> None:
        # token -> ([doc_id, ...], [term_frequency, ...]) parallel arrays,
        # in document insertion order.
        self._postings: dict[str, tuple[list[str], list[int]]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._revision = 0

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens in the index."""
        return len(self._postings)

    @property
    def revision(self) -> int:
        """Mutation counter; increments whenever a document is added.

        Dependents that precompute per-token or per-document weights compare
        this against the revision they fitted at to decide whether to refit.
        """
        return self._revision

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document already indexed: {doc_id!r}")
        counts = Counter(tokenize(text))
        self._doc_lengths[doc_id] = sum(counts.values())
        postings = self._postings
        for token, frequency in counts.items():
            arrays = postings.get(token)
            if arrays is None:
                postings[token] = ([doc_id], [frequency])
            else:
                arrays[0].append(doc_id)
                arrays[1].append(frequency)
        self._revision += 1

    def add_documents(self, documents: Iterable[tuple[str, str]]) -> int:
        """Index many (id, text) documents; returns the number indexed."""
        count = 0
        for doc_id, text in documents:
            self.add_document(doc_id, text)
            count += 1
        return count

    def document_frequency(self, token: str) -> int:
        """Number of documents containing the token."""
        arrays = self._postings.get(token)
        return len(arrays[0]) if arrays is not None else 0

    def tokens(self) -> Iterator[str]:
        """Iterate over every distinct token in the index, in first-seen order."""
        return iter(self._postings)

    def postings(self, token: str) -> tuple[Posting, ...]:
        """The posting list of a token (empty if unseen)."""
        arrays = self._postings.get(token)
        if arrays is None:
            return ()
        return tuple(
            Posting(doc_id, frequency) for doc_id, frequency in zip(*arrays)
        )

    def posting_arrays(self, token: str) -> tuple[Sequence[str], Sequence[int]]:
        """The raw ``(doc_ids, term_frequencies)`` arrays of a token.

        This is the zero-copy accessor hot paths (TF-IDF fit, scoring)
        use; callers must treat the arrays as read-only.
        """
        arrays = self._postings.get(token)
        if arrays is None:
            return ((), ())
        return arrays

    def document_length(self, doc_id: str) -> int:
        """Total token count of an indexed document."""
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise KeyError(f"document not indexed: {doc_id!r}") from None

    def document_ids(self) -> tuple[str, ...]:
        """All indexed document ids, in insertion order."""
        return tuple(self._doc_lengths)

    def candidates(self, query_tokens: Iterable[str]) -> dict[str, Counter]:
        """Documents sharing at least one query token.

        Returns a mapping ``doc_id -> Counter(token -> term frequency)``
        restricted to the query tokens, which is all the scorer needs.
        """
        results: dict[str, Counter] = {}
        for token in set(query_tokens):
            arrays = self._postings.get(token)
            if arrays is None:
                continue
            for doc_id, frequency in zip(*arrays):
                results.setdefault(doc_id, Counter())[token] = frequency
        return results

    # -- snapshots -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the tokenized index.

        Document ids appear once, in insertion order; posting lists reference
        them by position.  Order is preserved everywhere, so an index rebuilt
        through :meth:`from_dict` scores queries bit-identically to the
        original (floating-point accumulation order is unchanged).
        """
        positions = {doc_id: number for number, doc_id in enumerate(self._doc_lengths)}
        return {
            "documents": [[doc_id, length] for doc_id, length in self._doc_lengths.items()],
            "postings": {
                token: [[positions[doc_id] for doc_id in doc_ids], frequencies]
                for token, (doc_ids, frequencies) in self._postings.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvertedIndex":
        """Rebuild an index from :meth:`to_dict` output, skipping tokenization.

        Raises :class:`ValueError` for any malformed payload (wrong shapes,
        posting positions outside the document table, mismatched array
        lengths), so callers can treat every corrupt snapshot uniformly.
        """
        index = cls()
        doc_lengths = index._doc_lengths
        try:
            for doc_id, length in payload.get("documents", ()):
                doc_lengths[doc_id] = length
            doc_list = list(doc_lengths)
            for token, (doc_positions, frequencies) in payload.get("postings", {}).items():
                if len(doc_positions) != len(frequencies):
                    raise ValueError(
                        f"posting arrays of token {token!r} differ in length"
                    )
                if doc_positions and not (
                    0 <= min(doc_positions) and max(doc_positions) < len(doc_list)
                ):
                    raise ValueError(
                        f"posting positions of token {token!r} fall outside "
                        "the document table"
                    )
                index._postings[token] = (
                    [doc_list[position] for position in doc_positions],
                    list(frequencies),
                )
        except (TypeError, KeyError, IndexError, AttributeError) as error:
            raise ValueError(f"malformed index snapshot payload: {error}") from error
        index._revision = len(doc_lengths)
        return index

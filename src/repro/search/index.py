"""Inverted index over corpus records.

The corpus at paper scale contains tens of thousands of vulnerability texts;
scoring a query against every record would make the interactive what-if loop
of the dashboard (Section 3) unusable.  The inverted index restricts scoring
to records that share at least one informative token with the query.

Postings are stored columnar and *positional* -- per token, parallel
contiguous ``array`` buffers of document positions (row numbers in insertion
order) and term frequencies.  Integer positions instead of document-id
strings keep the hot paths flat:

* the TF-IDF fit pass and the scorers accumulate into preallocated
  per-position buffers with no per-record dict hops,
* snapshots (:meth:`InvertedIndex.to_dict` / :meth:`InvertedIndex.from_dict`)
  serialize the position arrays directly, so loading a snapshot is a bulk
  ``array`` fill rather than a per-posting id lookup,
* a monotonically increasing :attr:`InvertedIndex.revision` lets dependents
  (e.g. :class:`repro.search.tfidf.TfIdfModel`) detect when their precomputed
  weights are stale.

The string-facing accessors (:meth:`postings`, :meth:`document_ids`) are
unchanged from the row-of-strings layout they replace.
"""

from __future__ import annotations

from array import array
from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.search.text import tokenize


def validate_posting_positions(token: str, positions: "array") -> None:
    """Reject position arrays that are not strictly increasing.

    ``add_document`` only ever appends a growing document position per
    token, so legitimate snapshots are strictly increasing.  Anything else
    (duplicates, reordering) would be *silently mis-scored* downstream: the
    vectorized accumulators use fancy-index ``+=``, which applies a repeated
    position once instead of summing it.  Corrupt payloads must fail
    loudly instead.
    """
    if len(positions) > 1:
        values = np.array(positions, dtype=np.uint32)
        if bool(np.any(values[1:] <= values[:-1])):
            raise ValueError(
                f"posting positions of token {token!r} are not strictly "
                "increasing"
            )


def _mutable_concat(view, delta) -> array:
    """A private mutable ``array('I')`` copy of ``view`` with ``delta`` appended."""
    merged = array("I")
    merged.frombytes(np.asarray(view, dtype=np.uint32).tobytes())
    merged.extend(delta)
    return merged


@dataclass(frozen=True)
class Posting:
    """One document's entry in a token's posting list."""

    doc_id: str
    term_frequency: int


class InvertedIndex:
    """Token -> posting-list index over (id, text) documents."""

    def __init__(self) -> None:
        # token -> (array('I') document positions, array('I') term
        # frequencies) parallel buffers, in document insertion order.
        self._postings: dict[str, tuple[array, array]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._doc_ids: list[str] = []
        self._revision = 0

    def __len__(self) -> int:
        return len(self._doc_lengths)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct tokens in the index."""
        return len(self._postings)

    @property
    def revision(self) -> int:
        """Mutation counter; increments whenever a document is added.

        Dependents that precompute per-token or per-document weights compare
        this against the revision they fitted at to decide whether to refit.
        """
        return self._revision

    def add_document(self, doc_id: str, text: str) -> None:
        """Index one document; re-adding an id raises."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document already indexed: {doc_id!r}")
        counts = Counter(tokenize(text))
        position = len(self._doc_ids)
        self._doc_lengths[doc_id] = sum(counts.values())
        self._doc_ids.append(doc_id)
        postings = self._postings
        for token, frequency in counts.items():
            arrays = postings.get(token)
            if arrays is None:
                postings[token] = (array("I", (position,)), array("I", (frequency,)))
            else:
                arrays[0].append(position)
                arrays[1].append(frequency)
        self._revision += 1

    def add_documents(self, documents: Iterable[tuple[str, str]]) -> int:
        """Index many (id, text) documents; returns the number indexed."""
        count = 0
        for doc_id, text in documents:
            self.add_document(doc_id, text)
            count += 1
        return count

    def document_frequency(self, token: str) -> int:
        """Number of documents containing the token."""
        arrays = self._postings.get(token)
        return len(arrays[0]) if arrays is not None else 0

    def tokens(self) -> Iterator[str]:
        """Iterate over every distinct token in the index, in first-seen order."""
        return iter(self._postings)

    def postings(self, token: str) -> tuple[Posting, ...]:
        """The posting list of a token (empty if unseen)."""
        arrays = self._postings.get(token)
        if arrays is None:
            return ()
        doc_ids = self._doc_ids
        return tuple(
            Posting(doc_ids[position], frequency)
            for position, frequency in zip(*arrays)
        )

    def posting_arrays(self, token: str) -> tuple[array, array]:
        """The raw ``(document positions, term frequencies)`` buffers.

        Positions index into :meth:`document_ids`.  This is the zero-copy
        accessor hot paths (TF-IDF fit, scoring) use; callers must treat the
        buffers as read-only.  Unseen tokens return a pair of empty arrays.
        """
        arrays = self._postings.get(token)
        if arrays is None:
            return (array("I"), array("I"))
        return arrays

    def document_table(self) -> list[tuple[str, int]]:
        """``(doc_id, token count)`` pairs in insertion order.

        The document-table half of the :meth:`to_dict` snapshot, exposed
        directly so artifact writers can serialize a hydrated index without
        materializing the full posting snapshot.
        """
        return list(self._doc_lengths.items())

    def document_length(self, doc_id: str) -> int:
        """Total token count of an indexed document."""
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise KeyError(f"document not indexed: {doc_id!r}") from None

    def document_ids(self) -> tuple[str, ...]:
        """All indexed document ids, in insertion order."""
        return tuple(self._doc_ids)

    def candidates(self, query_tokens: Iterable[str]) -> dict[str, Counter]:
        """Documents sharing at least one query token.

        Returns a mapping ``doc_id -> Counter(token -> term frequency)``
        restricted to the query tokens, which is all the scorer needs.
        """
        results: dict[str, Counter] = {}
        doc_ids = self._doc_ids
        for token in set(query_tokens):
            arrays = self._postings.get(token)
            if arrays is None:
                continue
            for position, frequency in zip(*arrays):
                results.setdefault(doc_ids[position], Counter())[token] = frequency
        return results

    # -- snapshots -----------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the tokenized index.

        Document ids appear once, in insertion order; posting lists reference
        them by position -- exactly the in-memory layout, so the snapshot
        round-trip involves no id translation in either direction.  Order is
        preserved everywhere, so an index rebuilt through :meth:`from_dict`
        scores queries bit-identically to the original (floating-point
        accumulation order is unchanged).
        """
        return {
            "documents": [[doc_id, length] for doc_id, length in self._doc_lengths.items()],
            "postings": {
                token: [positions.tolist(), frequencies.tolist()]
                for token, (positions, frequencies) in self._postings.items()
            },
        }

    @classmethod
    def from_posting_arrays(
        cls,
        doc_ids: Iterable[str],
        doc_lengths: Iterable[int],
        postings: dict[str, tuple[array, array]],
    ) -> "InvertedIndex":
        """Adopt prebuilt positional posting buffers without copying.

        This is the binary workspace-artifact fast path: the caller hands
        over ``array('I')`` buffers decoded straight from disk and the index
        trusts their contents (the workspace layer validates the framing,
        posting bounds, and section sizes before handing them over).
        """
        index = cls()
        index._doc_ids = list(doc_ids)
        index._doc_lengths = dict(zip(index._doc_ids, doc_lengths, strict=True))
        if len(index._doc_lengths) != len(index._doc_ids):
            raise ValueError("duplicate document ids in posting arrays")
        index._postings = postings
        index._revision = len(index._doc_ids)
        return index

    def extend_from_arrays(
        self,
        doc_ids: Iterable[str],
        doc_lengths: Iterable[int],
        postings: dict[str, tuple[array, array]],
    ) -> int:
        """Append prebuilt delta posting buffers; returns documents added.

        This is the workspace *extend* fast path: the delta carries global
        document positions continuing this index's numbering, so appending
        is a per-token buffer concatenation with no re-tokenization.  The
        delta is validated at the boundary -- positions must continue
        strictly increasing from the existing postings and stay inside the
        grown document table, term frequencies must be positive, and
        re-added document ids raise -- so a corrupt delta section fails
        loudly instead of silently mis-scoring.
        """
        base_total = len(self._doc_ids)
        new_ids = list(doc_ids)
        new_lengths = list(doc_lengths)
        if len(new_ids) != len(new_lengths):
            raise ValueError("document ids and lengths differ in length")
        for doc_id in new_ids:
            if doc_id in self._doc_lengths:
                raise ValueError(f"document already indexed: {doc_id!r}")
        if len(set(new_ids)) != len(new_ids):
            raise ValueError("duplicate document ids in posting delta")
        total = base_total + len(new_ids)
        existing = self._postings
        for token, (positions, frequencies) in postings.items():
            if len(positions) != len(frequencies):
                raise ValueError(
                    f"posting arrays of token {token!r} differ in length"
                )
            if not positions:
                continue
            if not (base_total <= min(positions) and max(positions) < total):
                raise ValueError(
                    f"posting positions of token {token!r} fall outside "
                    "the appended document range"
                )
            validate_posting_positions(token, positions)
            if min(frequencies) <= 0:
                raise ValueError(
                    f"non-positive term frequency for token {token!r}"
                )
        for doc_id, length in zip(new_ids, new_lengths):
            self._doc_lengths[doc_id] = length
        self._doc_ids.extend(new_ids)
        for token, (positions, frequencies) in postings.items():
            if not positions:
                continue
            arrays = existing.get(token)
            if arrays is None:
                existing[token] = (array("I", positions), array("I", frequencies))
            elif isinstance(arrays[0], array):
                arrays[0].extend(positions)
                arrays[1].extend(frequencies)
            else:
                # Zero-copy numpy views over a mapped workspace artifact are
                # read-only; the first extension of a token copies the view
                # into a private mutable buffer (copy-on-extend) -- unseen
                # tokens and the mapped pages themselves stay zero-copy.
                existing[token] = (
                    _mutable_concat(arrays[0], positions),
                    _mutable_concat(arrays[1], frequencies),
                )
        self._revision += len(new_ids)
        return len(new_ids)

    @classmethod
    def from_dict(cls, payload: dict) -> "InvertedIndex":
        """Rebuild an index from :meth:`to_dict` output, skipping tokenization.

        Raises :class:`ValueError` for any malformed payload (wrong shapes,
        posting positions outside the document table, mismatched array
        lengths), so callers can treat every corrupt snapshot uniformly.
        """
        index = cls()
        doc_lengths = index._doc_lengths
        try:
            for doc_id, length in payload.get("documents", ()):
                doc_lengths[doc_id] = length
            index._doc_ids = list(doc_lengths)
            total = len(index._doc_ids)
            for token, (doc_positions, frequencies) in payload.get("postings", {}).items():
                if len(doc_positions) != len(frequencies):
                    raise ValueError(
                        f"posting arrays of token {token!r} differ in length"
                    )
                if doc_positions and not (
                    0 <= min(doc_positions) and max(doc_positions) < total
                ):
                    raise ValueError(
                        f"posting positions of token {token!r} fall outside "
                        "the document table"
                    )
                if frequencies and min(frequencies) <= 0:
                    # Tokenization never yields tf <= 0; a zero would turn
                    # into a -inf TF-IDF weight downstream.
                    raise ValueError(
                        f"non-positive term frequency for token {token!r}"
                    )
                positions = array("I", doc_positions)
                validate_posting_positions(token, positions)
                index._postings[token] = (positions, array("I", frequencies))
        except (TypeError, KeyError, IndexError, AttributeError, OverflowError) as error:
            raise ValueError(f"malformed index snapshot payload: {error}") from error
        index._revision = len(doc_lengths)
        return index

"""Filtering of the associated attack-vector result space.

Section 3 of the paper: "the total number of attack vectors returned by the
search process is large ... Filtering functionality is implemented to manage
these attack vectors."  Filters here are plain callables ``Match -> bool``
(some parameterized through factory functions), composed by a
:class:`FilterPipeline` that rewrites a :class:`SystemAssociation` into a
smaller one while preserving its structure, so the dashboard and the metrics
operate identically on filtered and unfiltered artifacts.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.corpus.cvss import severity_rating
from repro.corpus.schema import RecordKind
from repro.search.engine import (
    AttributeMatches,
    ComponentAssociation,
    Match,
    SystemAssociation,
)

#: A filter decides whether a match survives, given the component context.
MatchFilter = Callable[[Match, ComponentAssociation], bool]

_SEVERITY_ORDER = ("None", "Low", "Medium", "High", "Very High", "Critical")


def by_min_score(minimum: float) -> MatchFilter:
    """Keep matches whose association score is at least ``minimum``."""

    def accept(match: Match, _context: ComponentAssociation) -> bool:
        return match.score >= minimum

    return accept


def by_severity(minimum: str) -> MatchFilter:
    """Keep matches whose qualitative severity is at least ``minimum``.

    Vulnerabilities use their CVSS rating; attack patterns use the CAPEC
    severity; weaknesses use their likelihood as a stand-in, mirroring how the
    dashboard surfaces them.
    """
    if minimum not in _SEVERITY_ORDER:
        raise ValueError(f"unknown severity level: {minimum!r}")
    floor = _SEVERITY_ORDER.index(minimum)

    def accept(match: Match, _context: ComponentAssociation) -> bool:
        severity = match.severity
        if match.cvss_score is not None:
            severity = severity_rating(match.cvss_score)
        if severity not in _SEVERITY_ORDER:
            return True
        return _SEVERITY_ORDER.index(severity) >= floor

    return accept


def by_exploitability(require_network: bool = True) -> MatchFilter:
    """Keep vulnerabilities exploitable over the network (AV:N or AV:A).

    Non-vulnerability matches pass through unchanged; they carry no CVSS
    attack vector.
    """

    def accept(match: Match, _context: ComponentAssociation) -> bool:
        if match.kind is not RecordKind.VULNERABILITY:
            return True
        if match.network_exploitable is None:
            return True
        return match.network_exploitable == require_network

    return accept


def by_kind(*kinds: RecordKind) -> MatchFilter:
    """Keep only matches of the given record classes."""
    allowed = frozenset(kinds)

    def accept(match: Match, _context: ComponentAssociation) -> bool:
        return match.kind in allowed

    return accept


def by_network_exposure(max_distance: int) -> MatchFilter:
    """Keep matches on components within ``max_distance`` hops of an entry point.

    This is the topological filter: attack vectors on components an adversary
    cannot reach over the modeled connections are deprioritized.  The hop
    distance is read from the association's system graph.
    """

    def accept(_match: Match, context: ComponentAssociation) -> bool:
        distance = context.exposure_distance
        return distance is not None and distance <= max_distance

    return accept


def top_k(count: int) -> MatchFilter:
    """Keep the ``count`` best-scored matches per component.

    The per-component ranking is memoized on the component context, so a full
    association (tens of thousands of matches at paper scale) is filtered in
    one ranking pass per component rather than one per match.
    """
    if count < 1:
        raise ValueError("top_k count must be at least 1")
    keep_cache: dict[int, frozenset[str]] = {}

    def accept(match: Match, context: ComponentAssociation) -> bool:
        key = id(context)
        keep = keep_cache.get(key)
        if keep is None:
            ranked = sorted(
                context.unique_matches(), key=lambda m: (-m.score, m.identifier)
            )
            keep = frozenset(m.identifier for m in ranked[:count])
            keep_cache[key] = keep
        return match.identifier in keep

    return accept


@dataclass(frozen=True)
class _ComponentContext(ComponentAssociation):
    """Component association enriched with its exposure distance."""

    exposure_distance: int | None = None


@dataclass
class FilterPipeline:
    """Applies a sequence of filters to a :class:`SystemAssociation`."""

    filters: Sequence[MatchFilter] = field(default_factory=list)

    def add(self, match_filter: MatchFilter) -> "FilterPipeline":
        """Append a filter; returns self for chaining."""
        self.filters = list(self.filters) + [match_filter]
        return self

    def apply(self, association: SystemAssociation) -> SystemAssociation:
        """Return a new association containing only surviving matches."""
        filtered_components = []
        for component_association in association.components:
            context = _ComponentContext(
                component=component_association.component,
                attribute_matches=component_association.attribute_matches,
                exposure_distance=association.system.exposure_distance(
                    component_association.component.name
                ),
            )
            filtered_components.append(self._filter_component(context))
        return SystemAssociation(
            system=association.system,
            components=tuple(filtered_components),
            scorer=association.scorer,
        )

    def _filter_component(self, context: _ComponentContext) -> ComponentAssociation:
        new_attribute_matches = []
        for attribute_match in context.attribute_matches:
            new_attribute_matches.append(
                AttributeMatches(
                    attribute=attribute_match.attribute,
                    attack_patterns=self._keep(attribute_match.attack_patterns, context),
                    weaknesses=self._keep(attribute_match.weaknesses, context),
                    vulnerabilities=self._keep(attribute_match.vulnerabilities, context),
                )
            )
        return ComponentAssociation(
            component=context.component,
            attribute_matches=tuple(new_attribute_matches),
        )

    def _keep(
        self, matches: tuple[Match, ...], context: _ComponentContext
    ) -> tuple[Match, ...]:
        survivors = []
        for match in matches:
            if all(match_filter(match, context) for match_filter in self.filters):
                survivors.append(match)
        return tuple(survivors)

    def reduction(self, association: SystemAssociation) -> dict[str, int]:
        """Apply the pipeline and report before/after totals."""
        filtered = self.apply(association)
        return {
            "before": association.total,
            "after": filtered.total,
            "removed": association.total - filtered.total,
        }

"""Attack-vector search and association engine.

This package is the reproduction of the paper's second capability (and the
authors' CYBOK command-line tool [12]): given a system model and the
attack-vector corpus, associate attack patterns, weaknesses, and
vulnerabilities with each attribute of each component through text matching.

* :mod:`repro.search.text` -- tokenization and light normalization,
* :mod:`repro.search.index` -- an inverted index over corpus records, with
  JSON snapshots for skipping rebuilds,
* :mod:`repro.search.tfidf` -- TF-IDF weighting and cosine scoring over
  vectors precomputed at fit time,
* :mod:`repro.search.engine` -- the attribute/component/system association
  API, with exact result caching and incremental re-association,
* :mod:`repro.search.filters` -- the filtering pipeline that manages the large
  result space (Section 3 of the paper),
* :mod:`repro.search.chains` -- exploit chains over the system topology.
"""

from repro.search.engine import (
    AttributeMatches,
    ComponentAssociation,
    EngineStats,
    Match,
    SearchEngine,
    SystemAssociation,
)
from repro.search.filters import (
    FilterPipeline,
    by_exploitability,
    by_min_score,
    by_network_exposure,
    by_severity,
    top_k,
)
from repro.search.chains import ExploitChain, find_exploit_chains
from repro.search.index import InvertedIndex
from repro.search.text import tokenize
from repro.search.tfidf import TfIdfModel

__all__ = [
    "SearchEngine",
    "EngineStats",
    "Match",
    "AttributeMatches",
    "ComponentAssociation",
    "SystemAssociation",
    "FilterPipeline",
    "by_min_score",
    "by_severity",
    "by_exploitability",
    "by_network_exposure",
    "top_k",
    "ExploitChain",
    "find_exploit_chains",
    "InvertedIndex",
    "TfIdfModel",
    "tokenize",
]

"""TF-IDF weighting and cosine scoring over the inverted index.

Queries (component attributes) are short and records are short paragraphs, so
classic lnc.ltc-style TF-IDF with cosine normalization is both adequate and
easy to reason about; the ablation benchmark compares it against plain token
overlap (Jaccard) to justify the choice.

:meth:`TfIdfModel.fit` precomputes everything that depends only on the corpus
-- the per-token IDF table, the IDF-weighted posting lists, and the document
norms.  The fit pass and the scorers operate on flat contiguous arrays keyed
by *document position* (the row number in the index's insertion order):
postings come out of :meth:`repro.search.index.InvertedIndex.posting_arrays`
as integer-position buffers, weights live in dense ``float64`` arrays, and
scoring accumulates into a preallocated per-position vector instead of a
``doc_id -> float`` dict.  Document-id strings only appear at the very edge,
when results above the caller's threshold are materialized.

The model tracks the index :attr:`~repro.search.index.InvertedIndex.revision`
it fitted at and refits automatically when the index has grown, which keeps
the precomputed vectors exact rather than approximate.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.search.index import InvertedIndex
from repro.search.text import tokenize


class TfIdfModel:
    """TF-IDF scorer bound to an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index
        self._doc_ids: tuple[str, ...] = ()
        self._doc_positions: dict[str, int] = {}
        self._idf: dict[str, float] = {}
        self._default_idf = 0.0
        # token -> dense arrays of document positions / tf-idf weights, in
        # posting order.  Positions index into ``_doc_ids`` and ``_norms``.
        self._posting_positions: dict[str, np.ndarray] = {}
        self._posting_weights: dict[str, np.ndarray] = {}
        self._norms: np.ndarray = np.zeros(0)
        self._fitted_revision: int | None = None

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index."""
        return self._index

    # -- weighting -----------------------------------------------------------

    def inverse_document_frequency(self, token: str) -> float:
        """Smoothed IDF of a token; unseen tokens get the maximum IDF."""
        total = len(self._index)
        if total == 0:
            return 0.0
        if self._fitted_revision == self._index.revision:
            return self._idf.get(token, self._default_idf)
        frequency = self._index.document_frequency(token)
        return math.log((total + 1) / (frequency + 1)) + 1.0

    def document_norm(self, doc_id: str) -> float:
        """Euclidean norm of a document's weighted vector (cached).

        A never-fitted model raises :class:`KeyError`; a fitted model whose
        index has since grown refits first, like every other accessor.
        """
        if self._fitted_revision is not None:
            self._ensure_current()
        position = self._doc_positions.get(doc_id)
        if position is None:
            raise KeyError(
                f"norm not computed for document {doc_id!r}; call fit() first"
            )
        return float(self._norms[position])

    def fit(self) -> "TfIdfModel":
        """Precompute IDF weights, weighted postings, and document norms.

        One vectorized pass over the positional posting buffers fills three
        tables:

        * ``token -> IDF`` (plus the default IDF for unseen tokens),
        * ``token -> (position array, tf-idf weight array)`` for scoring,
        * the dense per-position norm vector for cosine normalization.
        """
        index = self._index
        total = len(index)
        doc_ids = index.document_ids()
        self._doc_ids = doc_ids
        self._doc_positions = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        self._default_idf = math.log((total + 1) / 1) + 1.0 if total else 0.0
        squares = np.zeros(total)
        idf_table: dict[str, float] = {}
        posting_positions: dict[str, np.ndarray] = {}
        posting_weights: dict[str, np.ndarray] = {}
        log = math.log
        for token in index.tokens():
            raw_positions, raw_frequencies = index.posting_arrays(token)
            if total:
                idf = log((total + 1) / (len(raw_positions) + 1)) + 1.0
            else:  # pragma: no cover - an empty index has no tokens
                idf = 0.0
            idf_table[token] = idf
            # np.array copies out of the ``array`` buffers, so later
            # ``add_document`` appends never race against exported views.
            positions = np.array(raw_positions, dtype=np.intp)
            frequencies = np.array(raw_frequencies, dtype=np.float64)
            weights = (1.0 + np.log(frequencies)) * idf
            squares[positions] += weights * weights
            posting_positions[token] = positions
            posting_weights[token] = weights
        self._idf = idf_table
        self._posting_positions = posting_positions
        self._posting_weights = posting_weights
        self._norms = np.sqrt(np.where(squares > 0.0, squares, 1.0))
        self._fitted_revision = index.revision
        return self

    def _ensure_current(self) -> None:
        """Refit if the index has changed since the last :meth:`fit`."""
        if self._fitted_revision != self._index.revision:
            self.fit()

    def document_count(self) -> int:
        """Number of documents the fitted tables cover."""
        self._ensure_current()
        return len(self._doc_ids)

    def posting_doc_ids(self, token: str) -> tuple[str, ...]:
        """Document ids containing a token, in posting order (precomputed)."""
        self._ensure_current()
        positions = self._posting_positions.get(token)
        if positions is None:
            return ()
        doc_ids = self._doc_ids
        return tuple(doc_ids[position] for position in positions.tolist())

    def posting_positions(self, token: str) -> np.ndarray | None:
        """Dense document-position array of a token (``None`` if unseen)."""
        self._ensure_current()
        return self._posting_positions.get(token)

    def doc_id_at(self, position: int) -> str:
        """The document id at one insertion-order position."""
        self._ensure_current()
        return self._doc_ids[position]

    def weighted_postings(self, token: str) -> tuple[tuple[str, float], ...]:
        """Precomputed ``(doc_id, tf-idf weight)`` postings for a token."""
        self._ensure_current()
        positions = self._posting_positions.get(token)
        if positions is None:
            return ()
        doc_ids = self._doc_ids
        weights = self._posting_weights[token]
        return tuple(
            (doc_ids[position], float(weight))
            for position, weight in zip(positions.tolist(), weights.tolist())
        )

    # -- scoring ---------------------------------------------------------------

    def query_vector(self, text: str) -> dict[str, float]:
        """The IDF-weighted query vector for a text."""
        self._ensure_current()
        counts = Counter(tokenize(text))
        if not len(self._index):
            return {token: 0.0 for token in counts}
        idf_table = self._idf
        default_idf = self._default_idf
        return {
            token: (1.0 + math.log(frequency)) * idf_table.get(token, default_idf)
            for token, frequency in counts.items()
        }

    def score(self, text: str, min_score: float = 0.0) -> list[tuple[str, float]]:
        """Cosine scores of all candidate documents for a query text.

        Returns ``(doc_id, score)`` pairs sorted by descending score, then by
        doc id for determinism.  Documents sharing no token with the query are
        never returned.  The dot products accumulate into one dense
        per-position vector, so candidate sets cost no per-document dict ops.
        """
        self._ensure_current()
        query = self.query_vector(text)
        if not query:
            return []
        query_norm = math.sqrt(sum(weight * weight for weight in query.values()))
        if query_norm == 0.0:
            return []
        dots = np.zeros(len(self._doc_ids))
        posting_positions = self._posting_positions
        posting_weights = self._posting_weights
        for token, query_weight in query.items():
            positions = posting_positions.get(token)
            if positions is None:
                continue
            dots[positions] += posting_weights[token] * query_weight
        touched = np.nonzero(dots)[0]
        if touched.size == 0:
            return []
        values = dots[touched] / (self._norms[touched] * query_norm)
        keep = values > min_score
        doc_ids = self._doc_ids
        scores = [
            (doc_ids[position], value)
            for position, value in zip(touched[keep].tolist(), values[keep].tolist())
        ]
        scores.sort(key=lambda pair: (-pair[1], pair[0]))
        return scores

    def coverage(
        self, text: str, min_fraction: float | None = None
    ) -> list[tuple[str, float]]:
        """Query-coverage fractions: covered IDF mass per candidate document.

        For each document sharing at least one token with the query, returns
        the fraction of the query's total IDF mass found in that document
        (the engine's attack-pattern/weakness scorer).  ``min_fraction``
        filters inside the dense accumulator, before any per-document objects
        are materialized.
        """
        self._ensure_current()
        query = self.query_vector(text)
        if not query:
            return []
        total_mass = sum(query.values())
        if total_mass == 0.0:
            return []
        covered = np.zeros(len(self._doc_ids))
        posting_positions = self._posting_positions
        for token, mass in query.items():
            positions = posting_positions.get(token)
            if positions is None:
                continue
            covered[positions] += mass
        touched = np.nonzero(covered)[0]
        if touched.size == 0:
            return []
        fractions = covered[touched] / total_mass
        if min_fraction is not None:
            keep = fractions >= min_fraction
            touched = touched[keep]
            fractions = fractions[keep]
        doc_ids = self._doc_ids
        return [
            (doc_ids[position], fraction)
            for position, fraction in zip(touched.tolist(), fractions.tolist())
        ]

"""TF-IDF weighting and cosine scoring over the inverted index.

Queries (component attributes) are short and records are short paragraphs, so
classic lnc.ltc-style TF-IDF with cosine normalization is both adequate and
easy to reason about; the ablation benchmark compares it against plain token
overlap (Jaccard) to justify the choice.

:meth:`TfIdfModel.fit` precomputes everything that depends only on the corpus
-- the per-token IDF table, the IDF-weighted posting lists, and the document
norms -- so that scoring a query never recomputes IDF per candidate.  The
model tracks the index :attr:`~repro.search.index.InvertedIndex.revision` it
fitted at and refits automatically when the index has grown, which keeps the
precomputed vectors exact rather than approximate.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.search.index import InvertedIndex
from repro.search.text import tokenize


class TfIdfModel:
    """TF-IDF scorer bound to an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index
        self._norms: dict[str, float] = {}
        self._idf: dict[str, float] = {}
        self._default_idf = 0.0
        self._weighted_postings: dict[str, tuple[tuple[str, float], ...]] = {}
        self._posting_doc_ids: dict[str, tuple[str, ...]] = {}
        self._fitted_revision: int | None = None

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index."""
        return self._index

    # -- weighting -----------------------------------------------------------

    def inverse_document_frequency(self, token: str) -> float:
        """Smoothed IDF of a token; unseen tokens get the maximum IDF."""
        total = len(self._index)
        if total == 0:
            return 0.0
        if self._fitted_revision == self._index.revision:
            return self._idf.get(token, self._default_idf)
        frequency = self._index.document_frequency(token)
        return math.log((total + 1) / (frequency + 1)) + 1.0

    def _document_weight(self, term_frequency: int) -> float:
        return 1.0 + math.log(term_frequency) if term_frequency > 0 else 0.0

    def document_norm(self, doc_id: str) -> float:
        """Euclidean norm of a document's weighted vector (cached).

        A never-fitted model raises :class:`KeyError`; a fitted model whose
        index has since grown refits first, like every other accessor.
        """
        if self._fitted_revision is not None:
            self._ensure_current()
        if doc_id not in self._norms:
            raise KeyError(
                f"norm not computed for document {doc_id!r}; call fit() first"
            )
        return self._norms[doc_id]

    def fit(self) -> "TfIdfModel":
        """Precompute IDF weights, weighted postings, and document norms.

        One pass over the postings fills three tables:

        * ``token -> IDF`` (plus the default IDF for unseen tokens),
        * ``token -> ((doc_id, tf-idf weight), ...)`` for cosine scoring,
        * ``doc_id -> norm`` for cosine normalization.
        """
        total = len(self._index)
        self._default_idf = math.log((total + 1) / 1) + 1.0 if total else 0.0
        squares: dict[str, float] = {doc_id: 0.0 for doc_id in self._index.document_ids()}
        idf_table: dict[str, float] = {}
        weighted: dict[str, tuple[tuple[str, float], ...]] = {}
        doc_ids_table: dict[str, tuple[str, ...]] = {}
        for token in self._index.tokens():
            doc_ids, frequencies = self._index.posting_arrays(token)
            if total:
                idf = math.log((total + 1) / (len(doc_ids) + 1)) + 1.0
            else:  # pragma: no cover - an empty index has no tokens
                idf = 0.0
            idf_table[token] = idf
            row = []
            for doc_id, term_frequency in zip(doc_ids, frequencies):
                weight = self._document_weight(term_frequency) * idf
                squares[doc_id] += weight * weight
                row.append((doc_id, weight))
            weighted[token] = tuple(row)
            doc_ids_table[token] = tuple(doc_ids)
        self._idf = idf_table
        self._weighted_postings = weighted
        self._posting_doc_ids = doc_ids_table
        self._norms = {
            doc_id: math.sqrt(value) if value > 0 else 1.0
            for doc_id, value in squares.items()
        }
        self._fitted_revision = self._index.revision
        return self

    def _ensure_current(self) -> None:
        """Refit if the index has changed since the last :meth:`fit`."""
        if self._fitted_revision != self._index.revision:
            self.fit()

    def posting_doc_ids(self, token: str) -> tuple[str, ...]:
        """Document ids containing a token, in posting order (precomputed)."""
        self._ensure_current()
        return self._posting_doc_ids.get(token, ())

    def weighted_postings(self, token: str) -> tuple[tuple[str, float], ...]:
        """Precomputed ``(doc_id, tf-idf weight)`` postings for a token."""
        self._ensure_current()
        return self._weighted_postings.get(token, ())

    # -- scoring ---------------------------------------------------------------

    def query_vector(self, text: str) -> dict[str, float]:
        """The IDF-weighted query vector for a text."""
        self._ensure_current()
        counts = Counter(tokenize(text))
        if not len(self._index):
            return {token: 0.0 for token in counts}
        idf_table = self._idf
        default_idf = self._default_idf
        return {
            token: (1.0 + math.log(frequency)) * idf_table.get(token, default_idf)
            for token, frequency in counts.items()
        }

    def score(self, text: str, min_score: float = 0.0) -> list[tuple[str, float]]:
        """Cosine scores of all candidate documents for a query text.

        Returns ``(doc_id, score)`` pairs sorted by descending score, then by
        doc id for determinism.  Documents sharing no token with the query are
        never returned.
        """
        self._ensure_current()
        query = self.query_vector(text)
        if not query:
            return []
        query_norm = math.sqrt(sum(weight * weight for weight in query.values()))
        if query_norm == 0.0:
            return []
        dots: dict[str, float] = {}
        weighted_postings = self._weighted_postings
        for token in set(query):
            query_weight = query[token]
            for doc_id, doc_weight in weighted_postings.get(token, ()):
                dots[doc_id] = dots.get(doc_id, 0.0) + doc_weight * query_weight
        norms = self._norms
        scores: list[tuple[str, float]] = []
        for doc_id, dot in dots.items():
            score = dot / (norms[doc_id] * query_norm)
            if score > min_score:
                scores.append((doc_id, score))
        scores.sort(key=lambda pair: (-pair[1], pair[0]))
        return scores

"""TF-IDF weighting and cosine scoring over the inverted index.

Queries (component attributes) are short and records are short paragraphs, so
classic lnc.ltc-style TF-IDF with cosine normalization is both adequate and
easy to reason about; the ablation benchmark compares it against plain token
overlap (Jaccard) to justify the choice.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable

from repro.search.index import InvertedIndex
from repro.search.text import tokenize


class TfIdfModel:
    """TF-IDF scorer bound to an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index
        self._norms: dict[str, float] = {}

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index."""
        return self._index

    # -- weighting -----------------------------------------------------------

    def inverse_document_frequency(self, token: str) -> float:
        """Smoothed IDF of a token; unseen tokens get the maximum IDF."""
        total = len(self._index)
        if total == 0:
            return 0.0
        frequency = self._index.document_frequency(token)
        return math.log((total + 1) / (frequency + 1)) + 1.0

    def _document_weight(self, term_frequency: int) -> float:
        return 1.0 + math.log(term_frequency) if term_frequency > 0 else 0.0

    def document_norm(self, doc_id: str) -> float:
        """Euclidean norm of a document's weighted vector (cached)."""
        if doc_id not in self._norms:
            raise KeyError(
                f"norm not computed for document {doc_id!r}; call fit() first"
            )
        return self._norms[doc_id]

    def fit(self) -> "TfIdfModel":
        """Precompute document norms for cosine normalization."""
        squares: dict[str, float] = {doc_id: 0.0 for doc_id in self._index.document_ids()}
        for doc_id in squares:
            squares[doc_id] = 0.0
        # Accumulate per-token contributions by walking the postings once.
        for token in self._all_tokens():
            idf = self.inverse_document_frequency(token)
            for posting in self._index.postings(token):
                weight = self._document_weight(posting.term_frequency) * idf
                squares[posting.doc_id] += weight * weight
        self._norms = {
            doc_id: math.sqrt(value) if value > 0 else 1.0
            for doc_id, value in squares.items()
        }
        return self

    def _all_tokens(self) -> Iterable[str]:
        # The index does not expose its token table directly; reconstruct it
        # from the documents' candidate sets is wasteful, so we reach into the
        # internal postings mapping deliberately (single-package coupling).
        return self._index._postings.keys()  # noqa: SLF001

    # -- scoring ---------------------------------------------------------------

    def query_vector(self, text: str) -> dict[str, float]:
        """The IDF-weighted query vector for a text."""
        counts = Counter(tokenize(text))
        vector = {}
        for token, frequency in counts.items():
            weight = (1.0 + math.log(frequency)) * self.inverse_document_frequency(token)
            vector[token] = weight
        return vector

    def score(self, text: str, min_score: float = 0.0) -> list[tuple[str, float]]:
        """Cosine scores of all candidate documents for a query text.

        Returns ``(doc_id, score)`` pairs sorted by descending score, then by
        doc id for determinism.  Documents sharing no token with the query are
        never returned.
        """
        if not self._norms and len(self._index):
            self.fit()
        query = self.query_vector(text)
        if not query:
            return []
        query_norm = math.sqrt(sum(weight * weight for weight in query.values()))
        if query_norm == 0.0:
            return []
        candidates = self._index.candidates(query.keys())
        scores: list[tuple[str, float]] = []
        for doc_id, token_counts in candidates.items():
            dot = 0.0
            for token, term_frequency in token_counts.items():
                idf = self.inverse_document_frequency(token)
                doc_weight = self._document_weight(term_frequency) * idf
                dot += doc_weight * query[token]
            score = dot / (self.document_norm(doc_id) * query_norm)
            if score > min_score:
                scores.append((doc_id, score))
        scores.sort(key=lambda pair: (-pair[1], pair[0]))
        return scores

"""TF-IDF weighting and cosine scoring over the inverted index.

Queries (component attributes) are short and records are short paragraphs, so
classic lnc.ltc-style TF-IDF with cosine normalization is both adequate and
easy to reason about; the ablation benchmark compares it against plain token
overlap (Jaccard) to justify the choice.

:meth:`TfIdfModel.fit` precomputes everything that depends only on the corpus
-- the per-token IDF table, the IDF-weighted posting lists, and the document
norms.  The fit pass and the scorers operate on flat contiguous arrays keyed
by *document position* (the row number in the index's insertion order):
postings come out of :meth:`repro.search.index.InvertedIndex.posting_arrays`
as integer-position buffers, weights live in dense ``float64`` arrays, and
scoring accumulates into a preallocated per-position vector instead of a
``doc_id -> float`` dict.  Document-id strings only appear at the very edge,
when results above the caller's threshold are materialized.

The model tracks the index :attr:`~repro.search.index.InvertedIndex.revision`
it fitted at and refits automatically when the index has grown, which keeps
the precomputed vectors exact rather than approximate.  A refit after an
append-only extension reuses the position and log-TF arrays of every token
whose posting list did not grow -- only the IDF scalars (which depend on the
total document count) and the per-token weight products are recomputed, so
refitting after a small delta costs far less than the original fit.

With a :class:`repro.search.sharding.ShardMap` attached, the scorers also
prune at shard granularity: postings are additionally split per shard, and a
query whose tokens only appear in a few shards accumulates into small
per-shard vectors instead of one dense corpus-wide vector.  Pruning is exact
-- every (token, document) product is identical and applied in the same
order, so the pruned path is bit-identical to the monolithic one (the
sharding equivalence tests pin this).
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.search.index import InvertedIndex
from repro.search.sharding import ShardMap
from repro.search.text import tokenize

#: Fraction of a kind's documents that must be prunable (sit in shards the
#: query vocabulary cannot touch) before the per-shard path replaces the
#: dense accumulator.  The token-level inverted index already restricts the
#: accumulation to query-token postings, so what shard pruning saves is the
#: dense allocate-and-scan over the whole document table -- a win only when
#: the active shards are a small slice of it.  Below the threshold, one
#: vectorized pass over a big array beats many small per-shard passes; the
#: threshold changes speed, never results.
PRUNE_MIN_FRACTION = 0.75


class TfIdfModel:
    """TF-IDF scorer bound to an :class:`InvertedIndex`.

    Parameters
    ----------
    index:
        The inverted index to score over.
    shard_map:
        Optional :class:`~repro.search.sharding.ShardMap` covering the
        index's documents; enables shard-level candidate pruning.  A map
        whose assignment count does not match the index (e.g. documents were
        added without extending the map) silently disables pruning -- speed
        changes, results never do.
    stats:
        Optional stats sink with a thread-safe ``bump(name, amount)`` method
        (:class:`repro.search.engine.EngineStats`); receives
        ``shards_skipped`` / ``candidates_pruned`` increments from the
        pruned scoring path.
    """

    def __init__(
        self,
        index: InvertedIndex,
        *,
        shard_map: ShardMap | None = None,
        stats=None,
    ) -> None:
        self._index = index
        self._shard_map = shard_map
        self._stats = stats
        self._doc_ids: tuple[str, ...] = ()
        self._doc_positions: dict[str, int] = {}
        self._idf: dict[str, float] = {}
        self._default_idf = 0.0
        # token -> dense arrays of document positions / tf-idf weights, in
        # posting order.  Positions index into ``_doc_ids`` and ``_norms``.
        self._posting_positions: dict[str, np.ndarray] = {}
        self._posting_weights: dict[str, np.ndarray] = {}
        # token -> (1 + log tf) array, cached so a refit after an append-only
        # extension can rebuild weights with a scalar multiply instead of
        # re-copying and re-logging the raw frequency buffers.
        self._posting_logtf: dict[str, np.ndarray] = {}
        self._norms: np.ndarray = np.zeros(0)
        self._fitted_revision: int | None = None
        # Sharding tables (built by fit() when a usable shard map is
        # attached; None disables the pruned path entirely).
        self._shard_positions: list[np.ndarray] | None = None
        self._shard_postings: dict[str, dict[int, tuple[np.ndarray, np.ndarray]]] = {}
        # token -> int bitmask of the shards holding the token (bit i set =>
        # shard i has postings).  One dict get + int OR per query token makes
        # the activation probe nearly free on queries that end up dense.
        self._shard_masks: dict[str, int] = {}
        self._shard_sizes: list[int] = []
        self._full_shard_mask = 0
        self._prune_min_docs = 1
        self._shard_assignments: np.ndarray | None = None
        self._shard_local_of: np.ndarray | None = None

    @property
    def index(self) -> InvertedIndex:
        """The underlying inverted index."""
        return self._index

    # -- weighting -----------------------------------------------------------

    def inverse_document_frequency(self, token: str) -> float:
        """Smoothed IDF of a token; unseen tokens get the maximum IDF."""
        total = len(self._index)
        if total == 0:
            return 0.0
        if self._fitted_revision == self._index.revision:
            return self._idf.get(token, self._default_idf)
        frequency = self._index.document_frequency(token)
        return math.log((total + 1) / (frequency + 1)) + 1.0

    def document_norm(self, doc_id: str) -> float:
        """Euclidean norm of a document's weighted vector (cached).

        A never-fitted model raises :class:`KeyError`; a fitted model whose
        index has since grown refits first, like every other accessor.
        """
        if self._fitted_revision is not None:
            self._ensure_current()
        position = self._doc_positions.get(doc_id)
        if position is None:
            raise KeyError(
                f"norm not computed for document {doc_id!r}; call fit() first"
            )
        return float(self._norms[position])

    def fit(self) -> "TfIdfModel":
        """Precompute IDF weights, weighted postings, and document norms.

        One vectorized pass over the positional posting buffers fills three
        tables:

        * ``token -> IDF`` (plus the default IDF for unseen tokens),
        * ``token -> (position array, tf-idf weight array)`` for scoring,
        * the dense per-position norm vector for cosine normalization.

        A refit over an index that *grew* (append-only, so the previous
        document prefix is unchanged) reuses the cached position and log-TF
        arrays of every token whose posting list did not grow; the IDF
        scalars -- which depend on the total document count, hence change
        for every token on any growth -- and the weight products are always
        recomputed, which is what keeps the refit exact.
        """
        index = self._index
        total = len(index)
        doc_ids = index.document_ids()
        # The previous fit's tables are reusable only for an append-only
        # extension of what was fitted before (the document prefix must be
        # unchanged -- InvertedIndex only ever appends).
        previous_positions = self._posting_positions
        previous_logtf = self._posting_logtf
        reusable = (
            self._fitted_revision is not None
            and len(self._doc_ids) <= total
            and doc_ids[: len(self._doc_ids)] == self._doc_ids
        )
        self._doc_ids = doc_ids
        self._doc_positions = {doc_id: i for i, doc_id in enumerate(doc_ids)}
        self._default_idf = math.log((total + 1) / 1) + 1.0 if total else 0.0
        squares = np.zeros(total)
        idf_table: dict[str, float] = {}
        posting_positions: dict[str, np.ndarray] = {}
        posting_weights: dict[str, np.ndarray] = {}
        posting_logtf: dict[str, np.ndarray] = {}
        log = math.log
        for token in index.tokens():
            raw_positions, raw_frequencies = index.posting_arrays(token)
            if total:
                idf = log((total + 1) / (len(raw_positions) + 1)) + 1.0
            else:  # pragma: no cover - an empty index has no tokens
                idf = 0.0
            idf_table[token] = idf
            positions = previous_positions.get(token) if reusable else None
            if positions is not None and len(positions) == len(raw_positions):
                logtf = previous_logtf[token]
            else:
                # np.array copies out of the ``array`` buffers, so later
                # ``add_document`` appends never race against exported views.
                positions = np.array(raw_positions, dtype=np.intp)
                logtf = 1.0 + np.log(np.array(raw_frequencies, dtype=np.float64))
            weights = logtf * idf
            squares[positions] += weights * weights
            posting_positions[token] = positions
            posting_weights[token] = weights
            posting_logtf[token] = logtf
        self._idf = idf_table
        self._posting_positions = posting_positions
        self._posting_weights = posting_weights
        self._posting_logtf = posting_logtf
        self._norms = np.sqrt(np.where(squares > 0.0, squares, 1.0))
        self._fit_shards(total)
        self._fitted_revision = index.revision
        return self

    def _fit_shards(self, total: int) -> None:
        """Build the shard pruning tables (or disable pruning).

        Records each shard's global positions, a global-to-shard-local
        position remap, and -- in one vectorized ``bitwise_or.reduceat``
        pass -- the per-token shard bitmask the activation probe reads.  The
        per-token posting *splits* (what the pruned accumulator iterates)
        are not built here: they materialize lazily, per token, the first
        time a pruned query touches the token (see :meth:`_shard_entry`), so
        the fit pass stays a fraction of the monolithic fit cost instead of
        re-walking every posting list.
        """
        shard_map = self._shard_map
        if (
            shard_map is None
            or not 1 < len(shard_map) <= 63  # bitmask must fit an int64 lane
            or len(shard_map.assignments) != total
        ):
            self._shard_positions = None
            self._shard_postings = {}
            self._shard_masks = {}
            return
        assignments = np.array(shard_map.assignments, dtype=np.intp)
        shard_positions = [
            np.flatnonzero(assignments == shard) for shard in range(len(shard_map))
        ]
        self._prune_min_docs = max(1, int(total * PRUNE_MIN_FRACTION))
        local_of = np.empty(total, dtype=np.intp)
        for positions in shard_positions:
            local_of[positions] = np.arange(len(positions), dtype=np.intp)
        tokens = list(self._posting_positions)
        position_arrays = [self._posting_positions[token] for token in tokens]
        if position_arrays:
            counts = np.fromiter(
                (len(positions) for positions in position_arrays),
                dtype=np.intp,
                count=len(tokens),
            )
            offsets = np.zeros(len(tokens), dtype=np.intp)
            np.cumsum(counts[:-1], out=offsets[1:])
            bits = np.left_shift(1, assignments[np.concatenate(position_arrays)])
            masks = np.bitwise_or.reduceat(bits, offsets)
            shard_masks = dict(zip(tokens, masks.tolist()))
        else:  # pragma: no cover - an empty index has no tokens
            shard_masks = {}
        self._shard_assignments = assignments
        self._shard_local_of = local_of
        self._shard_positions = shard_positions
        self._shard_postings = {}
        self._shard_masks = shard_masks
        self._shard_sizes = [len(positions) for positions in shard_positions]
        self._full_shard_mask = (1 << len(shard_positions)) - 1

    def _shard_entry(self, token: str) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """The token's per-shard (local positions, weights) split, memoized.

        Built on first use by a pruned query and cached until the next
        refit.  Within a shard, posting order (increasing global position)
        is preserved -- the invariant the bit-identity argument rests on.
        Concurrent first builds under the parallel fan-out are benign: both
        threads compute identical content and the last dict write wins.
        """
        entry = self._shard_postings.get(token)
        if entry is not None:
            return entry
        positions = self._posting_positions[token]
        weights = self._posting_weights[token]
        local_of = self._shard_local_of
        mask = self._shard_masks[token]
        if mask & (mask - 1) == 0:
            # Single-shard token (the common case for platform-specific
            # vocabulary): reuse the weight array, remap positions only.
            entry = {mask.bit_length() - 1: (local_of[positions], weights)}
        else:
            shard_ids = self._shard_assignments[positions]
            order = np.argsort(shard_ids, kind="stable")
            sorted_ids = shard_ids[order]
            boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
            entry = {}
            for chunk in np.split(order, boundaries):
                entry[int(shard_ids[chunk[0]])] = (
                    local_of[positions[chunk]],
                    weights[chunk],
                )
        self._shard_postings[token] = entry
        return entry

    def _ensure_current(self) -> None:
        """Refit if the index has changed since the last :meth:`fit`."""
        if self._fitted_revision != self._index.revision:
            self.fit()

    def document_count(self) -> int:
        """Number of documents the fitted tables cover."""
        self._ensure_current()
        return len(self._doc_ids)

    def posting_doc_ids(self, token: str) -> tuple[str, ...]:
        """Document ids containing a token, in posting order (precomputed)."""
        self._ensure_current()
        positions = self._posting_positions.get(token)
        if positions is None:
            return ()
        doc_ids = self._doc_ids
        return tuple(doc_ids[position] for position in positions.tolist())

    def posting_positions(self, token: str) -> np.ndarray | None:
        """Dense document-position array of a token (``None`` if unseen)."""
        self._ensure_current()
        return self._posting_positions.get(token)

    def doc_id_at(self, position: int) -> str:
        """The document id at one insertion-order position."""
        self._ensure_current()
        return self._doc_ids[position]

    def weighted_postings(self, token: str) -> tuple[tuple[str, float], ...]:
        """Precomputed ``(doc_id, tf-idf weight)`` postings for a token."""
        self._ensure_current()
        positions = self._posting_positions.get(token)
        if positions is None:
            return ()
        doc_ids = self._doc_ids
        weights = self._posting_weights[token]
        return tuple(
            (doc_ids[position], float(weight))
            for position, weight in zip(positions.tolist(), weights.tolist())
        )

    # -- scoring ---------------------------------------------------------------

    def query_vector(self, text: str) -> dict[str, float]:
        """The IDF-weighted query vector for a text."""
        self._ensure_current()
        counts = Counter(tokenize(text))
        if not len(self._index):
            return {token: 0.0 for token in counts}
        idf_table = self._idf
        default_idf = self._default_idf
        return {
            token: (1.0 + math.log(frequency)) * idf_table.get(token, default_idf)
            for token, frequency in counts.items()
        }

    def _active_shards(self, query) -> list[int] | None:
        """Shards whose vocabulary intersects the query, if pruning pays.

        Returns ``None`` when sharding is off, every shard is active, or the
        prunable document count is below :data:`PRUNE_MIN_FRACTION` of the
        index (one vectorized dense pass then beats many small per-shard
        passes).  Otherwise returns the active shard ids in increasing order
        and reports the skipped shard / pruned candidate counts to the stats
        sink.  The decision changes speed only -- both paths produce
        bit-identical results.
        """
        shard_positions = self._shard_positions
        if shard_positions is None:
            return None
        masks = self._shard_masks
        full = self._full_shard_mask
        mask = 0
        for token in query:
            token_mask = masks.get(token)
            if token_mask is not None:
                mask |= token_mask
                if mask == full:
                    return None
        if mask == 0:
            return []
        sizes = self._shard_sizes
        active: list[int] = []
        active_docs = 0
        remaining = mask
        while remaining:
            lowest = remaining & -remaining
            shard = lowest.bit_length() - 1
            active.append(shard)
            active_docs += sizes[shard]
            remaining ^= lowest
        pruned = len(self._doc_ids) - active_docs
        if pruned < self._prune_min_docs:
            return None
        stats = self._stats
        if stats is not None:
            stats.bump("shards_skipped", len(sizes) - len(active))
            stats.bump("candidates_pruned", pruned)
        return active

    def _accumulate_pruned(
        self, query, active: list[int], weighted: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Accumulate per-shard and merge back to global insertion order.

        With ``weighted`` true each posting adds its tf-idf weight times the
        query weight (cosine); otherwise each posting adds the query token's
        scalar mass (coverage).  Every (token, document) contribution is the
        exact float the monolithic accumulator would add, applied in the
        same query-token order, and the merged output is re-sorted by global
        position -- so the result is bit-identical to the dense path,
        element for element.
        """
        shard_positions = self._shard_positions
        accumulators = {
            shard: np.zeros(len(shard_positions[shard])) for shard in active
        }
        masks = self._shard_masks
        # Token-major iteration touches exactly the (token, shard) pairs that
        # hold postings; every shard seen here is active by construction
        # (active is the union of the query tokens' shard sets).
        for token, query_value in query.items():
            if token not in masks:
                continue
            entry = self._shard_entry(token)
            if weighted:
                for shard, (local_positions, weights) in entry.items():
                    accumulators[shard][local_positions] += weights * query_value
            else:
                for shard, (local_positions, _weights) in entry.items():
                    accumulators[shard][local_positions] += query_value
        out_positions: list[np.ndarray] = []
        out_values: list[np.ndarray] = []
        for shard in active:
            accumulator = accumulators[shard]
            touched = np.nonzero(accumulator)[0]
            if touched.size:
                out_positions.append(shard_positions[shard][touched])
                out_values.append(accumulator[touched])
        if not out_positions:
            return np.zeros(0, dtype=np.intp), np.zeros(0)
        positions = np.concatenate(out_positions)
        values = np.concatenate(out_values)
        order = np.argsort(positions)
        return positions[order], values[order]

    def score(self, text: str, min_score: float = 0.0) -> list[tuple[str, float]]:
        """Cosine scores of all candidate documents for a query text.

        Returns ``(doc_id, score)`` pairs sorted by descending score, then by
        doc id for determinism.  Documents sharing no token with the query are
        never returned.  The dot products accumulate into one dense
        per-position vector -- or, when a shard map is attached and the query
        vocabulary misses whole shards, into compact per-shard vectors that
        merge to the identical result.
        """
        self._ensure_current()
        query = self.query_vector(text)
        if not query:
            return []
        query_norm = math.sqrt(sum(weight * weight for weight in query.values()))
        if query_norm == 0.0:
            return []
        active = self._active_shards(query)
        if active is not None:
            if not active:
                return []
            touched, dot_values = self._accumulate_pruned(query, active, True)
            if touched.size == 0:
                return []
            values = dot_values / (self._norms[touched] * query_norm)
        else:
            dots = np.zeros(len(self._doc_ids))
            posting_positions = self._posting_positions
            posting_weights = self._posting_weights
            for token, query_weight in query.items():
                positions = posting_positions.get(token)
                if positions is None:
                    continue
                dots[positions] += posting_weights[token] * query_weight
            touched = np.nonzero(dots)[0]
            if touched.size == 0:
                return []
            values = dots[touched] / (self._norms[touched] * query_norm)
        keep = values > min_score
        doc_ids = self._doc_ids
        scores = [
            (doc_ids[position], value)
            for position, value in zip(touched[keep].tolist(), values[keep].tolist())
        ]
        scores.sort(key=lambda pair: (-pair[1], pair[0]))
        return scores

    def coverage(
        self, text: str, min_fraction: float | None = None
    ) -> list[tuple[str, float]]:
        """Query-coverage fractions: covered IDF mass per candidate document.

        For each document sharing at least one token with the query, returns
        the fraction of the query's total IDF mass found in that document
        (the engine's attack-pattern/weakness scorer).  ``min_fraction``
        filters inside the dense accumulator, before any per-document objects
        are materialized.
        """
        self._ensure_current()
        query = self.query_vector(text)
        if not query:
            return []
        total_mass = sum(query.values())
        if total_mass == 0.0:
            return []
        active = self._active_shards(query)
        if active is not None:
            if not active:
                return []
            # The coverage accumulator adds the query token's scalar mass to
            # every posting; broadcasting the scalar over a shard's postings
            # adds the identical float the dense path adds.
            touched, covered_values = self._accumulate_pruned(query, active, False)
            if touched.size == 0:
                return []
            fractions = covered_values / total_mass
        else:
            covered = np.zeros(len(self._doc_ids))
            posting_positions = self._posting_positions
            for token, mass in query.items():
                positions = posting_positions.get(token)
                if positions is None:
                    continue
                covered[positions] += mass
            touched = np.nonzero(covered)[0]
            if touched.size == 0:
                return []
            fractions = covered[touched] / total_mass
        if min_fraction is not None:
            keep = fractions >= min_fraction
            touched = touched[keep]
            fractions = fractions[keep]
        doc_ids = self._doc_ids
        return [
            (doc_ids[position], fraction)
            for position, fraction in zip(touched.tolist(), fractions.tolist())
        ]

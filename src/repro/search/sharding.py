"""Platform/theme-derived sharding of the per-kind record populations.

The per-kind inverted indexes are monoliths: every query allocates a dense
accumulator over *all* records of the kind and scans it for candidates, even
though a typical component attribute ("Windows 7", "MODBUS TCP") can only
ever match records from a handful of platform or theme populations.  A
:class:`ShardMap` partitions the records of one kind by a shard key derived
from the corpus structure itself:

* vulnerabilities shard by their first CPE-like platform tag (``cisco asa``,
  ``microsoft windows 7``, ...),
* weaknesses shard by their first platform class (the synthesis themes:
  ``windows``, ``linux``, ``web``, ...),
* attack patterns shard by their first attack domain.

The map is *advisory*: it never changes which records exist or how they
score, only how the TF-IDF scorers lay out their accumulators.  A per-shard
vocabulary set lets :meth:`repro.search.tfidf.TfIdfModel.score` /
:meth:`~repro.search.tfidf.TfIdfModel.coverage` skip whole shards whose
vocabulary cannot intersect the query -- candidate pruning *beyond* the
token-level inverted index -- while remaining bit-identical to the
monolithic path (the sharding equivalence tests pin this).

Shard count is bounded by ``max_shards``: the largest key populations keep
their own shard and the long tail pools into one overflow shard, so a corpus
with thousands of distinct platform tags cannot degrade scoring into a
python-level loop over thousands of tiny shards.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.corpus.schema import AttackVectorRecord, Vulnerability, Weakness

#: Default bound on shards per record kind (see module docstring).
DEFAULT_MAX_SHARDS = 16

#: Key of the pooled overflow shard (records whose key did not earn its own
#: shard, and records with no platform/theme/domain tags at all).
OTHER_SHARD = "*other*"


def shard_key_for_record(record: AttackVectorRecord) -> str:
    """The platform/theme-derived shard key of one record.

    Uses the first structured tag of the record -- platform for CVEs,
    platform class for CWEs, attack domain for CAPECs -- lowercased for
    stability.  Records with no tags fall into the overflow shard.
    """
    if isinstance(record, Vulnerability):
        tags: Sequence[str] = record.affected_platforms
    elif isinstance(record, Weakness):
        tags = record.platforms
    else:
        tags = record.domains
    return tags[0].lower() if tags else OTHER_SHARD


class ShardMap:
    """An assignment of record positions (insertion order) to named shards.

    ``keys[shard_id]`` names each shard; ``assignments[position]`` is the
    shard id of the record at that index position.  Both are append-only:
    :meth:`assign_extension` adds assignments for new records without ever
    moving existing ones, so posting positions stay stable across
    :meth:`repro.workspace.Workspace.extend`.
    """

    __slots__ = ("keys", "assignments", "_key_index")

    def __init__(self, keys: Sequence[str], assignments: Sequence[int]) -> None:
        self.keys: list[str] = list(keys)
        self.assignments: list[int] = list(assignments)
        self._key_index = {key: index for index, key in enumerate(self.keys)}
        if len(self._key_index) != len(self.keys):
            raise ValueError("shard keys must be unique")
        if self.assignments and not (
            0 <= min(self.assignments) and max(self.assignments) < len(self.keys)
        ):
            raise ValueError("shard assignments fall outside the key table")

    def __len__(self) -> int:
        return len(self.keys)

    @classmethod
    def build(
        cls,
        records: Iterable[AttackVectorRecord],
        max_shards: int = DEFAULT_MAX_SHARDS,
    ) -> "ShardMap":
        """Shard a record population, pooling the long tail of keys.

        The ``max_shards - 1`` most populous keys (ties broken by key name,
        so the result is deterministic) keep their own shard, in first-seen
        order; every other record lands in :data:`OTHER_SHARD`.
        """
        if max_shards < 1:
            raise ValueError(f"max_shards must be positive, got {max_shards}")
        raw_keys = [shard_key_for_record(record) for record in records]
        counts: dict[str, int] = {}
        for key in raw_keys:
            counts[key] = counts.get(key, 0) + 1
        distinct = [key for key in counts if key != OTHER_SHARD]
        if len(distinct) + (OTHER_SHARD in counts) > max_shards:
            ranked = sorted(distinct, key=lambda key: (-counts[key], key))
            kept = set(ranked[: max_shards - 1])
        else:
            kept = set(distinct)
        keys: list[str] = []
        key_index: dict[str, int] = {}
        assignments: list[int] = []
        for key in raw_keys:
            if key not in kept:
                key = OTHER_SHARD
            index = key_index.get(key)
            if index is None:
                index = key_index[key] = len(keys)
                keys.append(key)
            assignments.append(index)
        return cls(keys, assignments)

    def assign_extension(
        self,
        records: Iterable[AttackVectorRecord],
        max_shards: int = DEFAULT_MAX_SHARDS,
    ) -> tuple[list[str], list[int]]:
        """Shard ids for appended records: ``(new keys, their assignments)``.

        Known keys reuse their shard; unknown keys get a new shard while the
        bound allows and pool into :data:`OTHER_SHARD` afterwards.  Mutates
        this map (the returned ``new_keys`` were appended to :attr:`keys`)
        and returns the delta so callers can persist it.
        """
        new_keys: list[str] = []
        assignments: list[int] = []
        for record in records:
            key = shard_key_for_record(record)
            index = self._key_index.get(key)
            if index is None:
                if len(self.keys) < max_shards:
                    index = self._key_index[key] = len(self.keys)
                    self.keys.append(key)
                    new_keys.append(key)
                else:
                    index = self._key_index.get(OTHER_SHARD)
                    if index is None:
                        # The bound is already met, but the overflow shard is
                        # the one shard that must always be addressable.
                        index = self._key_index[OTHER_SHARD] = len(self.keys)
                        self.keys.append(OTHER_SHARD)
                        new_keys.append(OTHER_SHARD)
            assignments.append(index)
        self.assignments.extend(assignments)
        return new_keys, assignments

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {"keys": list(self.keys), "assignments": list(self.assignments)}

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardMap":
        """Rebuild from :meth:`to_dict` output; :class:`ValueError` when malformed."""
        try:
            keys = payload["keys"]
            assignments = payload["assignments"]
            if not all(isinstance(key, str) for key in keys):
                raise ValueError("shard keys must be strings")
            if not all(
                isinstance(value, int) and not isinstance(value, bool)
                for value in assignments
            ):
                raise ValueError("shard assignments must be integers")
            return cls(keys, assignments)
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed shard map payload: {error}") from error

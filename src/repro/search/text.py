"""Tokenization and normalization for text matching.

The paper's association is "grounded in relating attack vectors to the system
model through natural language processing", and notes that this makes results
sensitive to phrasing.  The tokenizer here is intentionally simple and
transparent -- lowercasing, punctuation stripping, stop-word removal, and a
light suffix stemmer -- so that the sensitivity experiments are about the
modeling practice (as in the paper), not about an opaque NLP stack.
"""

from __future__ import annotations

import re
from collections import Counter
from collections.abc import Iterable

_TOKEN_RE = re.compile(r"[a-z0-9]+(?:[-_.][a-z0-9]+)*")

#: Common English and security-prose words that carry no matching signal.
STOP_WORDS = frozenset(
    """
    a an the and or of to in on for with by via from as is are was were be been
    this that these those it its their his her your our they them he she we you
    i at into over under between through during before after above below up down
    out off again further then once here there when where why how all any both
    each few more most other some such no nor not only own same so than too very
    can will just should now may might must could would shall
    allows allow allowing allowed attacker attackers adversary adversaries
    vulnerability vulnerabilities weakness weaknesses exploit exploits
    affected unspecified crafted specially could
    """.split()
)

def normalize_token(token: str) -> str:
    """Lowercase and lightly stem a single token.

    Only two deliberately conservative reductions are applied -- plural ``-s``
    and progressive ``-ing`` -- because the same normalizer runs on both the
    corpus and the model text, so consistency matters more than linguistic
    accuracy.
    """
    token = token.lower()
    if token.endswith("ing") and len(token) >= 6:
        return token[:-3]
    if token.endswith("s") and not token.endswith("ss") and len(token) >= 5:
        return token[:-1]
    return token


def tokenize(text: str, remove_stop_words: bool = True) -> list[str]:
    """Split text into normalized tokens.

    Hyphenated and dotted identifiers (``cRIO-9063``, ``3.1``) are kept as
    single compound tokens *and* additionally split into their parts, so that
    ``"cRIO 9063"`` in a model still matches ``"cRIO-9063"`` in a record.
    """
    tokens = _TOKEN_RE.findall(text.lower())
    result = []
    for token in tokens:
        expanded = [token]
        if "-" in token or "_" in token or "." in token:
            expanded.extend(part for part in re.split(r"[-_.]", token) if part)
        for item in expanded:
            if remove_stop_words and item in STOP_WORDS:
                continue
            normalized = normalize_token(item)
            if remove_stop_words and normalized in STOP_WORDS:
                continue
            if normalized:
                result.append(normalized)
    return result


def term_frequencies(text: str) -> Counter:
    """Token counts for a text."""
    return Counter(tokenize(text))


def vocabulary(texts: Iterable[str]) -> set[str]:
    """The set of all tokens appearing in the given texts."""
    vocab: set[str] = set()
    for text in texts:
        vocab.update(tokenize(text))
    return vocab


def jaccard_similarity(text_a: str, text_b: str) -> float:
    """Jaccard similarity of the token sets of two texts (baseline scorer)."""
    tokens_a = set(tokenize(text_a))
    tokens_b = set(tokenize(text_b))
    if not tokens_a or not tokens_b:
        return 0.0
    intersection = len(tokens_a & tokens_b)
    union = len(tokens_a | tokens_b)
    return intersection / union

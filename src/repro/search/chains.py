"""Exploit chains over the system topology.

The paper argues that representing systems as graphs is "congruent with how
attackers operate in reality" (defenders think in lists, attackers think in
graphs).  An exploit chain is a path from an adversary entry point to a
target component where every component along the path has at least one
associated attack vector -- the graph-level artifact that per-component lists
cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.search.engine import Match, SystemAssociation


@dataclass(frozen=True)
class ExploitChain:
    """One attack path from an entry point to a target component."""

    path: tuple[str, ...]
    vectors: tuple[tuple[str, Match], ...]
    score: float

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise ValueError("an exploit chain needs at least one component")

    @property
    def entry(self) -> str:
        """The entry-point component."""
        return self.path[0]

    @property
    def target(self) -> str:
        """The target component."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """Number of hops in the chain."""
        return len(self.path) - 1

    def describe(self) -> str:
        """A one-line human-readable description of the chain."""
        hops = " -> ".join(self.path)
        vectors = ", ".join(f"{name}:{match.identifier}" for name, match in self.vectors)
        return f"{hops} (score {self.score:.3f}; {vectors})"

    def to_dict(self) -> dict:
        """A JSON-serializable form (round-trips through :meth:`from_dict`)."""
        return {
            "path": list(self.path),
            "vectors": [
                {"component": name, "match": match.to_dict()}
                for name, match in self.vectors
            ],
            "score": self.score,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExploitChain":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            path=tuple(payload["path"]),
            vectors=tuple(
                (item["component"], Match.from_dict(item["match"]))
                for item in payload["vectors"]
            ),
            score=payload["score"],
        )


def find_exploit_chains(
    association: SystemAssociation,
    target: str,
    max_length: int = 6,
    min_component_score: float = 0.0,
) -> list[ExploitChain]:
    """Enumerate exploit chains from every entry point to ``target``.

    A chain is viable when every component on the path (including the entry
    point and the target) has at least one associated attack vector with a
    score above ``min_component_score``.  The chain score is the product of
    the best per-component scores, a pessimistic "every hop must succeed"
    aggregation; because the analysis is qualitative (Section 2 of the paper)
    the score is only used for ranking, never as a probability.
    """
    system = association.system
    system.component(target)
    graph = system.to_networkx()
    chains: list[ExploitChain] = []
    for entry in system.entry_points():
        if entry.name == target:
            paths: list[list[str]] = [[entry.name]]
        else:
            paths = [
                list(path)
                for path in nx.all_simple_paths(
                    graph, entry.name, target, cutoff=max_length
                )
            ]
        for path in paths:
            chain = _build_chain(association, path, min_component_score)
            if chain is not None:
                chains.append(chain)
    chains.sort(key=lambda c: (-c.score, c.length, c.path))
    return chains


def _build_chain(
    association: SystemAssociation, path: list[str], min_component_score: float
) -> ExploitChain | None:
    vectors: list[tuple[str, Match]] = []
    score = 1.0
    for name in path:
        component_association = association.component(name)
        matches = [
            match
            for match in component_association.unique_matches()
            if match.score > min_component_score
        ]
        if not matches:
            return None
        best = matches[0]
        vectors.append((name, best))
        score *= best.score
    return ExploitChain(path=tuple(path), vectors=tuple(vectors), score=score)


def chain_summary(chains: list[ExploitChain]) -> dict[str, float | int]:
    """Aggregate statistics over a set of exploit chains."""
    if not chains:
        return {"count": 0, "best_score": 0.0, "shortest": 0, "entry_points": 0}
    return {
        "count": len(chains),
        "best_score": max(chain.score for chain in chains),
        "shortest": min(chain.length for chain in chains),
        "entry_points": len({chain.entry for chain in chains}),
    }

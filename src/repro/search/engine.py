"""Attribute -> attack-vector association engine.

This is the reproduction of the paper's CYBOK-style search step: "The inputs
to the security tools are the system model and security data in the form of
natural text. ... The main output, then, is this association of attack vectors
to the system model."

Matching follows the paper's observation that "high-level descriptions of
system components and interactions will tend to match attack pattern and
weakness instances; low-level or more specific descriptions of software and
hardware platforms will relate more closely to vulnerability instances":

* attack patterns and weaknesses are matched by *query-coverage* scoring --
  the fraction of the attribute's IDF mass found in the record text -- which
  lets a product attribute like ``Windows 7`` land on generic
  operating-system weaknesses,
* vulnerabilities are matched when the record names the platform: either a
  CPE-like platform tag of the CVE is covered by the attribute text, or the
  attribute's distinctive terms are covered by the CVE text,
* fidelity-aware mode skips vulnerability matching for attributes that are
  not implementation-specific (the paper's suggested abstraction strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.corpus.schema import (
    AttackPattern,
    AttackVectorRecord,
    RecordKind,
    Vulnerability,
    Weakness,
)
from repro.corpus.store import CorpusStore
from repro.graph.attributes import Attribute
from repro.graph.model import Component, SystemGraph
from repro.search.index import InvertedIndex
from repro.search.text import jaccard_similarity, tokenize
from repro.search.tfidf import TfIdfModel

#: Supported scoring strategies.
SCORERS = ("coverage", "cosine", "jaccard")


@dataclass(frozen=True)
class Match:
    """One associated attack-vector record."""

    identifier: str
    kind: RecordKind
    score: float
    name: str = ""
    severity: str = ""
    cvss_score: float | None = None
    network_exploitable: bool | None = None

    def __post_init__(self) -> None:
        if self.score < 0.0:
            raise ValueError(f"match score must be non-negative, got {self.score}")


@dataclass(frozen=True)
class AttributeMatches:
    """All records associated with one attribute of one component."""

    attribute: Attribute
    attack_patterns: tuple[Match, ...] = ()
    weaknesses: tuple[Match, ...] = ()
    vulnerabilities: tuple[Match, ...] = ()

    def counts(self) -> dict[RecordKind, int]:
        """Match counts per record class (one row of the paper's Table 1)."""
        return {
            RecordKind.ATTACK_PATTERN: len(self.attack_patterns),
            RecordKind.WEAKNESS: len(self.weaknesses),
            RecordKind.VULNERABILITY: len(self.vulnerabilities),
        }

    def all_matches(self) -> tuple[Match, ...]:
        """All matches across the three classes."""
        return self.attack_patterns + self.weaknesses + self.vulnerabilities

    @property
    def total(self) -> int:
        """Total number of associated records."""
        return len(self.all_matches())


@dataclass(frozen=True)
class ComponentAssociation:
    """All attack vectors associated with one component."""

    component: Component
    attribute_matches: tuple[AttributeMatches, ...] = ()

    def unique_matches(self) -> tuple[Match, ...]:
        """Matches de-duplicated across attributes, keeping the best score."""
        best: dict[str, Match] = {}
        for attribute_match in self.attribute_matches:
            for match in attribute_match.all_matches():
                current = best.get(match.identifier)
                if current is None or match.score > current.score:
                    best[match.identifier] = match
        return tuple(sorted(best.values(), key=lambda m: (-m.score, m.identifier)))

    def counts(self) -> dict[RecordKind, int]:
        """Unique match counts per record class for the component."""
        totals = {kind: 0 for kind in RecordKind}
        for match in self.unique_matches():
            totals[match.kind] += 1
        return totals

    @property
    def total(self) -> int:
        """Total number of unique associated records."""
        return len(self.unique_matches())


@dataclass
class SystemAssociation:
    """The merged artifact: every component's associated attack vectors.

    This is the object the analyst dashboard (Section 3, Fig. 1) displays and
    the what-if loop recomputes.
    """

    system: SystemGraph
    components: tuple[ComponentAssociation, ...] = ()
    scorer: str = "coverage"

    def component(self, name: str) -> ComponentAssociation:
        """The association for one component."""
        for association in self.components:
            if association.component.name == name:
                return association
        raise KeyError(f"no association for component {name!r}")

    def attribute_table(self) -> list[dict]:
        """Per-attribute association counts, aggregated over components.

        Each row has ``attribute``, ``attack_patterns``, ``weaknesses``,
        ``vulnerabilities`` -- the columns of the paper's Table 1.
        """
        by_attribute: dict[str, dict[RecordKind, set[str]]] = {}
        order: list[str] = []
        for component_association in self.components:
            for attribute_match in component_association.attribute_matches:
                name = attribute_match.attribute.name
                if name not in by_attribute:
                    by_attribute[name] = {kind: set() for kind in RecordKind}
                    order.append(name)
                buckets = by_attribute[name]
                for match in attribute_match.attack_patterns:
                    buckets[RecordKind.ATTACK_PATTERN].add(match.identifier)
                for match in attribute_match.weaknesses:
                    buckets[RecordKind.WEAKNESS].add(match.identifier)
                for match in attribute_match.vulnerabilities:
                    buckets[RecordKind.VULNERABILITY].add(match.identifier)
        return [
            {
                "attribute": name,
                "attack_patterns": len(by_attribute[name][RecordKind.ATTACK_PATTERN]),
                "weaknesses": len(by_attribute[name][RecordKind.WEAKNESS]),
                "vulnerabilities": len(by_attribute[name][RecordKind.VULNERABILITY]),
            }
            for name in order
        ]

    def total_counts(self) -> dict[RecordKind, int]:
        """Unique record counts per class across the whole system."""
        seen: dict[RecordKind, set[str]] = {kind: set() for kind in RecordKind}
        for component_association in self.components:
            for match in component_association.unique_matches():
                seen[match.kind].add(match.identifier)
        return {kind: len(ids) for kind, ids in seen.items()}

    @property
    def total(self) -> int:
        """Total number of unique associated records across the system."""
        return sum(self.total_counts().values())

    def component_ranking(self) -> list[tuple[str, int]]:
        """Components ranked by number of unique associated records."""
        ranking = [
            (association.component.name, association.total)
            for association in self.components
        ]
        ranking.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranking


class SearchEngine:
    """Associates attack-vector records with system-model attributes.

    Parameters
    ----------
    corpus:
        The attack-vector corpus to search.
    pattern_threshold / weakness_threshold:
        Minimum query-coverage score for attack-pattern / weakness matches.
    vulnerability_text_threshold:
        Minimum query-coverage score for text-based vulnerability matches.
    platform_coverage:
        Fraction of a CVE platform tag's tokens that must appear in the
        attribute text for a platform-based vulnerability match.
    fidelity_aware:
        When true (the default), attributes below implementation fidelity are
        not matched against vulnerabilities, reproducing the paper's
        abstraction recommendation.
    scorer:
        ``"coverage"`` (default), ``"cosine"``, or ``"jaccard"`` -- the last
        two exist for the ablation benchmarks.
    max_per_class:
        Optional cap on matches kept per attribute per record class.
    """

    def __init__(
        self,
        corpus: CorpusStore,
        *,
        pattern_threshold: float = 0.12,
        weakness_threshold: float = 0.12,
        vulnerability_text_threshold: float = 0.55,
        platform_coverage: float = 0.6,
        fidelity_aware: bool = True,
        scorer: str = "coverage",
        max_per_class: int | None = None,
    ) -> None:
        if scorer not in SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; expected one of {SCORERS}")
        self.corpus = corpus
        self.pattern_threshold = pattern_threshold
        self.weakness_threshold = weakness_threshold
        self.vulnerability_text_threshold = vulnerability_text_threshold
        self.platform_coverage = platform_coverage
        self.fidelity_aware = fidelity_aware
        self.scorer = scorer
        self.max_per_class = max_per_class

        self._records: dict[str, AttackVectorRecord] = {}
        self._indexes: dict[RecordKind, InvertedIndex] = {}
        self._models: dict[RecordKind, TfIdfModel] = {}
        self._platform_tokens: dict[str, frozenset[str]] = {}
        self._build_indexes()

    # -- index construction --------------------------------------------------

    def _build_indexes(self) -> None:
        for kind in RecordKind:
            index = InvertedIndex()
            for record in self.corpus.records_of_kind(kind):
                index.add_document(record.identifier, record.text)
                self._records[record.identifier] = record
            self._indexes[kind] = index
            self._models[kind] = TfIdfModel(index)
        for vulnerability in self.corpus.vulnerabilities:
            for platform in vulnerability.affected_platforms:
                if platform not in self._platform_tokens:
                    self._platform_tokens[platform] = frozenset(tokenize(platform))

    # -- low-level matching ---------------------------------------------------

    def match_text(
        self, text: str, kind: RecordKind, threshold: float
    ) -> list[Match]:
        """Match free text against one record class."""
        if self.scorer == "jaccard":
            scored = self._jaccard_scores(text, kind)
        elif self.scorer == "cosine":
            scored = self._models[kind].score(text)
        else:
            scored = self._coverage_scores(text, kind)
        matches = [
            self._to_match(identifier, score)
            for identifier, score in scored
            if score >= threshold
        ]
        matches.sort(key=lambda m: (-m.score, m.identifier))
        if self.max_per_class is not None:
            matches = matches[: self.max_per_class]
        return matches

    def _coverage_scores(self, text: str, kind: RecordKind) -> list[tuple[str, float]]:
        model = self._models[kind]
        index = self._indexes[kind]
        query = model.query_vector(text)
        if not query:
            return []
        total_mass = sum(query.values())
        if total_mass == 0.0:
            return []
        candidates = index.candidates(query.keys())
        scores = []
        for doc_id, token_counts in candidates.items():
            covered = sum(query[token] for token in token_counts)
            scores.append((doc_id, covered / total_mass))
        return scores

    def _jaccard_scores(self, text: str, kind: RecordKind) -> list[tuple[str, float]]:
        scores = []
        for record in self.corpus.records_of_kind(kind):
            score = jaccard_similarity(text, record.text)
            if score > 0.0:
                scores.append((record.identifier, score))
        return scores

    def _platform_matches(self, attribute_tokens: frozenset[str]) -> list[Match]:
        matches: list[Match] = []
        matched_platforms = []
        for platform, tokens in self._platform_tokens.items():
            if not tokens:
                continue
            coverage = len(tokens & attribute_tokens) / len(tokens)
            if coverage >= self.platform_coverage:
                matched_platforms.append((platform, coverage))
        seen: dict[str, float] = {}
        for platform, coverage in matched_platforms:
            for vulnerability in self.corpus.vulnerabilities_for_platform(platform):
                previous = seen.get(vulnerability.identifier, 0.0)
                if coverage > previous:
                    seen[vulnerability.identifier] = coverage
        for identifier, coverage in seen.items():
            matches.append(self._to_match(identifier, coverage))
        return matches

    def _to_match(self, identifier: str, score: float) -> Match:
        record = self._records[identifier]
        if isinstance(record, Vulnerability):
            return Match(
                identifier=identifier,
                kind=RecordKind.VULNERABILITY,
                score=round(score, 6),
                name=record.identifier,
                severity=record.severity,
                cvss_score=record.base_score,
                network_exploitable=record.cvss.network_exploitable,
            )
        if isinstance(record, Weakness):
            return Match(
                identifier=identifier,
                kind=RecordKind.WEAKNESS,
                score=round(score, 6),
                name=record.name,
                severity=record.likelihood,
            )
        assert isinstance(record, AttackPattern)
        return Match(
            identifier=identifier,
            kind=RecordKind.ATTACK_PATTERN,
            score=round(score, 6),
            name=record.name,
            severity=record.severity,
        )

    # -- attribute / component / system association ---------------------------

    def match_attribute(self, attribute: Attribute) -> AttributeMatches:
        """Associate one attribute with attack patterns, weaknesses, and CVEs."""
        text = attribute.text
        patterns = self.match_text(text, RecordKind.ATTACK_PATTERN, self.pattern_threshold)
        weaknesses = self.match_text(text, RecordKind.WEAKNESS, self.weakness_threshold)
        vulnerabilities: list[Match] = []
        if not self.fidelity_aware or attribute.is_specific():
            vulnerabilities = self._match_vulnerabilities(text)
        return AttributeMatches(
            attribute=attribute,
            attack_patterns=tuple(patterns),
            weaknesses=tuple(weaknesses),
            vulnerabilities=tuple(vulnerabilities),
        )

    def _match_vulnerabilities(self, text: str) -> list[Match]:
        attribute_tokens = frozenset(tokenize(text))
        by_id: dict[str, Match] = {}
        for match in self._platform_matches(attribute_tokens):
            by_id[match.identifier] = match
        for match in self.match_text(
            text, RecordKind.VULNERABILITY, self.vulnerability_text_threshold
        ):
            current = by_id.get(match.identifier)
            if current is None or match.score > current.score:
                by_id[match.identifier] = match
        matches = sorted(by_id.values(), key=lambda m: (-m.score, m.identifier))
        if self.max_per_class is not None:
            matches = matches[: self.max_per_class]
        return matches

    def associate_component(self, component: Component) -> ComponentAssociation:
        """Associate every attribute of a component."""
        attribute_matches = tuple(
            self.match_attribute(attribute) for attribute in component.attributes
        )
        return ComponentAssociation(
            component=component, attribute_matches=attribute_matches
        )

    def associate(self, system: SystemGraph) -> SystemAssociation:
        """Associate the whole system model (Fig. 1's merge step)."""
        components = tuple(
            self.associate_component(component) for component in system.components
        )
        return SystemAssociation(system=system, components=components, scorer=self.scorer)

"""Attribute -> attack-vector association engine.

This is the reproduction of the paper's CYBOK-style search step: "The inputs
to the security tools are the system model and security data in the form of
natural text. ... The main output, then, is this association of attack vectors
to the system model."

Matching follows the paper's observation that "high-level descriptions of
system components and interactions will tend to match attack pattern and
weakness instances; low-level or more specific descriptions of software and
hardware platforms will relate more closely to vulnerability instances":

* attack patterns and weaknesses are matched by *query-coverage* scoring --
  the fraction of the attribute's IDF mass found in the record text -- which
  lets a product attribute like ``Windows 7`` land on generic
  operating-system weaknesses,
* vulnerabilities are matched when the record names the platform: either a
  CPE-like platform tag of the CVE is covered by the attribute text, or the
  attribute's distinctive terms are covered by the CVE text,
* fidelity-aware mode skips vulnerability matching for attributes that are
  not implementation-specific (the paper's suggested abstraction strategy).

The engine is built for the dashboard's interactive what-if loop (Section 3):

* scoring uses the TF-IDF vectors precomputed at index-build time, so no IDF
  is recomputed per candidate per query,
* results are cached per attribute and per ``(text, kind, scorer, threshold)``
  -- identical attributes recur across components (e.g. the SIS and BPCS
  platforms both run Windows 7), so a warm :meth:`SearchEngine.associate` call
  is orders of magnitude faster than a cold one while returning identical
  results,
* :meth:`SearchEngine.reassociate` re-scores only the components whose
  attribute set changed relative to a baseline association and reuses the
  baseline's :class:`ComponentAssociation` objects otherwise,
* :meth:`SearchEngine.save_index_snapshot` /
  :meth:`SearchEngine.from_index_snapshot` persist the tokenized indexes so
  repeated CLI or benchmark runs skip the index rebuild.

All of these are exact optimizations: the cached, incremental, and
snapshot-loaded paths return bit-identical associations to a fresh, uncached
engine (enforced by the equivalence test suite).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.corpus.schema import (
    AttackPattern,
    AttackVectorRecord,
    RecordKind,
    Vulnerability,
    Weakness,
)
from repro.corpus.store import CorpusStore
from repro.graph.attributes import Attribute
from repro.graph.model import Component, SystemGraph
from repro.search.index import InvertedIndex
from repro.search.text import jaccard_similarity, tokenize
from repro.search.tfidf import TfIdfModel

#: Supported scoring strategies.
SCORERS = ("coverage", "cosine", "jaccard")

#: Snapshot format version; bump when the payload layout changes.
SNAPSHOT_VERSION = 1


def _corpus_fingerprint(corpus: CorpusStore) -> str:
    """Content hash of every (identifier, text) pair, per record class.

    Stored in index snapshots so that a snapshot whose tokenized postings no
    longer match the corpus *texts* (not just the identifier set) is rejected
    instead of silently scoring against stale tokenization.
    """
    digest = hashlib.sha256()
    for kind in RecordKind:
        for record in corpus.records_of_kind(kind):
            digest.update(record.identifier.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(record.text.encode("utf-8"))
            digest.update(b"\x01")
    return digest.hexdigest()


@dataclass
class EngineStats:
    """Counters describing cache effectiveness and incremental reuse.

    ``components_scored`` counts full :meth:`SearchEngine.associate_component`
    evaluations; ``components_reused`` counts components served from a baseline
    association by :meth:`SearchEngine.reassociate` without re-scoring.
    """

    attribute_cache_hits: int = 0
    attribute_cache_misses: int = 0
    text_cache_hits: int = 0
    text_cache_misses: int = 0
    components_scored: int = 0
    components_reused: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the counters (for deltas in tests/benchmarks)."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


@dataclass(frozen=True)
class Match:
    """One associated attack-vector record."""

    identifier: str
    kind: RecordKind
    score: float
    name: str = ""
    severity: str = ""
    cvss_score: float | None = None
    network_exploitable: bool | None = None

    def __post_init__(self) -> None:
        if self.score < 0.0:
            raise ValueError(f"match score must be non-negative, got {self.score}")


@dataclass(frozen=True)
class AttributeMatches:
    """All records associated with one attribute of one component."""

    attribute: Attribute
    attack_patterns: tuple[Match, ...] = ()
    weaknesses: tuple[Match, ...] = ()
    vulnerabilities: tuple[Match, ...] = ()

    def counts(self) -> dict[RecordKind, int]:
        """Match counts per record class (one row of the paper's Table 1)."""
        return {
            RecordKind.ATTACK_PATTERN: len(self.attack_patterns),
            RecordKind.WEAKNESS: len(self.weaknesses),
            RecordKind.VULNERABILITY: len(self.vulnerabilities),
        }

    def all_matches(self) -> tuple[Match, ...]:
        """All matches across the three classes."""
        return self.attack_patterns + self.weaknesses + self.vulnerabilities

    @property
    def total(self) -> int:
        """Total number of associated records."""
        return len(self.all_matches())


@dataclass(frozen=True)
class ComponentAssociation:
    """All attack vectors associated with one component."""

    component: Component
    attribute_matches: tuple[AttributeMatches, ...] = ()

    def unique_matches(self) -> tuple[Match, ...]:
        """Matches de-duplicated across attributes, keeping the best score."""
        best: dict[str, Match] = {}
        for attribute_match in self.attribute_matches:
            for match in attribute_match.all_matches():
                current = best.get(match.identifier)
                if current is None or match.score > current.score:
                    best[match.identifier] = match
        return tuple(sorted(best.values(), key=lambda m: (-m.score, m.identifier)))

    def counts(self) -> dict[RecordKind, int]:
        """Unique match counts per record class for the component."""
        totals = {kind: 0 for kind in RecordKind}
        for match in self.unique_matches():
            totals[match.kind] += 1
        return totals

    @property
    def total(self) -> int:
        """Total number of unique associated records."""
        return len(self.unique_matches())


@dataclass
class SystemAssociation:
    """The merged artifact: every component's associated attack vectors.

    This is the object the analyst dashboard (Section 3, Fig. 1) displays and
    the what-if loop recomputes.
    """

    system: SystemGraph
    components: tuple[ComponentAssociation, ...] = ()
    scorer: str = "coverage"
    #: Full engine configuration that produced this association (set by
    #: :meth:`SearchEngine.associate`); lets incremental re-association detect
    #: any config drift, not just a scorer change.
    engine_config: tuple | None = field(default=None, repr=False)

    def component(self, name: str) -> ComponentAssociation:
        """The association for one component."""
        for association in self.components:
            if association.component.name == name:
                return association
        raise KeyError(f"no association for component {name!r}")

    def attribute_table(self) -> list[dict]:
        """Per-attribute association counts, aggregated over components.

        Each row has ``attribute``, ``attack_patterns``, ``weaknesses``,
        ``vulnerabilities`` -- the columns of the paper's Table 1.
        """
        by_attribute: dict[str, dict[RecordKind, set[str]]] = {}
        order: list[str] = []
        for component_association in self.components:
            for attribute_match in component_association.attribute_matches:
                name = attribute_match.attribute.name
                if name not in by_attribute:
                    by_attribute[name] = {kind: set() for kind in RecordKind}
                    order.append(name)
                buckets = by_attribute[name]
                for match in attribute_match.attack_patterns:
                    buckets[RecordKind.ATTACK_PATTERN].add(match.identifier)
                for match in attribute_match.weaknesses:
                    buckets[RecordKind.WEAKNESS].add(match.identifier)
                for match in attribute_match.vulnerabilities:
                    buckets[RecordKind.VULNERABILITY].add(match.identifier)
        return [
            {
                "attribute": name,
                "attack_patterns": len(by_attribute[name][RecordKind.ATTACK_PATTERN]),
                "weaknesses": len(by_attribute[name][RecordKind.WEAKNESS]),
                "vulnerabilities": len(by_attribute[name][RecordKind.VULNERABILITY]),
            }
            for name in order
        ]

    def total_counts(self) -> dict[RecordKind, int]:
        """Unique record counts per class across the whole system."""
        seen: dict[RecordKind, set[str]] = {kind: set() for kind in RecordKind}
        for component_association in self.components:
            for match in component_association.unique_matches():
                seen[match.kind].add(match.identifier)
        return {kind: len(ids) for kind, ids in seen.items()}

    @property
    def total(self) -> int:
        """Total number of unique associated records across the system."""
        return sum(self.total_counts().values())

    def component_ranking(self) -> list[tuple[str, int]]:
        """Components ranked by number of unique associated records."""
        ranking = [
            (association.component.name, association.total)
            for association in self.components
        ]
        ranking.sort(key=lambda pair: (-pair[1], pair[0]))
        return ranking


class SearchEngine:
    """Associates attack-vector records with system-model attributes.

    Parameters
    ----------
    corpus:
        The attack-vector corpus to search.
    pattern_threshold / weakness_threshold:
        Minimum query-coverage score for attack-pattern / weakness matches.
    vulnerability_text_threshold:
        Minimum query-coverage score for text-based vulnerability matches.
    platform_coverage:
        Fraction of a CVE platform tag's tokens that must appear in the
        attribute text for a platform-based vulnerability match.
    fidelity_aware:
        When true (the default), attributes below implementation fidelity are
        not matched against vulnerabilities, reproducing the paper's
        abstraction recommendation.
    scorer:
        ``"coverage"`` (default), ``"cosine"``, or ``"jaccard"`` -- the last
        two exist for the ablation benchmarks.
    max_per_class:
        Optional cap on matches kept per attribute per record class.
    enable_cache:
        When true (the default), attribute- and text-level results are cached
        and reused across components and repeated calls.  The cache is exact:
        disabling it changes speed, never results.
    """

    def __init__(
        self,
        corpus: CorpusStore,
        *,
        pattern_threshold: float = 0.12,
        weakness_threshold: float = 0.12,
        vulnerability_text_threshold: float = 0.55,
        platform_coverage: float = 0.6,
        fidelity_aware: bool = True,
        scorer: str = "coverage",
        max_per_class: int | None = None,
        enable_cache: bool = True,
        _index_payload: dict | None = None,
    ) -> None:
        if scorer not in SCORERS:
            raise ValueError(f"unknown scorer {scorer!r}; expected one of {SCORERS}")
        self.corpus = corpus
        self.pattern_threshold = pattern_threshold
        self.weakness_threshold = weakness_threshold
        self.vulnerability_text_threshold = vulnerability_text_threshold
        self.platform_coverage = platform_coverage
        self.fidelity_aware = fidelity_aware
        self.scorer = scorer
        self.max_per_class = max_per_class
        self.enable_cache = enable_cache
        self.stats = EngineStats()

        self._records: dict[str, AttackVectorRecord] = {}
        self._indexes: dict[RecordKind, InvertedIndex] = {}
        self._models: dict[RecordKind, TfIdfModel] = {}
        self._platform_tokens: dict[str, frozenset[str]] = {}
        self._attribute_cache: dict[tuple, AttributeMatches] = {}
        self._text_cache: dict[tuple, tuple[Match, ...]] = {}
        self._vulnerability_cache: dict[tuple, tuple[Match, ...]] = {}
        self._build_indexes(_index_payload)

    # -- index construction --------------------------------------------------

    def _build_indexes(self, index_payload: dict | None = None) -> None:
        for kind in RecordKind:
            records = self.corpus.records_of_kind(kind)
            if index_payload is None:
                index = InvertedIndex()
                for record in records:
                    index.add_document(record.identifier, record.text)
            else:
                kind_payload = index_payload.get(kind.value)
                if not isinstance(kind_payload, dict):
                    raise ValueError(
                        f"index snapshot is missing the {kind.value!r} index"
                    )
                index = InvertedIndex.from_dict(kind_payload)
                if set(index.document_ids()) != {r.identifier for r in records}:
                    raise ValueError(
                        f"index snapshot does not match the corpus for {kind.value!r}"
                    )
            for record in records:
                self._records[record.identifier] = record
            self._indexes[kind] = index
            # Fitting eagerly precomputes the IDF table, weighted postings,
            # and norms every scorer relies on, so the first query pays no
            # hidden fit cost.
            self._models[kind] = TfIdfModel(index).fit()
        for vulnerability in self.corpus.vulnerabilities:
            for platform in vulnerability.affected_platforms:
                if platform not in self._platform_tokens:
                    self._platform_tokens[platform] = frozenset(tokenize(platform))

    # -- snapshots ------------------------------------------------------------

    def index_snapshot(self) -> dict:
        """A JSON-serializable snapshot of the per-class inverted indexes."""
        payload = {kind.value: self._indexes[kind].to_dict() for kind in RecordKind}
        payload["version"] = SNAPSHOT_VERSION
        payload["corpus_fingerprint"] = _corpus_fingerprint(self.corpus)
        return payload

    def save_index_snapshot(self, path: str | Path) -> Path:
        """Write the index snapshot to a JSON file and return the path."""
        path = Path(path)
        path.write_text(json.dumps(self.index_snapshot()), encoding="utf-8")
        return path

    @classmethod
    def from_index_snapshot(
        cls, corpus: CorpusStore, path: str | Path, **kwargs
    ) -> "SearchEngine":
        """Build an engine from a saved index snapshot, skipping tokenization.

        The snapshot must have been produced from the same corpus: document
        ids are validated per record class and a mismatch raises
        :class:`ValueError`.  Results are bit-identical to a freshly built
        engine; only construction time changes.
        """
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(
                f"index snapshot must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported index snapshot version {version!r}; "
                f"expected {SNAPSHOT_VERSION}"
            )
        if payload.get("corpus_fingerprint") != _corpus_fingerprint(corpus):
            raise ValueError(
                "index snapshot does not match the corpus contents"
            )
        return cls(corpus, _index_payload=payload, **kwargs)

    # -- caching ---------------------------------------------------------------

    def _config_key(self) -> tuple:
        return (
            self.scorer,
            self.pattern_threshold,
            self.weakness_threshold,
            self.vulnerability_text_threshold,
            self.platform_coverage,
            self.fidelity_aware,
            self.max_per_class,
        )

    def clear_caches(self) -> None:
        """Drop every cached result (stats counters are kept)."""
        self._attribute_cache.clear()
        self._text_cache.clear()
        self._vulnerability_cache.clear()

    def cache_info(self) -> dict[str, int]:
        """Sizes of the result caches (entries, not bytes)."""
        return {
            "attribute_entries": len(self._attribute_cache),
            "text_entries": len(self._text_cache),
            "vulnerability_entries": len(self._vulnerability_cache),
        }

    # -- low-level matching ---------------------------------------------------

    def match_text(
        self, text: str, kind: RecordKind, threshold: float
    ) -> list[Match]:
        """Match free text against one record class (cached when enabled)."""
        cache_key = None
        if self.enable_cache:
            cache_key = (text, kind, threshold, self._config_key())
            cached = self._text_cache.get(cache_key)
            if cached is not None:
                self.stats.text_cache_hits += 1
                return list(cached)
            self.stats.text_cache_misses += 1
        if self.scorer == "jaccard":
            scored = self._jaccard_scores(text, kind)
        elif self.scorer == "cosine":
            scored = self._models[kind].score(text)
        else:
            scored = self._coverage_scores(text, kind)
        matches = [
            self._to_match(identifier, score)
            for identifier, score in scored
            if score >= threshold
        ]
        matches.sort(key=lambda m: (-m.score, m.identifier))
        if self.max_per_class is not None:
            matches = matches[: self.max_per_class]
        if cache_key is not None:
            self._text_cache[cache_key] = tuple(matches)
        return matches

    def _coverage_scores(self, text: str, kind: RecordKind) -> list[tuple[str, float]]:
        model = self._models[kind]
        query = model.query_vector(text)
        if not query:
            return []
        total_mass = sum(query.values())
        if total_mass == 0.0:
            return []
        # Accumulate the covered IDF mass per document straight off the
        # precomputed posting lists; the token iteration order matches the
        # candidate-set construction it replaces, so float sums are identical.
        covered: dict[str, float] = {}
        for token in set(query):
            mass = query[token]
            for doc_id in model.posting_doc_ids(token):
                covered[doc_id] = covered.get(doc_id, 0.0) + mass
        return [(doc_id, value / total_mass) for doc_id, value in covered.items()]

    def _jaccard_scores(self, text: str, kind: RecordKind) -> list[tuple[str, float]]:
        scores = []
        for record in self.corpus.records_of_kind(kind):
            score = jaccard_similarity(text, record.text)
            if score > 0.0:
                scores.append((record.identifier, score))
        return scores

    def _platform_matches(self, attribute_tokens: frozenset[str]) -> list[Match]:
        matches: list[Match] = []
        matched_platforms = []
        for platform, tokens in self._platform_tokens.items():
            if not tokens:
                continue
            coverage = len(tokens & attribute_tokens) / len(tokens)
            if coverage >= self.platform_coverage:
                matched_platforms.append((platform, coverage))
        seen: dict[str, float] = {}
        for platform, coverage in matched_platforms:
            for vulnerability in self.corpus.vulnerabilities_for_platform(platform):
                previous = seen.get(vulnerability.identifier, 0.0)
                if coverage > previous:
                    seen[vulnerability.identifier] = coverage
        for identifier, coverage in seen.items():
            matches.append(self._to_match(identifier, coverage))
        return matches

    def _to_match(self, identifier: str, score: float) -> Match:
        record = self._records[identifier]
        if isinstance(record, Vulnerability):
            return Match(
                identifier=identifier,
                kind=RecordKind.VULNERABILITY,
                score=round(score, 6),
                name=record.identifier,
                severity=record.severity,
                cvss_score=record.base_score,
                network_exploitable=record.cvss.network_exploitable,
            )
        if isinstance(record, Weakness):
            return Match(
                identifier=identifier,
                kind=RecordKind.WEAKNESS,
                score=round(score, 6),
                name=record.name,
                severity=record.likelihood,
            )
        assert isinstance(record, AttackPattern)
        return Match(
            identifier=identifier,
            kind=RecordKind.ATTACK_PATTERN,
            score=round(score, 6),
            name=record.name,
            severity=record.severity,
        )

    # -- attribute / component / system association ---------------------------

    def match_attribute(self, attribute: Attribute) -> AttributeMatches:
        """Associate one attribute with attack patterns, weaknesses, and CVEs.

        Results are cached per attribute value: identical attributes on
        different components (shared platforms, shared protocols) are scored
        once.
        """
        cache_key = None
        if self.enable_cache:
            cache_key = (attribute, self._config_key())
            cached = self._attribute_cache.get(cache_key)
            if cached is not None:
                self.stats.attribute_cache_hits += 1
                return cached
            self.stats.attribute_cache_misses += 1
        text = attribute.text
        patterns = self.match_text(text, RecordKind.ATTACK_PATTERN, self.pattern_threshold)
        weaknesses = self.match_text(text, RecordKind.WEAKNESS, self.weakness_threshold)
        vulnerabilities: tuple[Match, ...] = ()
        if not self.fidelity_aware or attribute.is_specific():
            vulnerabilities = self._match_vulnerabilities(text)
        result = AttributeMatches(
            attribute=attribute,
            attack_patterns=tuple(patterns),
            weaknesses=tuple(weaknesses),
            vulnerabilities=vulnerabilities,
        )
        if cache_key is not None:
            self._attribute_cache[cache_key] = result
        return result

    def _match_vulnerabilities(self, text: str) -> tuple[Match, ...]:
        cache_key = None
        if self.enable_cache:
            cache_key = (text, self._config_key())
            cached = self._vulnerability_cache.get(cache_key)
            if cached is not None:
                return cached
        attribute_tokens = frozenset(tokenize(text))
        by_id: dict[str, Match] = {}
        for match in self._platform_matches(attribute_tokens):
            by_id[match.identifier] = match
        for match in self.match_text(
            text, RecordKind.VULNERABILITY, self.vulnerability_text_threshold
        ):
            current = by_id.get(match.identifier)
            if current is None or match.score > current.score:
                by_id[match.identifier] = match
        matches = sorted(by_id.values(), key=lambda m: (-m.score, m.identifier))
        if self.max_per_class is not None:
            matches = matches[: self.max_per_class]
        result = tuple(matches)
        if cache_key is not None:
            self._vulnerability_cache[cache_key] = result
        return result

    def associate_component(self, component: Component) -> ComponentAssociation:
        """Associate every attribute of a component."""
        self.stats.components_scored += 1
        attribute_matches = tuple(
            self.match_attribute(attribute) for attribute in component.attributes
        )
        return ComponentAssociation(
            component=component, attribute_matches=attribute_matches
        )

    def associate(self, system: SystemGraph) -> SystemAssociation:
        """Associate the whole system model (Fig. 1's merge step)."""
        components = tuple(
            self.associate_component(component) for component in system.components
        )
        return SystemAssociation(
            system=system,
            components=components,
            scorer=self.scorer,
            engine_config=self._config_key(),
        )

    def reassociate(
        self, baseline: SystemAssociation, variant: SystemGraph
    ) -> SystemAssociation:
        """Associate a variant architecture incrementally against a baseline.

        Components whose attribute tuple is unchanged relative to the
        same-named baseline component reuse the baseline's
        :class:`ComponentAssociation` (matching depends only on attribute
        text); everything else -- changed, renamed, or added components -- is
        re-scored.  The result equals :meth:`associate` on the variant,
        bit for bit, provided the baseline was produced by an engine over the
        same corpus (e.g. this one).  A baseline produced under a different
        configuration -- scorer, thresholds, fidelity mode, result cap -- or
        with no recorded configuration is detected and the variant is
        re-scored in full rather than mixing configurations silently.
        """
        if baseline.engine_config != self._config_key():
            return self.associate(variant)
        baseline_by_name = {
            association.component.name: association
            for association in baseline.components
        }
        components = []
        for component in variant.components:
            previous = baseline_by_name.get(component.name)
            if previous is None or previous.component.attributes != component.attributes:
                components.append(self.associate_component(component))
            elif previous.component == component:
                self.stats.components_reused += 1
                components.append(previous)
            else:
                # Same attributes but other fields (description, criticality,
                # ...) changed: the matches carry over, the component payload
                # must not.
                self.stats.components_reused += 1
                components.append(replace(previous, component=component))
        return SystemAssociation(
            system=variant,
            components=tuple(components),
            scorer=self.scorer,
            engine_config=self._config_key(),
        )
